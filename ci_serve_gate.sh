#!/bin/sh
# Serve smoke gate, shared by ci.sh and .github/workflows/ci.yml: boot
# the daemon on an ephemeral port, prove served /run responses are
# byte-identical to a local `dircc replay --json` (and invariant across
# shards/engine), observe the repeat as a cache hit, drive a mixed
# hit/miss workload with zero errors, then drain via /shutdown and fail
# on any orphaned daemon. Callers wrap this in `timeout` for a hard
# ceiling; every step inside is bounded regardless (client timeouts,
# capped polls).
set -eu

DIRCC=${DIRCC:-./target/release/dircc}
BENCH_OUT=${BENCH_SERVE_OUT:-BENCH_serve.json}
METRICS_OUT=${SERVE_METRICS_OUT:-SERVE_metrics.prom}
TMP=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

"$DIRCC" serve --addr 127.0.0.1:0 --workers 2 \
    >"$TMP/serve.out" 2>"$TMP/serve.err" &
PID=$!

# The listen line is flushed to stdout before the accept loop starts.
URL=""
i=0
while [ $i -lt 50 ]; do
    URL=$(sed -n 's/^dircc serve: listening on //p' "$TMP/serve.out")
    [ -n "$URL" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve gate: daemon died before listening" >&2
        cat "$TMP/serve.err" >&2
        exit 1
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$URL" ]; then
    echo "serve gate: daemon never printed its listen URL" >&2
    exit 1
fi
echo "serve gate: daemon at $URL (pid $PID)"

# Byte-identity gate: the served response for a config must diff clean
# against a local replay of the same config — first as a cache miss...
"$DIRCC" submit --serve "$URL" --scheme Dir1NB --profile pops --refs 20000 \
    --expect-cache miss >"$TMP/served_miss.json"
"$DIRCC" replay --json --scheme Dir1NB --profile pops --refs 20000 \
    >"$TMP/local.json"
diff "$TMP/served_miss.json" "$TMP/local.json"
# ...then again as an observable cache hit serving the same bytes...
"$DIRCC" submit --serve "$URL" --scheme Dir1NB --profile pops --refs 20000 \
    --expect-cache hit >"$TMP/served_hit.json"
diff "$TMP/served_miss.json" "$TMP/served_hit.json"
# ...and once more sharded on the dyn engine (a distinct cache key, so a
# miss) — counters are pinned shard- and engine-invariant.
"$DIRCC" submit --serve "$URL" --scheme Dir1NB --profile pops --refs 20000 \
    --shards 3 --engine dyn --expect-cache miss >"$TMP/served_sharded.json"
diff "$TMP/served_miss.json" "$TMP/served_sharded.json"

# The other routes answer: health (with live queue/in-flight state), a
# windowed series, the span export.
"$DIRCC" submit --serve "$URL" --op health >"$TMP/health.json"
grep -q '"status": "ok"' "$TMP/health.json"
grep -q '"inflight": ' "$TMP/health.json"
grep -q '"uptime_s": ' "$TMP/health.json"
"$DIRCC" submit --serve "$URL" --op series --scheme Wti --profile thor \
    --refs 8000 --window 2000 | wc -l | grep -qx 4
"$DIRCC" submit --serve "$URL" --op spans | grep -q '"cat": "dircc"'

# Load gate: a mixed hit/miss schedule from concurrent clients must
# complete with zero errors and report latency percentiles.
"$DIRCC" bench --serve "$URL" --clients 4 --requests 400 --refs 5000 \
    --out "$BENCH_OUT"

# Tracing gate: tag one more /run with the client-minted request ID and
# prove it joins the daemon's structured log and the /spans export —
# the end-to-end accept -> queue -> handler -> span thread.
RID=$("$DIRCC" submit --serve "$URL" --scheme Dir1NB --profile pops --refs 21000 \
    --expect-cache miss 2>&1 >"$TMP/served_join.json" |
    sed -n 's/^dircc submit: request-id //p')
if [ -z "$RID" ]; then
    echo "serve gate: submit printed no request id" >&2
    exit 1
fi
if ! grep -q "request_id=$RID" "$TMP/serve.err"; then
    echo "serve gate: request id $RID missing from the daemon log" >&2
    exit 1
fi
if ! "$DIRCC" submit --serve "$URL" --op spans | grep -q "$RID"; then
    echo "serve gate: request id $RID missing from /spans meta" >&2
    exit 1
fi

# Telemetry gate: scrape /metrics (kept as a CI artifact) and reconcile
# its counters *exactly* against the scripted load above. /run requests
# = 3 byte-identity submits + 1 tagged submit + the 400 bench requests
# (429-refused attempts never reach the route counters); server-side
# cache hits/misses = the bench's client-observed tallies plus the
# submits (1 hit; miss + sharded miss + tagged miss); and no route may
# have produced a single error response.
"$DIRCC" submit --serve "$URL" --op metrics >"$METRICS_OUT"
bench_hits=$(sed -n 's/.*"cache_hits": \([0-9]*\).*/\1/p' "$BENCH_OUT")
bench_misses=$(sed -n 's/.*"cache_misses": \([0-9]*\).*/\1/p' "$BENCH_OUT")
want_runs=404 # 3 submits + 1 tagged submit + 400 bench requests
want_hits=$((bench_hits + 1))
want_misses=$((bench_misses + 3))
got_runs=$(sed -n 's|^dircc_http_requests_total{route="/run"} ||p' "$METRICS_OUT")
got_hits=$(sed -n 's|^dircc_result_cache_events_total{event="hit"} ||p' "$METRICS_OUT")
got_misses=$(sed -n 's|^dircc_result_cache_events_total{event="miss"} ||p' "$METRICS_OUT")
if [ "$got_runs" != "$want_runs" ]; then
    echo "serve gate: want $want_runs /run requests, /metrics says '$got_runs'" >&2
    exit 1
fi
if [ "$got_hits" != "$want_hits" ]; then
    echo "serve gate: want $want_hits cache hits, /metrics says '$got_hits'" >&2
    exit 1
fi
if [ "$got_misses" != "$want_misses" ]; then
    echo "serve gate: want $want_misses cache misses, /metrics says '$got_misses'" >&2
    exit 1
fi
if grep '^dircc_http_errors_total{' "$METRICS_OUT" | grep -qv ' 0$'; then
    echo "serve gate: /metrics reports error responses:" >&2
    grep '^dircc_http_errors_total{' "$METRICS_OUT" >&2
    exit 1
fi
echo "serve gate: /metrics reconciled ($got_runs /run, $got_hits hits, $got_misses misses)"

# The dashboard's CI mode distills the same scrape into key/value lines.
"$DIRCC" top --serve "$URL" --once >"$TMP/top.txt"
grep -qx "errors_total 0" "$TMP/top.txt"
grep -qx "cache_hits $want_hits" "$TMP/top.txt"
grep -q "^run_p50_ms " "$TMP/top.txt"

# Drain gate: /shutdown finishes in-flight work and the process exits 0
# on its own; anything still alive after the grace window is an orphan.
"$DIRCC" submit --serve "$URL" --op shutdown >/dev/null
i=0
while [ $i -lt 50 ] && kill -0 "$PID" 2>/dev/null; do
    sleep 0.2
    i=$((i + 1))
done
if kill -0 "$PID" 2>/dev/null; then
    echo "serve gate: daemon did not drain after /shutdown (orphan)" >&2
    exit 1
fi
wait "$PID"
grep -q "drained after" "$TMP/serve.out"
PID=""
echo "serve gate: PASS"

#!/bin/sh
# Serve smoke gate, shared by ci.sh and .github/workflows/ci.yml: boot
# the daemon on an ephemeral port, prove served /run responses are
# byte-identical to a local `dircc replay --json` (and invariant across
# shards/engine), observe the repeat as a cache hit, drive a mixed
# hit/miss workload with zero errors, then drain via /shutdown and fail
# on any orphaned daemon. Callers wrap this in `timeout` for a hard
# ceiling; every step inside is bounded regardless (client timeouts,
# capped polls).
set -eu

DIRCC=${DIRCC:-./target/release/dircc}
BENCH_OUT=${BENCH_SERVE_OUT:-BENCH_serve.json}
TMP=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

"$DIRCC" serve --addr 127.0.0.1:0 --workers 2 \
    >"$TMP/serve.out" 2>"$TMP/serve.err" &
PID=$!

# The listen line is flushed to stdout before the accept loop starts.
URL=""
i=0
while [ $i -lt 50 ]; do
    URL=$(sed -n 's/^dircc serve: listening on //p' "$TMP/serve.out")
    [ -n "$URL" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve gate: daemon died before listening" >&2
        cat "$TMP/serve.err" >&2
        exit 1
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$URL" ]; then
    echo "serve gate: daemon never printed its listen URL" >&2
    exit 1
fi
echo "serve gate: daemon at $URL (pid $PID)"

# Byte-identity gate: the served response for a config must diff clean
# against a local replay of the same config — first as a cache miss...
"$DIRCC" submit --serve "$URL" --scheme Dir1NB --profile pops --refs 20000 \
    --expect-cache miss >"$TMP/served_miss.json"
"$DIRCC" replay --json --scheme Dir1NB --profile pops --refs 20000 \
    >"$TMP/local.json"
diff "$TMP/served_miss.json" "$TMP/local.json"
# ...then again as an observable cache hit serving the same bytes...
"$DIRCC" submit --serve "$URL" --scheme Dir1NB --profile pops --refs 20000 \
    --expect-cache hit >"$TMP/served_hit.json"
diff "$TMP/served_miss.json" "$TMP/served_hit.json"
# ...and once more sharded on the dyn engine (a distinct cache key, so a
# miss) — counters are pinned shard- and engine-invariant.
"$DIRCC" submit --serve "$URL" --scheme Dir1NB --profile pops --refs 20000 \
    --shards 3 --engine dyn --expect-cache miss >"$TMP/served_sharded.json"
diff "$TMP/served_miss.json" "$TMP/served_sharded.json"

# The other routes answer: health, a windowed series, the span export.
"$DIRCC" submit --serve "$URL" --op health | grep -q '"status": "ok"'
"$DIRCC" submit --serve "$URL" --op series --scheme Wti --profile thor \
    --refs 8000 --window 2000 | wc -l | grep -qx 4
"$DIRCC" submit --serve "$URL" --op spans | grep -q '"cat": "dircc"'

# Load gate: a mixed hit/miss schedule from concurrent clients must
# complete with zero errors and report latency percentiles.
"$DIRCC" bench --serve "$URL" --clients 4 --requests 400 --refs 5000 \
    --out "$BENCH_OUT"

# Drain gate: /shutdown finishes in-flight work and the process exits 0
# on its own; anything still alive after the grace window is an orphan.
"$DIRCC" submit --serve "$URL" --op shutdown >/dev/null
i=0
while [ $i -lt 50 ] && kill -0 "$PID" 2>/dev/null; do
    sleep 0.2
    i=$((i + 1))
done
if kill -0 "$PID" 2>/dev/null; then
    echo "serve gate: daemon did not drain after /shutdown (orphan)" >&2
    exit 1
fi
wait "$PID"
grep -q "drained after" "$TMP/serve.out"
PID=""
echo "serve gate: PASS"

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of rand 0.8 it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`].
//!
//! The implementation is a faithful port of rand 0.8.5 semantics so that
//! seeded streams are **bit-identical** with the real crate:
//!
//! * `SmallRng` is xoshiro256++ (the 64-bit `SmallRng` of rand 0.8);
//! * `seed_from_u64` is xoshiro's SplitMix64 expansion;
//! * `next_u32` takes the upper 32 bits of `next_u64`;
//! * `Standard` floats use the multiply-based 53-bit method on the most
//!   significant bits;
//! * `gen_range` uses the widening-multiply rejection sampler with the
//!   same zone approximation as rand's `UniformInt::sample_single`.

/// A random number generator core: the `RngCore` subset we need.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The per-generator seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it over the full seed.
    ///
    /// Generators may override this (xoshiro256++ does, with SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core's default PCG-based expansion.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Distribution of uniformly random values of `T` over its full domain
/// (or `[0, 1)` for floats) — rand's `Standard`.
pub trait Standard2: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard2 for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard2 for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard2 for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard2 for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard2 for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard2 for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Most significant bit of a u32, as in rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard2 for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Multiply-based method, 53 significant bits, [0, 1).
        let precision = 52 + 1;
        let scale = 1.0 / ((1u64 << precision) as f64);
        let value = rng.next_u64() >> (64 - precision);
        scale * value as f64
    }
}

impl Standard2 for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let precision = 23 + 1;
        let scale = 1.0 / ((1u32 << precision) as f32);
        let value = rng.next_u32() >> (32 - precision);
        scale * value as f32
    }
}

/// Types usable with [`Rng::gen_range`] — rand's `SampleUniform`, reduced
/// to single-sample use.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int_impl {
    ($ty:ty, $u_large:ty, $sample:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as $u_large;
                // rand 0.8's conservative zone approximation.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$sample() as $u_large;
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

/// Widening multiply helpers returning `(high, low)` halves.
trait WideningMul: Sized {
    fn widening(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn widening(self, other: Self) -> (Self, Self) {
        let t = u64::from(self) * u64::from(other);
        ((t >> 32) as u32, t as u32)
    }
}

impl WideningMul for u64 {
    fn widening(self, other: Self) -> (Self, Self) {
        let t = u128::from(self) * u128::from(other);
        ((t >> 64) as u64, t as u64)
    }
}

fn wmul<T: WideningMul>(a: T, b: T) -> (T, T) {
    a.widening(b)
}

uniform_int_impl!(u8, u32, next_u32);
uniform_int_impl!(u16, u32, next_u32);
uniform_int_impl!(u32, u32, next_u32);
uniform_int_impl!(u64, u64, next_u64);
uniform_int_impl!(usize, u64, next_u64);
uniform_int_impl!(i8, u32, next_u32);
uniform_int_impl!(i16, u32, next_u32);
uniform_int_impl!(i32, u32, next_u32);
uniform_int_impl!(i64, u64, next_u64);

/// The user-facing generator extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard2>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_single(range.start, range.end, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        // Bernoulli via 64-bit fixed point, as in rand 0.8.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small fast generator: xoshiro256++, exactly as in rand 0.8 on
    /// 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of xoshiro have weak linear structure.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; rand seeds around it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    0x2545f4914f6cdd1d,
                ];
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // xoshiro's SplitMix64 seed expansion (overrides the default).
            const PHI: u64 = 0x9e3779b97f4a7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_expansion_is_splitmix64() {
        use super::RngCore;
        // SplitMix64 from state 0 produces this well-known first output
        // (0x9e3779b97f4a7c15 mixed), so the expanded state is non-trivial
        // and distinct streams come from distinct seeds.
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let (x, y) = (a.next_u64(), b.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(0u64..7);
            assert!(v < 7);
            let w = rng.gen_range(3u16..9);
            assert!((3..9).contains(&w));
        }
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..16).map(|_| r.gen_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..16).map(|_| r.gen_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function`, `Bencher::iter`, throughput annotation, `sample_size`
//! and `measurement_time` — over a plain wall-clock measurement loop with
//! median-of-samples reporting. No statistics beyond that: the goal is a
//! usable `cargo bench` in an offline environment, not criterion's
//! analysis.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    #[allow(dead_code)]
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group (accepted, unused beyond
    /// clamping — parity helper).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            measurement_time: self.criterion.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut line = format!("  {id:<28}");
        if let Some(median) = b.median() {
            let _ = write!(line, " {:>12}/iter", fmt_duration(median));
            if let Some(t) = self.throughput {
                let per_sec = |n: u64| n as f64 / median.as_secs_f64();
                match t {
                    Throughput::Elements(n) => {
                        let _ = write!(line, "  {:>14.0} elem/s", per_sec(n));
                    }
                    Throughput::Bytes(n) => {
                        let _ = write!(line, "  {:>14.0} B/s", per_sec(n));
                    }
                }
            }
        } else {
            line.push_str(" (no samples)");
        }
        println!("{line}");
        self
    }

    /// Ends the group (printing already happened incrementally).
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`, storing per-iteration samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up + calibration: how many iterations fit a sample?
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let per_sample = budget / (self.sample_size as u32);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let deadline = Instant::now() + budget;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let dt = t0.elapsed() / (iters as u32);
            self.samples.push(dt);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort();
        Some(s[s.len() / 2])
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.bench_function("add", |b| b.iter(|| black_box(2u64 + 2)));
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).contains("s"));
    }
}

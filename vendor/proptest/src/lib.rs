//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest 1.x API its tests use:
//!
//! * [`Strategy`] with [`Strategy::prop_map`];
//! * range, tuple, `any::<T>()`, `prop::bool::ANY` and
//!   `prop::collection::vec` strategies;
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   `prop_assert!` / `prop_assert_eq!`, [`test_runner::TestCaseError`]
//!   and [`test_runner::TestRunner`].
//!
//! Differences from real proptest, deliberate for an offline test shim:
//! cases are generated from a **fixed deterministic seed** (failures
//! reproduce across runs without a regression file), and failing inputs
//! are reported but **not shrunk**.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod test_runner {
    use super::*;

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property itself does not hold.
        Fail(String),
        /// The input should be discarded (unused here, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Creates a rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Runner configuration: only the knobs the workspace touches.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    /// The name proptest exports from its prelude.
    pub use Config as ProptestConfig;

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Generates inputs and runs a property over them.
    pub struct TestRunner {
        config: Config,
        rng: SmallRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed deterministic seed.
        pub fn new(config: Config) -> Self {
            // Deterministic: reproducible failures without persistence.
            TestRunner { config, rng: SmallRng::seed_from_u64(0x7072_6f70_7465_7374) }
        }

        /// Runs `test` against `config.cases` generated inputs.
        ///
        /// # Errors
        ///
        /// Returns the first failing case's message, with its input.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), String>
        where
            S::Value: Debug + Clone,
        {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                let shown = format!("{input:?}");
                let outcome = catch_unwind(AssertUnwindSafe(|| test(input.clone())));
                let failure = match outcome {
                    Ok(Ok(())) => None,
                    Ok(Err(TestCaseError::Reject(_))) => None,
                    Ok(Err(TestCaseError::Fail(msg))) => Some(msg),
                    Err(panic) => Some(panic_message(&panic)),
                };
                if let Some(msg) = failure {
                    return Err(format!(
                        "property failed at case {case}/{}: {msg}\ninput: {shown}",
                        self.config.cases
                    ));
                }
            }
            Ok(())
        }
    }

    fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "panicked".to_string()
        }
    }
}

/// A value generator — real proptest's `Strategy`, minus shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (parity helper; cheap here).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Full-domain strategies for primitives — proptest's `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-domain primitive strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! any_uniform {
    ($($ty:ty => $gen:expr),* $(,)?) => {
        $(
            impl Strategy for AnyStrategy<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    let f: fn(&mut SmallRng) -> $ty = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $ty {
                type Strategy = AnyStrategy<$ty>;
                fn arbitrary() -> Self::Strategy {
                    AnyStrategy(std::marker::PhantomData)
                }
            }
        )*
    };
}

any_uniform! {
    u8 => |r| r.gen::<u8>(),
    u16 => |r| r.gen::<u16>(),
    u32 => |r| r.gen::<u32>(),
    u64 => |r| r.gen::<u64>(),
    usize => |r| r.gen::<usize>(),
    bool => |r| r.gen::<bool>(),
    i8 => |r| r.gen::<u8>() as i8,
    i16 => |r| r.gen::<u16>() as i16,
    i32 => |r| r.gen::<u32>() as i32,
    i64 => |r| r.gen::<u64>() as i64,
    f64 => |r| r.gen::<f64>(),
    f32 => |r| r.gen::<f32>(),
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use super::super::*;

        /// Uniform `bool`.
        #[derive(Debug, Clone, Copy, Default)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut SmallRng) -> bool {
                rng.gen::<bool>()
            }
        }

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors whose length is uniform in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.start..self.len.end);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Numeric strategies namespace (range syntax covers the rest).
    pub mod num {}
}

/// Everything a proptest test file imports.
pub mod prelude {
    pub use super::prop;
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ( $($strat,)+ );
                let result = runner.run(&strategy, |( $($arg,)+ )| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(e) = result {
                    panic!("{}\n(test: {})", e, stringify!($name));
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u16..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn mapped_tuples_compose(v in prop::collection::vec((0u8..5, prop::bool::ANY).prop_map(|(a, b)| (a, b)), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, _) in v {
                prop_assert!(a < 5);
            }
        }
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(50));
        let result = runner.run(&(0u32..100,), |(x,)| {
            prop_assert!(x < 10, "x too big: {x}");
            Ok(())
        });
        let err = result.expect_err("property must fail");
        assert!(err.contains("input:"), "{err}");
    }

    #[test]
    fn panics_are_failures_not_aborts() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(10));
        let result = runner.run(&(0u32..2,), |(x,)| {
            assert!(x > 100, "boom");
            Ok(())
        });
        assert!(result.is_err());
    }
}

#!/bin/sh
# Local CI: the same gates as .github/workflows/ci.yml, in order.
set -eux

cargo build --release
cargo test -q
# Shard-equivalence gate: sharded replay must be bit-identical to serial
# for every scheme, on random traces and the pinned workbench matrix.
cargo test -q -p dircc-sim --test sharding
# Mono-equivalence gate: the monomorphized SoA replay must be
# bit-identical to the dyn reference for every scheme, serial and sharded,
# finite caches and verifier included.
cargo test -q -p dircc-sim --test mono
# Correctness gate: bounded exhaustive model check of every protocol,
# plus the serial-vs-sharded replay equivalence check it ends with.
./target/release/dircc check --smoke
# Perf gate: sharded replay throughput report, then compare the
# deterministic per-run counters against the checked-in baseline
# (wall-clock drift is reported but never fails). Because the bench runs
# through the engine's no-op recorder, this doubles as the observability
# drift gate: any counter perturbation from the instrumentation layer
# fails here — and running it at --shards 2 makes the shard merge itself
# part of the drift surface.
./target/release/dircc bench --smoke --shards 2 --repeat 3 --out /tmp/BENCH_smoke.json
./target/release/dircc benchcmp --smoke --shards 2 --engine mono --in BENCH_smoke.json
# Same gate on the dyn reference engine: its counter digests must match
# the same (mono-written) baseline, pinning mono-vs-dyn bit-identity in
# CI on top of the test suite.
./target/release/dircc benchcmp --smoke --shards 2 --engine dyn --in BENCH_smoke.json
# Observability smoke: windowed time series + span profile of the
# scalability work list.
./target/release/dircc profile scaling --smoke \
    --out /tmp/PROFILE_timeseries.jsonl --spans /tmp/PROFILE_spans.json
# Streaming round-trip gate: a recorded chunked v2 trace replayed from
# disk (streamed, then sharded via out-of-core spill files) must print
# byte-identical results to the in-memory replay of the same profile,
# verifier on.
./target/release/dircc record --profile thor --refs 20000 --out /tmp/smoke_v2.dcct
./target/release/dircc replay --in /tmp/smoke_v2.dcct --verify > /tmp/replay_file.txt
./target/release/dircc replay --profile thor --refs 20000 --verify > /tmp/replay_mem.txt
diff /tmp/replay_file.txt /tmp/replay_mem.txt
./target/release/dircc replay --in /tmp/smoke_v2.dcct --verify --shards 3 \
    > /tmp/replay_sharded.txt
diff /tmp/replay_file.txt /tmp/replay_sharded.txt
# Serve gate: the HTTP daemon on an ephemeral port — served /run
# responses diffed byte-for-byte against `dircc replay --json` (cache
# miss, cache hit, sharded dyn-engine), a mixed-workload load run with
# zero errors writing BENCH_serve.json, a request-ID log/span join, an
# exact /metrics reconciliation against the scripted load (scrape kept
# as SERVE_metrics.prom), a `dircc top --once` snapshot check, then a
# graceful /shutdown drain with an orphan check. The timeout is the
# hard ceiling on a hang.
timeout 300 ./ci_serve_gate.sh
cargo clippy --all-targets -- -D warnings
cargo fmt --check

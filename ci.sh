#!/bin/sh
# Local CI: the same gates as .github/workflows/ci.yml, in order.
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check

#!/bin/sh
# Local CI: the same gates as .github/workflows/ci.yml, in order.
set -eux

cargo build --release
cargo test -q
# Correctness gate: bounded exhaustive model check of every protocol.
./target/release/dircc check --smoke
# Perf gate: replay throughput report, then compare the deterministic
# per-run counters against the checked-in baseline (wall-clock drift is
# reported but never fails). Because the bench runs through the engine's
# no-op recorder, this doubles as the observability drift gate: any
# counter perturbation from the instrumentation layer fails here.
./target/release/dircc bench --smoke --out /tmp/BENCH_smoke.json
./target/release/dircc benchcmp --smoke --in BENCH_smoke.json
# Observability smoke: windowed time series + span profile of the
# scalability work list.
./target/release/dircc profile scaling --smoke \
    --out /tmp/PROFILE_timeseries.jsonl --spans /tmp/PROFILE_spans.json
cargo clippy --all-targets -- -D warnings
cargo fmt --check

#!/bin/sh
# Local CI: the same gates as .github/workflows/ci.yml, in order.
set -eux

cargo build --release
cargo test -q
./target/release/dircc bench --smoke --out /tmp/BENCH_smoke.json
cargo clippy --all-targets -- -D warnings
cargo fmt --check

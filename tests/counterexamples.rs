//! Minimized counterexample-style sequences, pinned per directory scheme.
//!
//! Each test replays the shortest op sequence that exercises one scheme's
//! signature hard case — the exact shapes the `dircc check` model checker
//! explores — and pins the resulting events and message counters. Every
//! sequence is cross-checked three ways:
//!
//! 1. the pinned `Outcome` assertions below (the scheme's contract);
//! 2. the checker's value model, via `dircc::check::replay` (no
//!    coherence violation);
//! 3. the sim engine with per-reference verification enabled.
//!
//! Keeping them as plain tests means the cases run on every `cargo test`
//! even when nobody runs the model checker.

use dircc::check::{replay, Op, OpKind};
use dircc::core::{build, Event, MissContext, ProtocolKind, WriteHitContext};
use dircc::sim::engine::{run, RunConfig};
use dircc::trace::TraceRecord;
use dircc::types::{AccessKind, Address, BlockAddr, CacheId, CpuId, ProcessId};

const CPUS: usize = 3;

fn b0() -> BlockAddr {
    BlockAddr::from_index(0)
}

fn op(cache: u16, kind: OpKind, block: u64) -> Op {
    Op { cache: CacheId::new(cache), kind, block: BlockAddr::from_index(block) }
}

/// Replays `ops` through the checker's value model and the sim engine
/// (verifier on); both must find the sequence coherent.
fn cross_check(kind: ProtocolKind, ops: &[Op]) {
    assert_eq!(
        replay(build(kind, CPUS), CPUS, ops),
        None,
        "{kind}: the checker's value model must accept the pinned sequence"
    );
    let trace: Vec<TraceRecord> = ops
        .iter()
        .filter(|o| o.kind != OpKind::Evict) // the engine evicts on capacity, not on demand
        .map(|o| {
            let access = if o.kind == OpKind::Write { AccessKind::Write } else { AccessKind::Read };
            let cpu = CpuId::new(o.cache.raw());
            TraceRecord::new(
                cpu,
                ProcessId::new(o.cache.raw()),
                access,
                Address::new(o.block.index() * 16),
            )
        })
        .collect();
    let mut p = build(kind, CPUS);
    let res = run(p.as_mut(), trace.iter().copied(), &RunConfig::verifying(1))
        .unwrap_or_else(|e| panic!("{kind}: {e}"));
    assert!(res.violations.is_empty(), "{kind}: {:?}", res.violations);
}

/// `Dir_1_B`: the second reader overflows the single pointer and sets the
/// broadcast bit; the next write must fall back to a broadcast
/// invalidate — the scheme's defining cost.
#[test]
fn dir1b_broadcast_fallback() {
    let kind = ProtocolKind::DirB { pointers: 1 };
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    let o = p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
    assert!(!o.used_broadcast, "overflow itself is silent; only the write pays");
    let o = p.access(CacheId::new(0), AccessKind::Write, b0(), false);
    assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
    assert!(o.used_broadcast, "overflowed entry must invalidate by broadcast");
    assert_eq!(p.holders(b0()).len(), 1, "the broadcast reclaims exclusivity");
    p.check_invariants().unwrap();
    cross_check(kind, &[op(0, OpKind::Read, 0), op(1, OpKind::Read, 0), op(0, OpKind::Write, 0)]);
}

/// `Dir_2_NB`: the third reader overflows both pointers, so the directory
/// evicts the FIFO-front copy (cache 0) with one invalidation message —
/// no broadcast exists in a no-broadcast scheme.
#[test]
fn dir2nb_pointer_overflow_evicts_fifo_front() {
    let kind = ProtocolKind::DirNb { pointers: 2 };
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    let o = p.access(CacheId::new(2), AccessKind::Read, b0(), false);
    assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 2 }));
    assert_eq!(o.control_messages, 1, "one invalidate to the displaced copy");
    assert_eq!(o.directory_evictions, 1, "pointer overflow is a directory eviction");
    assert!(!o.used_broadcast);
    let holders = p.holders(b0());
    assert_eq!(holders.len(), 2);
    assert!(!holders.contains(CacheId::new(0)), "FIFO front (first reader) is the victim");
    p.check_invariants().unwrap();
    cross_check(kind, &[op(0, OpKind::Read, 0), op(1, OpKind::Read, 0), op(2, OpKind::Read, 0)]);
}

/// `Dir_1_NB`: with a single pointer, every new reader displaces the old
/// one. The displacement costs an invalidate but is *not* counted as a
/// directory eviction (it is inherent to i=1, not an overflow — the
/// paper's Figure 5 depends on this distinction).
#[test]
fn dir1nb_displacement_is_not_an_eviction() {
    let kind = ProtocolKind::DirNb { pointers: 1 };
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    let o = p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
    assert_eq!(o.control_messages, 1, "the displaced copy is invalidated");
    assert_eq!(o.directory_evictions, 0, "i=1 displacement is not an overflow eviction");
    assert_eq!(p.holders(b0()).len(), 1);
    p.check_invariants().unwrap();
    cross_check(kind, &[op(0, OpKind::Read, 0), op(1, OpKind::Read, 0)]);
}

/// `Dir_0_B`: with zero pointers every write to a shared block must
/// broadcast, even when only one other copy exists.
#[test]
fn dir0b_always_broadcasts_on_shared_writes() {
    let kind = ProtocolKind::Dir0B;
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    let o = p.access(CacheId::new(0), AccessKind::Write, b0(), false);
    assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
    assert!(o.used_broadcast, "no pointers means no targeted invalidate");
    assert_eq!(o.control_messages, 0);
    assert_eq!(p.holders(b0()).len(), 1);
    p.check_invariants().unwrap();
    cross_check(kind, &[op(0, OpKind::Read, 0), op(1, OpKind::Read, 0), op(0, OpKind::Write, 0)]);
}

/// Coded set: the same two-sharer write resolves to one *targeted*
/// invalidate (the code pins the other sharer exactly) — the contrast
/// with `Dir_0_B`'s broadcast above.
#[test]
fn coded_set_write_invalidates_by_pointer_not_broadcast() {
    let kind = ProtocolKind::CodedSet;
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    let o = p.access(CacheId::new(0), AccessKind::Write, b0(), false);
    assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
    assert!(!o.used_broadcast, "the coded set resolves the sharer exactly");
    assert_eq!(o.control_messages, 1);
    assert_eq!(p.holders(b0()).len(), 1);
    p.check_invariants().unwrap();
    cross_check(kind, &[op(0, OpKind::Read, 0), op(1, OpKind::Read, 0), op(0, OpKind::Write, 0)]);
}

/// Tang's full map: three sharers fit without any eviction, and a write
/// sends exactly one invalidate per other sharer.
#[test]
fn tang_full_map_never_overflows() {
    let kind = ProtocolKind::Tang;
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    let o = p.access(CacheId::new(2), AccessKind::Read, b0(), false);
    assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 2 }));
    assert_eq!(o.directory_evictions, 0, "a full map holds every sharer");
    assert_eq!(o.control_messages, 0);
    let o = p.access(CacheId::new(0), AccessKind::Write, b0(), false);
    assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 2 }));
    assert_eq!(o.control_messages, 2, "one targeted invalidate per other sharer");
    assert!(!o.used_broadcast);
    p.check_invariants().unwrap();
    cross_check(
        kind,
        &[
            op(0, OpKind::Read, 0),
            op(1, OpKind::Read, 0),
            op(2, OpKind::Read, 0),
            op(0, OpKind::Write, 0),
        ],
    );
}

/// Yen & Fu: the second reader costs an auxiliary message to clear the
/// old sole holder's single bit, and a write to a clean-exclusive copy is
/// free (the single bit proves exclusivity without asking the directory).
#[test]
fn yenfu_single_bit_costs_and_savings() {
    let kind = ProtocolKind::YenFu;
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    let o = p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
    assert_eq!(o.aux_messages, 1, "clearing the old holder's single bit");

    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Read, b0(), true);
    let o = p.access(CacheId::new(0), AccessKind::Write, b0(), false);
    assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
    assert_eq!(o.control_messages, 0, "the single bit makes this write free");
    assert_eq!(o.aux_messages, 0);
    p.check_invariants().unwrap();
    cross_check(kind, &[op(0, OpKind::Read, 0), op(1, OpKind::Read, 0)]);
    cross_check(kind, &[op(0, OpKind::Read, 0), op(0, OpKind::Write, 0)]);
}

/// A dirty copy displaced by pointer overflow must write back — the
/// checker's value model and the engine verifier both confirm no data is
/// lost (reading the block again observes the latest write).
#[test]
fn dirty_displacement_writes_back() {
    let kind = ProtocolKind::DirNb { pointers: 1 };
    let mut p = build(kind, CPUS);
    p.access(CacheId::new(0), AccessKind::Write, b0(), true);
    let o = p.access(CacheId::new(1), AccessKind::Read, b0(), false);
    assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
    assert!(o.write_back, "the displaced dirty copy must reach memory");
    assert!(o.memory_updated);
    p.check_invariants().unwrap();
    cross_check(kind, &[op(0, OpKind::Write, 0), op(1, OpKind::Read, 0), op(2, OpKind::Read, 0)]);
}

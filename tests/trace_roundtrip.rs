//! Property tests for the trace codecs and generator determinism.

use dircc::trace::codec::{read_text, write_text, BinaryReader, BinaryWriter};
use dircc::trace::gen::{Generator, Profile};
use dircc::trace::{RecordFlags, TraceRecord};
use dircc::types::{AccessKind, Address, CpuId, ProcessId};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (any::<u16>(), any::<u16>(), 0u8..3, any::<u64>(), 0u8..4).prop_map(
        |(cpu, pid, kind, addr, flags)| {
            let kind = match kind {
                0 => AccessKind::InstrFetch,
                1 => AccessKind::Read,
                _ => AccessKind::Write,
            };
            TraceRecord {
                cpu: CpuId::new(cpu),
                pid: ProcessId::new(pid),
                kind,
                addr: Address::new(addr),
                flags: RecordFlags::from_bits(flags),
            }
        },
    )
}

proptest! {
    #[test]
    fn binary_codec_round_trips(records in prop::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write_all(&records).unwrap();
        w.finish().unwrap();
        let got: Vec<TraceRecord> =
            BinaryReader::new(&buf[..]).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn text_codec_round_trips(records in prop::collection::vec(arb_record(), 0..100)) {
        let mut buf = Vec::new();
        write_text(&mut buf, &records).unwrap();
        let got = read_text(&buf[..]).unwrap();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn binary_encoding_is_compact(records in prop::collection::vec(arb_record(), 1..200)) {
        // Header (5) + at most 16 bytes per record (6 fixed + 10 LEB128).
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write_all(&records).unwrap();
        w.finish().unwrap();
        prop_assert!(buf.len() <= 5 + records.len() * 16);
        prop_assert!(buf.len() >= 5 + records.len() * 7);
    }

    #[test]
    fn truncating_a_binary_trace_never_panics(
        records in prop::collection::vec(arb_record(), 1..50),
        cut in 0usize..1000
    ) {
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write_all(&records).unwrap();
        w.finish().unwrap();
        let cut = cut.min(buf.len());
        let truncated = &buf[..cut];
        // Must either parse a prefix or report an error — never panic.
        if let Ok(reader) = BinaryReader::new(truncated) {
            let _ = reader.collect::<Vec<_>>();
        }
    }

    #[test]
    fn generator_is_deterministic(seed in any::<u64>()) {
        let p = Profile::pero().with_total_refs(2_000);
        let a: Vec<TraceRecord> = Generator::new(p.clone(), seed).collect();
        let b: Vec<TraceRecord> = Generator::new(p, seed).collect();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn generated_traces_round_trip_through_the_binary_codec() {
    let records: Vec<TraceRecord> =
        Generator::new(Profile::thor().with_total_refs(30_000), 5).collect();
    let mut buf = Vec::new();
    let mut w = BinaryWriter::new(&mut buf);
    w.write_all(&records).unwrap();
    w.finish().unwrap();
    let got: Vec<TraceRecord> =
        BinaryReader::new(&buf[..]).unwrap().collect::<Result<_, _>>().unwrap();
    assert_eq!(got, records);
    assert!(
        buf.len() < records.len() * 12,
        "generated traces should encode compactly: {} bytes for {} records",
        buf.len(),
        records.len()
    );
}

//! Property-based coherence verification across every protocol.
//!
//! Random traces are replayed through each protocol with the engine's
//! value-level verifier and per-reference invariant checks enabled:
//!
//! * every read observes the globally latest write;
//! * invalidation protocols never leave a stale copy alive after a write;
//! * data is never supplied from stale memory;
//! * each protocol's internal invariants (directory/cache agreement,
//!   single-writer, pointer-occupancy bounds, coded-set superset) hold at
//!   every step.

use dircc::core::{build, ProtocolKind};
use dircc::sim::engine::{run, RunConfig};
use dircc::trace::TraceRecord;
use dircc::types::{AccessKind, Address, CpuId, ProcessId};
use proptest::prelude::*;

const CPUS: u16 = 4;

fn all_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::DirNb { pointers: 1 },
        ProtocolKind::DirNb { pointers: 2 },
        ProtocolKind::DirNb { pointers: 3 },
        ProtocolKind::DirNb { pointers: 4 },
        ProtocolKind::Dir0B,
        ProtocolKind::DirB { pointers: 1 },
        ProtocolKind::DirB { pointers: 2 },
        ProtocolKind::CodedSet,
        ProtocolKind::Tang,
        ProtocolKind::YenFu,
        ProtocolKind::Wti,
        ProtocolKind::Dragon,
        ProtocolKind::Berkeley,
        ProtocolKind::WriteOnce,
        ProtocolKind::Firefly,
        ProtocolKind::Mesi,
    ]
}

/// A random data reference over a small, collision-heavy block space.
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0..CPUS, 0u64..12, prop::bool::ANY).prop_map(|(cpu, block, write)| {
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        TraceRecord::new(CpuId::new(cpu), ProcessId::new(cpu), kind, Address::new(block * 16))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_protocol_is_coherent_on_random_traces(
        trace in prop::collection::vec(arb_record(), 1..400)
    ) {
        for kind in all_kinds() {
            let mut p = build(kind, usize::from(CPUS));
            let res = run(p.as_mut(), trace.iter().copied(), &RunConfig::verifying(1))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            prop_assert!(
                res.violations.is_empty(),
                "{kind}: {:?}",
                res.violations
            );
        }
    }

    #[test]
    fn single_writer_holds_for_invalidation_protocols(
        trace in prop::collection::vec(arb_record(), 1..300)
    ) {
        use dircc::types::BlockGeometry;
        use dircc::core::CoherenceStyle;
        for kind in all_kinds() {
            if kind.style() == CoherenceStyle::Update {
                continue; // update protocols: multiple copies live on
            }
            let mut p = build(kind, usize::from(CPUS));
            let g = BlockGeometry::PAPER;
            for (i, r) in trace.iter().enumerate() {
                let block = g.block_of(r.addr);
                p.access(CpuId::new(r.cpu.raw()).cache(), r.kind, block, false);
                if r.kind == AccessKind::Write {
                    prop_assert_eq!(
                        p.holders(block).len(),
                        1,
                        "{} after write at step {}",
                        kind,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn holder_counts_respect_pointer_limits(
        trace in prop::collection::vec(arb_record(), 1..300),
        pointers in 1u32..4
    ) {
        use dircc::types::BlockGeometry;
        let mut p = build(ProtocolKind::DirNb { pointers }, usize::from(CPUS));
        let g = BlockGeometry::PAPER;
        for r in &trace {
            let block = g.block_of(r.addr);
            p.access(CpuId::new(r.cpu.raw()).cache(), r.kind, block, false);
            prop_assert!(
                p.holders(block).len() <= pointers as usize,
                "Dir{}NB exceeded its pointer limit: {} holders",
                pointers,
                p.holders(block).len()
            );
        }
        p.check_invariants().unwrap();
    }

    #[test]
    fn dragon_never_loses_copies(
        trace in prop::collection::vec(arb_record(), 1..300)
    ) {
        use dircc::types::BlockGeometry;
        let mut p = build(ProtocolKind::Dragon, usize::from(CPUS));
        let g = BlockGeometry::PAPER;
        let mut max_holders = std::collections::HashMap::new();
        for r in &trace {
            let block = g.block_of(r.addr);
            p.access(CpuId::new(r.cpu.raw()).cache(), r.kind, block, false);
            let h = p.holders(block).len();
            let m = max_holders.entry(block).or_insert(0usize);
            prop_assert!(h >= *m, "Dragon dropped a copy: {h} < {m}");
            *m = h;
        }
    }
}

/// The shrunk case from `coherence_invariants.proptest-regressions`,
/// pinned as a plain deterministic test: CPU 0 reads block 128, then
/// CPU 1 writes it. This once tripped a read-miss/write-miss transition
/// bug; keeping it here means the case runs on every `cargo test`
/// regardless of the property runner's seed.
#[test]
fn pinned_regression_read_then_remote_write() {
    let trace = [
        TraceRecord::new(CpuId::new(0), ProcessId::new(0), AccessKind::Read, Address::new(128)),
        TraceRecord::new(CpuId::new(1), ProcessId::new(1), AccessKind::Write, Address::new(128)),
    ];
    for kind in all_kinds() {
        let mut p = build(kind, usize::from(CPUS));
        let res = run(p.as_mut(), trace.iter().copied(), &RunConfig::verifying(1))
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(res.violations.is_empty(), "{kind}: {:?}", res.violations);
    }
}

#[test]
fn protocols_survive_a_long_adversarial_trace() {
    // A deterministic worst case: all CPUs hammer two blocks with mixed
    // reads and writes, checked at every step.
    let mut trace = Vec::new();
    for i in 0..2_000u64 {
        let cpu = (i % 4) as u16;
        let block = (i / 3) % 2;
        let kind = if i % 5 < 2 { AccessKind::Write } else { AccessKind::Read };
        trace.push(TraceRecord::new(
            CpuId::new(cpu),
            ProcessId::new(cpu),
            kind,
            Address::new(block * 16),
        ));
    }
    for kind in all_kinds() {
        let mut p = build(kind, 4);
        let res = run(p.as_mut(), trace.iter().copied(), &RunConfig::verifying(1))
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(res.violations.is_empty(), "{kind}: {:?}", res.violations);
    }
}

//! End-to-end reproduction checks: every table/figure runner executes on a
//! moderate-scale trace suite and satisfies the paper's qualitative
//! results (orderings, ratios, crossovers). EXPERIMENTS.md records the
//! corresponding quantitative comparison at full paper scale.

use dircc::bus::{CostConfig, CostModel};
use dircc::core::ProtocolKind;
use dircc::sim::experiments::{figures, studies, tables};
use dircc::sim::{TraceFilter, Workbench};

fn wb() -> Workbench {
    // One shared scale for the whole suite; big enough for stable shapes.
    Workbench::paper_scaled(120_000, 1988)
}

#[test]
fn headline_ordering_dir1nb_wti_dir0b_dragon() {
    let wb = wb();
    let t5 = tables::table5(&wb);
    let dir1 = t5.cumulative("Dir1NB").unwrap();
    let wti = t5.cumulative("WTI").unwrap();
    let dir0 = t5.cumulative("Dir0B").unwrap();
    let dragon = t5.cumulative("Dragon").unwrap();
    assert!(
        dir1 > wti && wti > dir0 && dir0 > dragon,
        "ordering Dir1NB({dir1}) > WTI({wti}) > Dir0B({dir0}) > Dragon({dragon})"
    );
    // Paper: Dir0B uses "close to 50% more bus cycles than the Dragon
    // scheme"; allow a generous band around that ratio.
    let ratio = dir0 / dragon;
    assert!((1.2..=2.4).contains(&ratio), "Dir0B/Dragon = {ratio} (paper: ~1.46)");
    // Paper: Dir1NB is "over a factor of six greater" than Dir0B.
    assert!(dir1 / dir0 > 3.0, "Dir1NB/Dir0B = {} (paper: >6)", dir1 / dir0);
}

#[test]
fn figure1_small_sharer_counts() {
    let f1 = figures::figure1(&wb());
    assert!(
        f1.at_most_one >= 0.85,
        "paper: >85% of invalidation situations touch <=1 cache; got {:.3}",
        f1.at_most_one
    );
}

#[test]
fn figure2_and_3_consistent() {
    let wb = wb();
    let f2 = figures::figure2(&wb);
    let f3 = figures::figure3(&wb);
    // Figure 2 is the average of Figure 3's per-trace values.
    for r in &f2.ranges {
        let per_trace: Vec<f64> =
            wb.trace_names().iter().map(|t| f3.pipelined(t, &r.scheme).unwrap()).collect();
        let avg = per_trace.iter().sum::<f64>() / per_trace.len() as f64;
        assert!(
            (avg - r.pipelined).abs() < 1e-9,
            "{}: figure2 {} != mean(figure3) {}",
            r.scheme,
            r.pipelined,
            avg
        );
    }
    // PERO is the cheapest trace for the sharing-dominated schemes.
    for scheme in ["Dir0B", "Dragon", "Dir1NB"] {
        assert!(f3.pipelined("PERO", scheme).unwrap() < f3.pipelined("POPS", scheme).unwrap());
        assert!(f3.pipelined("PERO", scheme).unwrap() < f3.pipelined("THOR", scheme).unwrap());
    }
}

#[test]
fn figure5_transaction_weights() {
    let f5 = figures::figure5(&wb());
    // Paper's Figure 5 shape: Dir1NB heaviest (~6 cycles/transaction,
    // every transaction a miss), then Dir0B (~4.3), then Dragon (~1.6),
    // WTI lightest (~1.3, mostly one-cycle write-throughs).
    let v = |s| f5.value(s).unwrap();
    assert!((5.0..=6.5).contains(&v("Dir1NB")), "Dir1NB {}", v("Dir1NB"));
    assert!((2.5..=5.0).contains(&v("Dir0B")), "Dir0B {}", v("Dir0B"));
    assert!((1.2..=2.5).contains(&v("Dragon")), "Dragon {}", v("Dragon"));
    assert!((1.0..=1.6).contains(&v("WTI")), "WTI {}", v("WTI"));
    assert!(v("Dir1NB") > v("Dir0B") && v("Dir0B") > v("Dragon") && v("Dragon") > v("WTI"));
}

#[test]
fn sensitivity_narrows_the_dragon_gap() {
    let s = studies::sensitivity(&wb());
    let r0 = s.dir0b_over_dragon(0.0).unwrap();
    let r1 = s.dir0b_over_dragon(1.0).unwrap();
    // Paper: 46% more at q=0 shrinking to 12% more at q=1. Shapes: the
    // ratio must fall substantially because Dragon has ~2x the
    // transactions.
    assert!(r0 > r1, "gap must narrow: {r0} -> {r1}");
    let (_, slope_dragon) = s.line("Dragon").unwrap();
    let (_, slope_dir0b) = s.line("Dir0B").unwrap();
    assert!(
        slope_dragon > 1.3 * slope_dir0b,
        "Dragon pays more per unit overhead: {slope_dragon} vs {slope_dir0b}"
    );
}

#[test]
fn spinlock_exclusion_story() {
    let s = studies::spinlock(&wb());
    assert!(
        s.dir1nb_improvement() > 1.5,
        "Dir1NB must improve significantly: {} -> {}",
        s.dir1nb_full,
        s.dir1nb_no_spins
    );
    let dir0b_change = (s.dir0b_full - s.dir0b_no_spins).abs() / s.dir0b_full;
    assert!(dir0b_change < 0.2, "Dir0B roughly unchanged: {dir0b_change}");
}

#[test]
fn sequential_invalidation_costs_almost_nothing() {
    let s = studies::scalability(&wb());
    let ratio = s.dirnnb / s.dir0b;
    assert!((0.99..=1.05).contains(&ratio), "paper: 0.0491 -> 0.0499 (+1.6%); got ratio {ratio}");
}

#[test]
fn berkeley_estimate_between_dir0b_and_dragon() {
    let b = studies::berkeley(&wb());
    assert!(b.dragon < b.estimate && b.estimate < b.dir0b);
    assert!(b.dragon < b.simulated && b.simulated < b.dir0b);
}

#[test]
fn directory_bandwidth_is_not_a_bottleneck() {
    // Paper: "the number of cycles used for directory access that cannot
    // be overlapped with memory access is small relative to the total".
    let wb = wb();
    let e = wb.evaluations(ProtocolKind::Dir0B, TraceFilter::Full);
    for eval in e {
        let b = eval.breakdown_per_ref(&CostModel::pipelined(), &CostConfig::PAPER);
        assert!(
            b.dir_access < 0.25 * b.total(),
            "directory share {} of {}",
            b.dir_access,
            b.total()
        );
    }
}

#[test]
fn system_performance_estimate_matches_section5() {
    // Paper: "a processor will use a bus cycle every 30 references"; with
    // the synthetic traces the best scheme should land in the same decade.
    let wb = wb();
    let dragon = wb.evaluations(ProtocolKind::Dragon, TraceFilter::Full);
    let cpr: f64 = dragon
        .iter()
        .map(|e| e.cycles_per_ref(&CostModel::pipelined(), &CostConfig::PAPER))
        .sum::<f64>()
        / dragon.len() as f64;
    let refs_per_cycle = 1.0 / cpr;
    assert!(
        (15.0..=70.0).contains(&refs_per_cycle),
        "one bus cycle every {refs_per_cycle:.0} references (paper: ~30)"
    );
}

#[test]
fn every_display_runner_produces_output() {
    let wb = wb();
    let outputs = [
        tables::table1().to_string(),
        tables::table2().to_string(),
        tables::table3(&wb).to_string(),
        tables::table4(&wb).to_string(),
        tables::table5(&wb).to_string(),
        figures::figure1(&wb).to_string(),
        figures::figure2(&wb).to_string(),
        figures::figure3(&wb).to_string(),
        figures::figure4(&wb).to_string(),
        figures::figure5(&wb).to_string(),
        studies::sensitivity(&wb).to_string(),
        studies::spinlock(&wb).to_string(),
        studies::berkeley(&wb).to_string(),
        studies::scalability(&wb).to_string(),
    ];
    for (i, out) in outputs.iter().enumerate() {
        assert!(out.lines().count() >= 3, "runner {i} output too short: {out:?}");
    }
}

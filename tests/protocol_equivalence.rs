//! Cross-protocol equivalences the paper derives analytically.
//!
//! "A cache consistency protocol can be thought of as being made up of two
//! parts: a specification of the state changes ... and the protocol which
//! is used to accomplish that specification. The frequency with which each
//! of the events ... occurs depends only on the state change
//! specification." Protocols sharing a state-change model must therefore
//! measure identical event totals — which this suite asserts by running
//! the actual implementations on the same traces.

use dircc::core::{EventCounters, ProtocolKind};
use dircc::sim::{TraceFilter, Workbench};

fn wb() -> Workbench {
    Workbench::paper_scaled(80_000, 17)
}

/// rm / wm / wh / rd-hit totals (the state-change-model invariants).
fn totals(c: &EventCounters) -> (u64, u64, u64, u64) {
    (c.rm(), c.wm(), c.wh(), c.read_hits())
}

#[test]
fn dir0b_and_wti_share_a_state_change_model() {
    let wb = wb();
    for t in 0..wb.num_traces() {
        let dir0b = wb.counters(ProtocolKind::Dir0B, t, TraceFilter::Full);
        let wti = wb.counters(ProtocolKind::Wti, t, TraceFilter::Full);
        assert_eq!(
            totals(&dir0b),
            totals(&wti),
            "trace {t}: Dir0B and WTI event totals must be identical (paper, section 5)"
        );
        // First references are protocol-independent.
        assert_eq!(dir0b.rm_first_ref(), wti.rm_first_ref());
        assert_eq!(dir0b.wm_first_ref(), wti.wm_first_ref());
    }
}

#[test]
fn full_map_matches_dir0b_event_totals() {
    // DirnNB replaces Dir0B's broadcasts with sequential invalidates but
    // the state-change model (multiple clean copies, one dirty) is the
    // same, so event totals coincide.
    let wb = wb();
    let n = wb.n_caches() as u32;
    for t in 0..wb.num_traces() {
        let dir0b = wb.counters(ProtocolKind::Dir0B, t, TraceFilter::Full);
        let full = wb.counters(ProtocolKind::DirNb { pointers: n }, t, TraceFilter::Full);
        assert_eq!(totals(&dir0b), totals(&full), "trace {t}");
        // Including the dirty/clean split.
        assert_eq!(dir0b.rm_blk_drty(), full.rm_blk_drty(), "trace {t}");
        assert_eq!(dir0b.wh_blk_cln(), full.wh_blk_cln(), "trace {t}");
    }
}

#[test]
fn tang_and_yenfu_match_the_full_map_exactly() {
    let wb = wb();
    let n = wb.n_caches() as u32;
    for t in 0..wb.num_traces() {
        let full = wb.counters(ProtocolKind::DirNb { pointers: n }, t, TraceFilter::Full);
        let tang = wb.counters(ProtocolKind::Tang, t, TraceFilter::Full);
        let yenfu = wb.counters(ProtocolKind::YenFu, t, TraceFilter::Full);
        assert_eq!(totals(&full), totals(&tang), "trace {t}: Tang is a full map");
        assert_eq!(totals(&full), totals(&yenfu), "trace {t}: YenFu is a full map");
        // Tang adds nothing at the event level at all.
        assert_eq!(full.control_messages(), tang.control_messages(), "trace {t}");
        // YenFu's only extra traffic is the single-bit maintenance.
        assert_eq!(full.control_messages(), yenfu.control_messages(), "trace {t}");
        assert!(yenfu.aux_messages() > 0, "trace {t}: single bits need maintenance");
        assert_eq!(full.aux_messages(), 0, "trace {t}");
    }
}

#[test]
fn berkeley_matches_dir0b_event_totals() {
    let wb = wb();
    for t in 0..wb.num_traces() {
        let dir0b = wb.counters(ProtocolKind::Dir0B, t, TraceFilter::Full);
        let berkeley = wb.counters(ProtocolKind::Berkeley, t, TraceFilter::Full);
        assert_eq!(
            totals(&dir0b),
            totals(&berkeley),
            "trace {t}: Berkeley shares Dir0B's which-blocks-where evolution"
        );
        // But Berkeley never writes back (ownership keeps memory stale).
        assert_eq!(berkeley.write_backs(), 0, "trace {t}");
        assert!(dir0b.write_backs() > 0, "trace {t}");
    }
}

#[test]
fn dirb_schemes_match_dir0b_event_totals() {
    // Limited pointers + broadcast bit never evict copies, so the state
    // model again matches Dir0B; only the delivery (directed vs broadcast)
    // differs.
    let wb = wb();
    for pointers in [1, 2] {
        for t in 0..wb.num_traces() {
            let dir0b = wb.counters(ProtocolKind::Dir0B, t, TraceFilter::Full);
            let dirb = wb.counters(ProtocolKind::DirB { pointers }, t, TraceFilter::Full);
            assert_eq!(totals(&dir0b), totals(&dirb), "Dir{pointers}B trace {t}");
            assert!(
                dirb.broadcasts() <= dir0b.broadcasts(),
                "Dir{pointers}B trace {t}: pointers can only reduce broadcasts"
            );
        }
    }
}

#[test]
fn coded_set_matches_full_map_event_totals() {
    // The coded set is also eviction-free; only invalidation *delivery*
    // (superset messages) differs from the full map.
    let wb = wb();
    let n = wb.n_caches() as u32;
    for t in 0..wb.num_traces() {
        let full = wb.counters(ProtocolKind::DirNb { pointers: n }, t, TraceFilter::Full);
        let coded = wb.counters(ProtocolKind::CodedSet, t, TraceFilter::Full);
        assert_eq!(totals(&full), totals(&coded), "trace {t}");
        assert!(
            coded.control_messages() >= full.control_messages(),
            "trace {t}: superset delivery can only send more messages"
        );
    }
}

#[test]
fn more_pointers_monotonically_reduce_misses() {
    let wb = wb();
    for t in 0..wb.num_traces() {
        let misses: Vec<u64> = (1..=wb.n_caches() as u32)
            .map(|i| {
                let c = wb.counters(ProtocolKind::DirNb { pointers: i }, t, TraceFilter::Full);
                c.rm() + c.wm()
            })
            .collect();
        for w in misses.windows(2) {
            assert!(w[1] <= w[0], "trace {t}: misses must not grow with pointer count: {misses:?}");
        }
    }
}

#[test]
fn write_once_matches_dir0b_event_totals() {
    // Write-Once's holder evolution is the same multiple-clean/one-dirty
    // model; only the write-through timing differs.
    let wb = wb();
    for t in 0..wb.num_traces() {
        let dir0b = wb.counters(ProtocolKind::Dir0B, t, TraceFilter::Full);
        let wo = wb.counters(ProtocolKind::WriteOnce, t, TraceFilter::Full);
        assert_eq!(totals(&dir0b), totals(&wo), "trace {t}");
    }
}

#[test]
fn firefly_matches_dragon_event_totals() {
    // Both update protocols never invalidate: identical cold-miss floors
    // and identical write-hit totals.
    let wb = wb();
    for t in 0..wb.num_traces() {
        let dragon = wb.counters(ProtocolKind::Dragon, t, TraceFilter::Full);
        let firefly = wb.counters(ProtocolKind::Firefly, t, TraceFilter::Full);
        assert_eq!(totals(&dragon), totals(&firefly), "trace {t}");
        assert_eq!(dragon.wh_distrib(), firefly.wh_distrib(), "trace {t}");
        assert_eq!(dragon.updates(), firefly.updates(), "trace {t}");
    }
}

#[test]
fn dragon_has_the_native_miss_rate() {
    // Dragon never invalidates, so its misses are exactly the per-cache
    // cold misses — the floor for every protocol.
    let wb = wb();
    for t in 0..wb.num_traces() {
        let dragon = wb.counters(ProtocolKind::Dragon, t, TraceFilter::Full);
        for kind in [
            ProtocolKind::Dir0B,
            ProtocolKind::Wti,
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::Berkeley,
        ] {
            let other = wb.counters(kind, t, TraceFilter::Full);
            assert!(
                dragon.rm() + dragon.wm() <= other.rm() + other.wm(),
                "trace {t}: Dragon must have the fewest misses vs {kind}"
            );
        }
    }
}

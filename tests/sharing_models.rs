//! The paper's §4.4 sharing-model check: "we collected all our statistics
//! based on both process sharing and processor sharing and found that the
//! numbers were not significantly different. The similarity is due to the
//! few instances of process migration in our traces."

use dircc::core::{build, ProtocolKind};
use dircc::sim::engine::{run, RunConfig};
use dircc::trace::gen::{Generator, Profile};

fn miss_rate(kind: ProtocolKind, profile: Profile, seed: u64, process_sharing: bool) -> f64 {
    let n = usize::from(profile.processes.max(profile.cpus));
    let mut p = build(kind, n);
    let cfg = if process_sharing {
        RunConfig::default().with_process_sharing()
    } else {
        RunConfig::default()
    };
    let res = run(p.as_mut(), Generator::new(profile, seed), &cfg).expect("run");
    let c = res.counters;
    (c.rm() + c.wm()) as f64 / c.total() as f64
}

#[test]
fn rare_migration_makes_the_models_agree() {
    // The paper's setting: migration is rare, so processor- and
    // process-based sharing give nearly identical numbers.
    let profile = Profile::pops().with_total_refs(200_000);
    for kind in [ProtocolKind::Dir0B, ProtocolKind::DirNb { pointers: 1 }] {
        let by_proc = miss_rate(kind, profile.clone(), 9, false);
        let by_pid = miss_rate(kind, profile.clone(), 9, true);
        let rel = (by_proc - by_pid).abs() / by_pid.max(1e-12);
        // Uniform private-pool access makes each migration reload the
        // whole footprint (real programs have locality), so the tolerance
        // is looser than the paper's "not significantly different".
        assert!(
            rel < 0.25,
            "{kind}: processor {by_proc:.5} vs process {by_pid:.5} differ by {rel:.3}"
        );
    }
}

#[test]
fn heavy_migration_splits_the_models() {
    // Crank migration up: processor-based sharing now sees large amounts
    // of migration-induced sharing that the process model (correctly,
    // for the paper's purposes) ignores.
    let profile = Profile::pops().with_total_refs(200_000).with_migration_prob(0.05);
    let kind = ProtocolKind::Dir0B;
    let by_proc = miss_rate(kind, profile.clone(), 9, false);
    let by_pid = miss_rate(kind, profile, 9, true);
    assert!(
        by_proc > 1.5 * by_pid,
        "migration must inflate processor-sharing misses: {by_proc:.5} vs {by_pid:.5}"
    );
}

#[test]
fn process_model_is_migration_invariant() {
    // Under the process model the miss rate should barely depend on the
    // migration probability at all.
    let base = miss_rate(
        ProtocolKind::Dir0B,
        Profile::thor().with_total_refs(150_000).with_migration_prob(0.0),
        3,
        true,
    );
    let migratory = miss_rate(
        ProtocolKind::Dir0B,
        Profile::thor().with_total_refs(150_000).with_migration_prob(0.05),
        3,
        true,
    );
    let rel = (base - migratory).abs() / base.max(1e-12);
    assert!(rel < 0.25, "process sharing should mask migration: {base:.5} vs {migratory:.5}");
}

#[test]
fn time_shared_processes_need_the_process_model() {
    // More processes than CPUs: the process model needs one cache per
    // process, so the protocol must be sized accordingly (8 here).
    let profile = Profile::custom().with_cpus(4).with_processes(8).with_total_refs(100_000);
    let mut p = build(ProtocolKind::Dir0B, 8);
    let cfg = RunConfig::default().with_process_sharing();
    let res = run(p.as_mut(), Generator::new(profile, 1), &cfg).expect("run");
    assert!(res.counters.total() == 100_000);
    p.check_invariants().unwrap();
}

//! Effective processors on a shared bus (the paper's §5 closing estimate).
//!
//! ```text
//! cargo run --release --example effective_processors
//! ```
//!
//! The paper estimates that with its best scheme "a bus with a cycle time
//! of 100ns will only yield a maximum performance of 15 effective
//! processors", while noting the bound is optimistic because it ignores
//! bus contention. This example measures each scheme's transaction rate
//! and cycles-per-transaction on the synthetic traces, then runs the
//! discrete-event bus simulation at growing machine sizes to show where
//! the speedup curves actually flatten — and how the choice of coherence
//! protocol moves the wall.

use dircc::sim::busqueue::{saturation_bound, simulate, BusLoad};
use dircc::sim::experiments::system::system;
use dircc::sim::{default_jobs, TraceFilter, Workbench};

fn main() {
    let wb = Workbench::paper_scaled(600_000, 1988);
    // Pre-run the four headline schemes on worker threads; `system`
    // then reads the warm memo.
    let work: Vec<_> = wb.paper_kinds().into_iter().map(|k| (k, TraceFilter::Full)).collect();
    wb.warm(&work, default_jobs());
    let study = system(&wb);
    println!("{study}");
    println!();

    // A denser look at the Dragon curve, queueing wait included.
    if let Some(dragon) = study.rows.iter().find(|r| r.scheme == "Dragon") {
        println!("Dragon speedup curve (simulated, with queue waits):");
        let base = BusLoad::paper_platform(1)
            .with_protocol(dragon.transactions_per_ref, dragon.cycles_per_transaction);
        println!("  analytic saturation bound: {:.1} processors", saturation_bound(&base));
        println!("  {:>5} {:>10} {:>12} {:>10}", "n", "effective", "utilization", "mean wait");
        for n in [1u32, 2, 4, 8, 12, 16, 20, 24, 32, 48, 64] {
            let out = simulate(&BusLoad { processors: n, ..base }, 7);
            println!(
                "  {:>5} {:>10.2} {:>11.0}% {:>10.2}",
                n,
                out.effective_processors,
                100.0 * out.bus_utilization,
                out.mean_queue_wait
            );
        }
        println!();
        println!("Past the knee, added processors only deepen the bus queue —");
        println!("the paper's argument for leaving the single bus behind, which");
        println!("is exactly what directory schemes make possible.");
    }
}

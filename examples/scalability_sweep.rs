//! Scalability sweep (extending the paper's §6 beyond 4 CPUs).
//!
//! ```text
//! cargo run --release --example scalability_sweep
//! ```
//!
//! The paper closes by noting that "an accurate evaluation of the
//! tradeoffs will require traces from a much larger number of processors".
//! The synthetic workload generator can produce those traces, so this
//! example runs the §6 alternatives — full-map `DirnNB`, limited-pointer
//! `DiriNB`/`DiriB`, the coded-set scheme and broadcast `Dir0B` — on
//! machines of 4 to 32 CPUs and reports cycles/ref plus the quantity that
//! actually gates scaling: invalidation *messages* per reference.

use dircc::bus::{CostConfig, CostModel};
use dircc::core::{build, ProtocolKind};
use dircc::sim::engine::{run, RunConfig};
use dircc::sim::metrics::Evaluation;
use dircc::sim::{default_jobs, par_map_indexed};
use dircc::trace::gen::Profile;
use dircc::trace::{TraceFilter, TraceStore};

const REFS: u64 = 300_000;

struct Row {
    cycles: f64,
    messages_per_kref: f64,
    broadcasts_per_kref: f64,
}

fn measure(store: &TraceStore, kind: ProtocolKind, cpus: u16) -> Result<Row, String> {
    let mut protocol = build(kind, usize::from(cpus));
    let cfg = RunConfig::default().with_process_sharing();
    let records = store.records(0, TraceFilter::Full);
    let result = run(protocol.as_mut(), records.iter().copied(), &cfg)?;
    let c = result.counters;
    let per_kref = |n: u64| 1000.0 * n as f64 / c.total() as f64;
    let messages_per_kref = per_kref(c.control_messages());
    let broadcasts_per_kref = per_kref(c.broadcasts());
    let eval = Evaluation::new(protocol.name(), kind, usize::from(cpus), c);
    Ok(Row {
        cycles: eval.cycles_per_ref(&CostModel::pipelined(), &CostConfig::PAPER),
        messages_per_kref,
        broadcasts_per_kref,
    })
}

fn main() -> Result<(), String> {
    let kinds_at = |cpus: u16| {
        [
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::DirB { pointers: 2 },
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::DirNb { pointers: 2 },
            ProtocolKind::DirNb { pointers: 4 },
            ProtocolKind::DirNb { pointers: u32::from(cpus) },
            ProtocolKind::CodedSet,
        ]
    };
    for cpus in [4u16, 8, 16, 32] {
        println!("=== {cpus} CPUs ===");
        println!(
            "{:<12} {:>10} {:>12} {:>12}",
            "scheme", "cycles/ref", "invals/kref", "bcasts/kref"
        );
        // One generate-once store per machine size; the scheme runs fan
        // out over worker threads and print in a fixed order.
        let store =
            TraceStore::new(vec![Profile::custom().with_cpus(cpus).with_total_refs(REFS)], 3);
        let kinds = kinds_at(cpus);
        let rows =
            par_map_indexed(kinds.len(), default_jobs(), |i| measure(&store, kinds[i], cpus));
        for (kind, row) in kinds.into_iter().zip(rows) {
            let row = row?;
            println!(
                "{:<12} {:>10.4} {:>12.2} {:>12.2}",
                kind.display_name(usize::from(cpus)),
                row.cycles,
                row.messages_per_kref,
                row.broadcasts_per_kref
            );
        }
        println!();
    }
    println!("Broadcast schemes (Dir0B) hold their cycle count but every");
    println!("broadcast touches all n caches; limited-pointer directories");
    println!("keep the message count (the real scaling cost) nearly flat,");
    println!("which is the paper's argument for Dir_i_NB at scale.");
    Ok(())
}

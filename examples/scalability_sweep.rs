//! Scalability sweep (extending the paper's §6 beyond 4 CPUs).
//!
//! ```text
//! cargo run --release --example scalability_sweep
//! ```
//!
//! The paper closes by noting that "an accurate evaluation of the
//! tradeoffs will require traces from a much larger number of processors".
//! The synthetic workload generator can produce those traces, so this
//! example runs the §6 alternatives — full-map `DirnNB`, limited-pointer
//! `DiriNB`/`DiriB`, the coded-set scheme and broadcast `Dir0B` — on
//! machines of 4 to 32 CPUs and reports cycles/ref plus the quantity that
//! actually gates scaling: invalidation *messages* per reference.

use dircc::bus::{CostConfig, CostModel};
use dircc::core::{build, ProtocolKind};
use dircc::sim::engine::{run, RunConfig};
use dircc::sim::metrics::Evaluation;
use dircc::trace::gen::{Generator, Profile};

const REFS: u64 = 300_000;

struct Row {
    cycles: f64,
    messages_per_kref: f64,
    broadcasts_per_kref: f64,
}

fn measure(kind: ProtocolKind, cpus: u16) -> Result<Row, String> {
    let profile = Profile::custom().with_cpus(cpus).with_total_refs(REFS);
    let mut protocol = build(kind, usize::from(cpus));
    let cfg = RunConfig::default().with_process_sharing();
    let result = run(protocol.as_mut(), Generator::new(profile, 3), &cfg)?;
    let c = result.counters;
    let per_kref = |n: u64| 1000.0 * n as f64 / c.total() as f64;
    let messages_per_kref = per_kref(c.control_messages());
    let broadcasts_per_kref = per_kref(c.broadcasts());
    let eval = Evaluation::new(protocol.name(), kind, usize::from(cpus), c);
    Ok(Row {
        cycles: eval.cycles_per_ref(&CostModel::pipelined(), &CostConfig::PAPER),
        messages_per_kref,
        broadcasts_per_kref,
    })
}

fn main() -> Result<(), String> {
    for cpus in [4u16, 8, 16, 32] {
        println!("=== {cpus} CPUs ===");
        println!("{:<12} {:>10} {:>12} {:>12}", "scheme", "cycles/ref", "invals/kref", "bcasts/kref");
        let kinds = [
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::DirB { pointers: 2 },
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::DirNb { pointers: 2 },
            ProtocolKind::DirNb { pointers: 4 },
            ProtocolKind::DirNb { pointers: u32::from(cpus) },
            ProtocolKind::CodedSet,
        ];
        for kind in kinds {
            let row = measure(kind, cpus)?;
            println!(
                "{:<12} {:>10.4} {:>12.2} {:>12.2}",
                kind.display_name(usize::from(cpus)),
                row.cycles,
                row.messages_per_kref,
                row.broadcasts_per_kref
            );
        }
        println!();
    }
    println!("Broadcast schemes (Dir0B) hold their cycle count but every");
    println!("broadcast touches all n caches; limited-pointer directories");
    println!("keep the message count (the real scaling cost) nearly flat,");
    println!("which is the paper's argument for Dir_i_NB at scale.");
    Ok(())
}

//! Quickstart: measure one protocol on one synthetic trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small POPS-like multiprocessor address trace, replays it
//! through the Archibald-Baer `Dir0B` directory protocol, and prints the
//! paper's two headline quantities: the event frequencies (Table 4 rows)
//! and the bus cycles per memory reference under both bus models.

use dircc::bus::{CostConfig, CostModel};
use dircc::core::{build, ProtocolKind};
use dircc::sim::engine::{run, RunConfig};
use dircc::sim::metrics::Evaluation;
use dircc::trace::gen::{Generator, Profile};

fn main() -> Result<(), String> {
    // 1. A synthetic workload standing in for the paper's ATUM traces.
    let profile = Profile::pops().with_total_refs(500_000);
    let trace = Generator::new(profile, 1988);

    // 2. A protocol from the paper's Dir(i)X taxonomy.
    let mut protocol = build(ProtocolKind::Dir0B, 4);

    // 3. Replay the trace (process-based sharing, as in the paper).
    let cfg = RunConfig::default().with_process_sharing();
    let result = run(protocol.as_mut(), trace, &cfg)?;
    let c = &result.counters;

    println!("protocol  : {}", protocol.name());
    println!("references: {}", result.refs);
    println!();
    println!("event frequencies (percent of all references):");
    println!("  rd-hit       {:6.2}", c.pct(c.read_hits()));
    println!("  rd-miss (rm) {:6.2}", c.pct(c.rm()));
    println!("    rm-blk-cln {:6.2}", c.pct(c.rm_blk_cln()));
    println!("    rm-blk-drty{:6.2}", c.pct(c.rm_blk_drty()));
    println!("  rm-first-ref {:6.2}", c.pct(c.rm_first_ref()));
    println!("  wh-blk-cln   {:6.2}", c.pct(c.wh_blk_cln()));
    println!("  wh-blk-drty  {:6.2}", c.pct(c.wh_blk_drty()));
    println!("  wrt-miss (wm){:6.2}", c.pct(c.wm()));
    println!();

    // 4. Price the same run under both of the paper's bus models.
    let eval = Evaluation::new(protocol.name(), protocol.kind(), 4, c.clone());
    for model in CostModel::paper_pair() {
        println!(
            "bus cycles per reference ({:>13} bus): {:.4}",
            model.kind.to_string(),
            eval.cycles_per_ref(&model, &CostConfig::PAPER)
        );
    }
    Ok(())
}

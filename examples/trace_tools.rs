//! Trace tooling tour: generate, serialize, reload and inspect a trace.
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```
//!
//! Demonstrates the trace substrate end to end: synthesize a THOR-like
//! trace, write it in the compact binary format, read it back, verify the
//! round-trip, print Table 3-style statistics, and dump the first few
//! records in the text format.

use dircc::trace::codec::{write_text, BinaryReader, BinaryWriter};
use dircc::trace::gen::{Generator, Profile};
use dircc::trace::stats::TraceStats;
use dircc::trace::TraceRecord;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = Profile::thor().with_total_refs(100_000);
    let records: Vec<TraceRecord> = Generator::new(profile, 2024).collect();

    // Serialize to the binary format.
    let path = std::env::temp_dir().join("dircc_demo_trace.dcct");
    let file = std::fs::File::create(&path)?;
    let mut writer = BinaryWriter::new(BufWriter::new(file));
    writer.write_all(&records)?;
    writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} records to {} ({} bytes, {:.2} bytes/record)",
        records.len(),
        path.display(),
        bytes,
        bytes as f64 / records.len() as f64
    );

    // Read back and verify the round-trip.
    let file = std::fs::File::open(&path)?;
    let reloaded: Vec<TraceRecord> =
        BinaryReader::new(BufReader::new(file))?.collect::<Result<_, _>>()?;
    assert_eq!(reloaded, records, "binary round-trip must be lossless");
    println!("round-trip verified");
    println!();

    // Table 3-style statistics.
    let stats: TraceStats = reloaded.iter().collect();
    println!("trace statistics:");
    println!("  references : {}", stats.total());
    println!("  instr      : {:.2}%", 100.0 * stats.instr_fraction());
    println!("  reads      : {:.2}%", 100.0 * stats.read_fraction());
    println!("  writes     : {:.2}%", 100.0 * stats.write_fraction());
    println!("  system     : {:.2}%", 100.0 * stats.system_fraction());
    println!("  lock spins : {:.2}% of reads", 100.0 * stats.spin_fraction_of_reads());
    println!("  blocks     : {}", stats.distinct_data_blocks());
    println!();

    // Text format for human inspection.
    println!("first 10 records (text format: cpu pid kind addr flags):");
    let mut head = Vec::new();
    write_text(&mut head, &reloaded[..10])?;
    print!("{}", String::from_utf8_lossy(&head));

    std::fs::remove_file(&path)?;
    Ok(())
}

//! Protocol shootout: every implemented scheme on every paper trace.
//!
//! ```text
//! cargo run --release --example protocol_shootout
//! ```
//!
//! Runs all fifteen protocols (the paper's four evaluated schemes, the
//! reviewed prior directory schemes, and the §6 scalable variants) on the
//! POPS/THOR/PERO synthetic traces and ranks them by average bus cycles
//! per reference on the pipelined bus.

use dircc::bus::{CostConfig, CostModel};
use dircc::core::ProtocolKind;
use dircc::sim::metrics::mean;
use dircc::sim::{default_jobs, TraceFilter, Workbench};

fn main() {
    let wb = Workbench::paper_scaled(300_000, 5);
    let m = CostModel::pipelined();
    let cfg = CostConfig::PAPER;

    let kinds = [
        ProtocolKind::DirNb { pointers: 1 },
        ProtocolKind::DirNb { pointers: 2 },
        ProtocolKind::DirNb { pointers: 4 },
        ProtocolKind::Dir0B,
        ProtocolKind::DirB { pointers: 1 },
        ProtocolKind::DirB { pointers: 2 },
        ProtocolKind::CodedSet,
        ProtocolKind::Tang,
        ProtocolKind::YenFu,
        ProtocolKind::Wti,
        ProtocolKind::Dragon,
        ProtocolKind::Berkeley,
        ProtocolKind::WriteOnce,
        ProtocolKind::Firefly,
        ProtocolKind::Mesi,
    ];

    // Fill the memo from worker threads; the ranking below then reads
    // warm caches in its own (deterministic) order.
    let work: Vec<_> = kinds.iter().map(|&k| (k, TraceFilter::Full)).collect();
    wb.warm(&work, default_jobs());

    let mut rows: Vec<(String, Vec<f64>, f64)> = kinds
        .into_iter()
        .map(|kind| {
            let evals = wb.evaluations(kind, TraceFilter::Full);
            let per_trace: Vec<f64> = evals.iter().map(|e| e.cycles_per_ref(&m, &cfg)).collect();
            let avg = mean(&per_trace);
            (kind.display_name(wb.n_caches()), per_trace, avg)
        })
        .collect();
    rows.sort_by(|a, b| a.2.total_cmp(&b.2));

    println!("Bus cycles per reference (pipelined bus), best first:");
    println!("{:<12} {:>8} {:>8} {:>8} {:>8}", "scheme", "POPS", "THOR", "PERO", "avg");
    for (name, per_trace, avg) in &rows {
        println!(
            "{:<12} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            name, per_trace[0], per_trace[1], per_trace[2], avg
        );
    }
    println!();
    println!("Expected shape (paper): Dragon < Berkeley < Dir0B ~ DirnNB << WTI << Dir1NB,");
    println!("with the directory schemes competitive with the best snoopy scheme.");
}

//! Spin-lock study (the paper's §5.2, extended into a contention sweep).
//!
//! ```text
//! cargo run --release --example spin_lock_study
//! ```
//!
//! The paper found that spin locks cripple `Dir1NB` (lock words ping-pong
//! between the spinning caches) while barely affecting `Dir0B`. This
//! example reproduces that experiment and then extends it: it sweeps the
//! workload's lock-phase weight to show how each protocol's cost grows
//! with contention.

use dircc::bus::{CostConfig, CostModel};
use dircc::core::{build, ProtocolKind};
use dircc::sim::engine::{run, RunConfig};
use dircc::sim::metrics::Evaluation;
use dircc::trace::filter::exclude_lock_spins;
use dircc::trace::gen::{Generator, Profile};
use dircc::trace::TraceRecord;

const REFS: u64 = 400_000;

fn cycles_per_ref<I: IntoIterator<Item = TraceRecord>>(
    kind: ProtocolKind,
    trace: I,
) -> Result<f64, String> {
    let mut protocol = build(kind, 4);
    let cfg = RunConfig::default().with_process_sharing();
    let result = run(protocol.as_mut(), trace, &cfg)?;
    let eval = Evaluation::new(protocol.name(), kind, 4, result.counters);
    Ok(eval.cycles_per_ref(&CostModel::pipelined(), &CostConfig::PAPER))
}

fn main() -> Result<(), String> {
    let dir1 = ProtocolKind::DirNb { pointers: 1 };
    let dir0 = ProtocolKind::Dir0B;

    // Part 1: the paper's experiment — exclude the lock tests.
    println!("Part 1: section 5.2 (POPS-like trace, pipelined bus, cycles/ref)");
    let profile = Profile::pops().with_total_refs(REFS);
    let full = Generator::new(profile.clone(), 7);
    let filtered = exclude_lock_spins(Generator::new(profile, 7));
    let d1_full = cycles_per_ref(dir1, full)?;
    let d1_filt = cycles_per_ref(dir1, filtered)?;
    let d0_full = cycles_per_ref(dir0, Generator::new(Profile::pops().with_total_refs(REFS), 7))?;
    let d0_filt = cycles_per_ref(
        dir0,
        exclude_lock_spins(Generator::new(Profile::pops().with_total_refs(REFS), 7)),
    )?;
    println!("  Dir1NB: {d1_full:.4} -> {d1_filt:.4} without spins ({:.1}x)", d1_full / d1_filt);
    println!("  Dir0B : {d0_full:.4} -> {d0_filt:.4} without spins");
    println!();

    // Part 2: extension — sweep the contention level.
    println!("Part 2: contention sweep (lock-phase weight -> cycles/ref)");
    println!("  weight   Dir1NB    Dir0B   ratio");
    for weight in [0, 1, 2, 4, 8, 16] {
        let mk =
            || Generator::new(Profile::custom().with_lock_weight(weight).with_total_refs(REFS), 7);
        let d1 = cycles_per_ref(dir1, mk())?;
        let d0 = cycles_per_ref(dir0, mk())?;
        println!("  {weight:>6}   {d1:.4}   {d0:.4}   {:>5.1}x", d1 / d0);
    }
    println!();
    println!("Dir1NB degrades steeply with contention; Dir0B stays flat —");
    println!("the paper's conclusion that software schemes behaving like Dir1NB");
    println!("\"must take special care in handling locks\".");
    Ok(())
}

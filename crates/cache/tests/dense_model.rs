//! A/B property tests: the dense (flat-vector) containers against naive
//! map-based reference models on randomized operation sequences.
//!
//! `CacheArray`, `BlockMap` and `BlockSet` replaced hash maps on the
//! replay hot path; these tests pin the claim that the dense rewrite is
//! observationally identical to the map semantics it replaced.

use dircc_cache::{BlockMap, BlockSet, CacheArray};
use dircc_types::{BlockAddr, CacheId, CacheIdSet};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::{HashMap, HashSet};

const CPUS: u16 = 4;
const BLOCKS: u64 = 48;

#[derive(Debug, Clone, Copy)]
enum Op {
    Set { cache: u16, block: u64, value: u8 },
    Remove { cache: u16, block: u64 },
    RemoveAllExcept { block: u64, keep: u16 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..3, 0u16..CPUS, 0u64..BLOCKS, any::<u8>()).prop_map(|(op, cache, block, value)| {
            match op {
                0 => Op::Set { cache, block, value },
                1 => Op::Remove { cache, block },
                _ => Op::RemoveAllExcept { block, keep: cache },
            }
        }),
        1..200,
    )
}

/// The reference model: per-cache hash maps, holders derived by scan.
#[derive(Debug, Default)]
struct MapModel {
    caches: Vec<HashMap<u64, u8>>,
}

impl MapModel {
    fn new(n: usize) -> Self {
        MapModel { caches: vec![HashMap::new(); n] }
    }

    fn holders(&self, block: u64) -> CacheIdSet {
        self.caches
            .iter()
            .enumerate()
            .filter(|(_, m)| m.contains_key(&block))
            .map(|(c, _)| CacheId::new(c as u16))
            .collect()
    }

    fn distinct_blocks(&self) -> usize {
        self.caches.iter().flat_map(|m| m.keys()).collect::<HashSet<_>>().len()
    }
}

fn b(i: u64) -> BlockAddr {
    BlockAddr::from_index(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_array_matches_the_map_model(ops in arb_ops()) {
        let mut dense: CacheArray<u8> = CacheArray::new(usize::from(CPUS));
        let mut model = MapModel::new(usize::from(CPUS));
        for op in &ops {
            match *op {
                Op::Set { cache, block, value } => {
                    dense.set(CacheId::new(cache), b(block), value);
                    model.caches[usize::from(cache)].insert(block, value);
                }
                Op::Remove { cache, block } => {
                    let got = dense.remove(CacheId::new(cache), b(block));
                    let want = model.caches[usize::from(cache)].remove(&block);
                    prop_assert_eq!(got, want);
                }
                Op::RemoveAllExcept { block, keep } => {
                    dense.remove_all_except(b(block), Some(CacheId::new(keep)));
                    for (c, m) in model.caches.iter_mut().enumerate() {
                        if c != usize::from(keep) {
                            m.remove(&block);
                        }
                    }
                }
            }
            // Full observational equality after every step.
            for cache in 0..CPUS {
                for block in 0..BLOCKS {
                    prop_assert_eq!(
                        dense.state(CacheId::new(cache), b(block)),
                        model.caches[usize::from(cache)].get(&block),
                        "state({cache}, {block})",
                    );
                }
                prop_assert_eq!(
                    dense.blocks_in(CacheId::new(cache)),
                    model.caches[usize::from(cache)].len()
                );
            }
            for block in 0..BLOCKS {
                prop_assert_eq!(dense.holders(b(block)), model.holders(block));
            }
            prop_assert_eq!(dense.distinct_blocks(), model.distinct_blocks());
            dense.check_residency().map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn block_map_matches_hash_map(ops in prop::collection::vec(
        (0u8..2, 0u64..BLOCKS, any::<u8>()), 1..200)
    ) {
        let mut dense: BlockMap<u8> = BlockMap::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for &(op, block, value) in &ops {
            if op == 0 {
                prop_assert_eq!(dense.insert(b(block), value), model.insert(block, value));
            } else {
                prop_assert_eq!(dense.remove(b(block)), model.remove(&block));
            }
            prop_assert_eq!(dense.len(), model.len());
            for blk in 0..BLOCKS {
                prop_assert_eq!(dense.get(b(blk)), model.get(&blk));
            }
            let mut got: Vec<(u64, u8)> = dense.iter().map(|(k, v)| (k.index(), *v)).collect();
            let mut want: Vec<(u64, u8)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn block_set_matches_hash_set(ops in prop::collection::vec(
        (0u8..2, 0u64..BLOCKS), 1..200)
    ) {
        let mut dense = BlockSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        for &(op, block) in &ops {
            if op == 0 {
                prop_assert_eq!(dense.insert(b(block)), model.insert(block));
            } else {
                prop_assert_eq!(dense.remove(b(block)), model.remove(&block));
            }
            prop_assert_eq!(dense.len(), model.len());
            for blk in 0..BLOCKS {
                prop_assert_eq!(dense.contains(b(blk)), model.contains(&blk));
            }
            let mut got: Vec<u64> = dense.iter().map(|blk| blk.index()).collect();
            let mut want: Vec<u64> = model.iter().copied().collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}

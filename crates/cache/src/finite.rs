//! Finite set-associative caches with LRU replacement.
//!
//! The headline experiments use infinite caches, but the paper notes that
//! "the performance of a system with smaller caches can be estimated to
//! first order by adding the costs due to the finite cache size".
//! [`SetAssocCache`] supports that extension: the ablation benches replay
//! traces through finite caches to measure the replacement-miss component.

use dircc_types::BlockAddr;

/// Shape of a finite cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiniteCacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl FiniteCacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be nonzero");
        FiniteCacheConfig { sets, ways }
    }

    /// Total block capacity.
    pub fn capacity_blocks(&self) -> usize {
        self.sets * self.ways
    }

    /// The set `block` maps to — the same computation every
    /// [`SetAssocCache`] of this shape uses internally. Exposed so the
    /// sharded replay engine can partition a stream by set index (LRU
    /// eviction is confined to a set, so set-sharding preserves victim
    /// choice exactly).
    pub fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() as usize) & (self.sets - 1)
    }

    /// Configuration for a cache of `capacity_blocks` with `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a nonzero power of two.
    pub fn with_capacity(capacity_blocks: usize, ways: usize) -> Self {
        assert!(ways > 0 && capacity_blocks.is_multiple_of(ways), "capacity must divide by ways");
        Self::new(capacity_blocks / ways, ways)
    }
}

/// A block evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction<S> {
    /// The evicted block.
    pub block: BlockAddr,
    /// Its state at eviction.
    pub state: S,
}

/// Result of a combined [`SetAssocCache::lookup_or_insert`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup<S> {
    /// The block was already resident (LRU order refreshed).
    Hit,
    /// The block was inserted, evicting the LRU way if the set was full.
    Inserted {
        /// The LRU victim, if the set was full.
        evicted: Option<Eviction<S>>,
    },
}

#[derive(Debug, Clone)]
struct Way<S> {
    block: BlockAddr,
    state: S,
    /// Larger = more recently used.
    stamp: u64,
}

/// A set-associative cache with true-LRU replacement, mapping blocks to a
/// protocol-defined state `S`.
///
/// ```
/// use dircc_cache::{FiniteCacheConfig, SetAssocCache};
/// use dircc_types::BlockAddr;
///
/// let mut c: SetAssocCache<u8> = SetAssocCache::new(FiniteCacheConfig::new(1, 2));
/// assert!(c.insert(BlockAddr::from_index(1), 0).is_none());
/// assert!(c.insert(BlockAddr::from_index(2), 0).is_none());
/// // Touch block 1 so block 2 becomes LRU.
/// c.get(BlockAddr::from_index(1));
/// let ev = c.insert(BlockAddr::from_index(3), 0).unwrap();
/// assert_eq!(ev.block, BlockAddr::from_index(2));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<S> {
    config: FiniteCacheConfig,
    sets: Vec<Vec<Way<S>>>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<S> SetAssocCache<S> {
    /// Creates an empty cache.
    pub fn new(config: FiniteCacheConfig) -> Self {
        SetAssocCache {
            config,
            sets: (0..config.sets).map(|_| Vec::with_capacity(config.ways)).collect(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> FiniteCacheConfig {
        self.config
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        self.config.set_of(block)
    }

    /// Looks up a block, updating LRU order and hit/miss statistics.
    pub fn get(&mut self, block: BlockAddr) -> Option<&mut S> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(block);
        let found = self.sets[set].iter_mut().find(|w| w.block == block);
        match found {
            Some(w) => {
                w.stamp = clock;
                self.hits += 1;
                Some(&mut w.state)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a block without touching LRU order or statistics.
    pub fn peek(&self, block: BlockAddr) -> Option<&S> {
        let set = self.set_index(block);
        self.sets[set].iter().find(|w| w.block == block).map(|w| &w.state)
    }

    /// Inserts (or overwrites) a block, returning the LRU eviction if the
    /// set was full. Overwriting an existing block never evicts.
    pub fn insert(&mut self, block: BlockAddr, state: S) -> Option<Eviction<S>> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_index(block);
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.block == block) {
            w.state = state;
            w.stamp = clock;
            return None;
        }
        let evicted = if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("nonempty set");
            let w = set.swap_remove(lru);
            self.evictions += 1;
            Some(Eviction { block: w.block, state: w.state })
        } else {
            None
        };
        set.push(Way { block, state, stamp: clock });
        evicted
    }

    /// Combined probe: looks `block` up and, on a miss, inserts it with
    /// `state` — walking the set once instead of the `get` + `insert`
    /// double walk. Statistics and LRU stamps are updated exactly as the
    /// two-call sequence would (the miss path advances the clock twice so
    /// replacement order is bit-identical to `get` followed by `insert`).
    pub fn lookup_or_insert(&mut self, block: BlockAddr, state: S) -> Lookup<S> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_index(block);
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.block == block) {
            w.stamp = clock;
            self.hits += 1;
            return Lookup::Hit;
        }
        self.misses += 1;
        self.clock += 1;
        let clock = self.clock;
        let evicted = if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("nonempty set");
            let w = set.swap_remove(lru);
            self.evictions += 1;
            Some(Eviction { block: w.block, state: w.state })
        } else {
            None
        };
        set.push(Way { block, state, stamp: clock });
        Lookup::Inserted { evicted }
    }

    /// Removes a block (e.g. an invalidation), returning its state.
    pub fn remove(&mut self, block: BlockAddr) -> Option<S> {
        let set_idx = self.set_index(block);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| w.block == block)?;
        Some(set.swap_remove(pos).state)
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Capacity evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn hit_after_insert() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(FiniteCacheConfig::new(4, 2));
        assert!(c.get(b(1)).is_none());
        c.insert(b(1), 7);
        assert_eq!(c.get(b(1)), Some(&mut 7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(FiniteCacheConfig::new(1, 3));
        c.insert(b(1), ());
        c.insert(b(2), ());
        c.insert(b(3), ());
        c.get(b(1)); // order now: 2 (LRU), 3, 1
        let ev = c.insert(b(4), ()).unwrap();
        assert_eq!(ev.block, b(2));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn same_set_conflicts_only() {
        // 2 sets: even blocks to set 0, odd to set 1.
        let mut c: SetAssocCache<()> = SetAssocCache::new(FiniteCacheConfig::new(2, 1));
        c.insert(b(0), ());
        c.insert(b(1), ());
        assert_eq!(c.len(), 2, "different sets don't conflict");
        let ev = c.insert(b(2), ()).unwrap();
        assert_eq!(ev.block, b(0), "same-set block evicted");
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(FiniteCacheConfig::new(1, 1));
        c.insert(b(1), 1);
        assert!(c.insert(b(1), 2).is_none());
        assert_eq!(c.peek(b(1)), Some(&2));
    }

    #[test]
    fn remove_invalidates() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(FiniteCacheConfig::new(1, 2));
        c.insert(b(1), 9);
        assert_eq!(c.remove(b(1)), Some(9));
        assert_eq!(c.remove(b(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(FiniteCacheConfig::new(1, 2));
        c.insert(b(1), ());
        c.insert(b(2), ());
        assert!(c.peek(b(1)).is_some());
        // LRU is still block 1 because peek didn't touch it.
        let ev = c.insert(b(3), ()).unwrap();
        assert_eq!(ev.block, b(1));
    }

    #[test]
    fn with_capacity_config() {
        let cfg = FiniteCacheConfig::with_capacity(1024, 4);
        assert_eq!(cfg.sets, 256);
        assert_eq!(cfg.capacity_blocks(), 1024);
    }

    #[test]
    fn set_of_matches_residency() {
        // Blocks whose set_of agree conflict; others never do.
        let cfg = FiniteCacheConfig::new(4, 1);
        assert_eq!(cfg.set_of(b(5)), 1);
        assert_eq!(cfg.set_of(b(9)), 1);
        assert_eq!(cfg.set_of(b(6)), 2);
        let mut c: SetAssocCache<()> = SetAssocCache::new(cfg);
        c.insert(b(5), ());
        let ev = c.insert(b(9), ()).expect("same set evicts");
        assert_eq!(ev.block, b(5));
        assert!(c.insert(b(6), ()).is_none(), "different set never conflicts");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sets_rejected() {
        let _ = FiniteCacheConfig::new(3, 1);
    }

    #[test]
    fn lookup_or_insert_matches_get_then_insert() {
        // Replay the same access sequence through the single-probe path
        // and the historical get+insert double walk; every observable
        // (hits, misses, evictions, eviction victims) must agree.
        let cfg = FiniteCacheConfig::new(2, 2);
        let mut single: SetAssocCache<u64> = SetAssocCache::new(cfg);
        let mut double: SetAssocCache<u64> = SetAssocCache::new(cfg);
        // A deterministic thrashing sequence with revisits.
        let seq: Vec<u64> = (0..200).map(|i| (i * 7 + i / 3) % 11).collect();
        for (i, &blk) in seq.iter().enumerate() {
            let expected =
                if double.get(b(blk)).is_none() { double.insert(b(blk), i as u64) } else { None };
            let got = match single.lookup_or_insert(b(blk), i as u64) {
                Lookup::Hit => None,
                Lookup::Inserted { evicted } => evicted,
            };
            assert_eq!(got, expected, "step {i} block {blk}");
        }
        assert_eq!(single.hits(), double.hits());
        assert_eq!(single.misses(), double.misses());
        assert_eq!(single.evictions(), double.evictions());
        assert_eq!(single.len(), double.len());
    }
}

//! Dense per-block containers for directory state.
//!
//! Directory protocols keep one entry per block (pointer lists, dirty
//! bits, stale-memory marks). Replay feeds them interned block addresses,
//! so those tables can be flat vectors indexed by the dense block index —
//! the same trick [`crate::CacheArray`] uses for per-cache tag state.
//! Both containers grow on demand so hand-built traces with small literal
//! block numbers work without an interner.

use dircc_types::BlockAddr;

fn dense_index(block: BlockAddr) -> usize {
    let i = block.index();
    assert!(
        i <= u32::MAX as u64,
        "{block}: block index exceeds the dense-table bound; intern the trace first"
    );
    i as usize
}

/// A map from blocks to directory entries, backed by a flat `Vec`.
///
/// ```
/// use dircc_cache::BlockMap;
/// use dircc_types::BlockAddr;
///
/// let mut m: BlockMap<u32> = BlockMap::new();
/// let b = BlockAddr::from_index(3);
/// *m.entry(b) += 7;
/// assert_eq!(m.get(b), Some(&7));
/// assert_eq!(m.remove(b), Some(7));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> BlockMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        BlockMap { slots: Vec::new(), len: 0 }
    }

    /// Creates an empty map with room for `blocks` dense block indices.
    pub fn with_block_capacity(blocks: usize) -> Self {
        BlockMap { slots: Vec::with_capacity(blocks), len: 0 }
    }

    /// Pre-allocates for `blocks` dense block indices.
    pub fn reserve_blocks(&mut self, blocks: usize) {
        if self.slots.len() < blocks {
            self.slots.reserve(blocks - self.slots.len());
        }
    }

    /// Number of entries present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the entry for `block`, if present.
    #[inline]
    pub fn get(&self, block: BlockAddr) -> Option<&V> {
        self.slots.get(dense_index(block)).and_then(Option::as_ref)
    }

    /// Returns the entry for `block` mutably, if present.
    #[inline]
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut V> {
        self.slots.get_mut(dense_index(block)).and_then(Option::as_mut)
    }

    /// Returns `true` if `block` has an entry.
    #[inline]
    pub fn contains_key(&self, block: BlockAddr) -> bool {
        self.get(block).is_some()
    }

    /// Inserts an entry, returning the previous one if present.
    #[inline]
    pub fn insert(&mut self, block: BlockAddr, value: V) -> Option<V> {
        let b = dense_index(block);
        if self.slots.len() <= b {
            self.slots.resize_with(b + 1, || None);
        }
        let prev = self.slots[b].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes the entry for `block`, returning it if present.
    #[inline]
    pub fn remove(&mut self, block: BlockAddr) -> Option<V> {
        let prev = self.slots.get_mut(dense_index(block)).and_then(Option::take);
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Iterates over `(block, entry)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(b, v)| Some((BlockAddr::from_index(b as u64), v.as_ref()?)))
    }
}

impl<V: Default> BlockMap<V> {
    /// Returns the entry for `block`, inserting a default if absent.
    #[inline]
    pub fn entry(&mut self, block: BlockAddr) -> &mut V {
        let b = dense_index(block);
        if self.slots.len() <= b {
            self.slots.resize_with(b + 1, || None);
        }
        if self.slots[b].is_none() {
            self.slots[b] = Some(V::default());
            self.len += 1;
        }
        self.slots[b].as_mut().expect("slot just filled")
    }
}

/// A set of blocks, backed by a bit vector.
///
/// ```
/// use dircc_cache::BlockSet;
/// use dircc_types::BlockAddr;
///
/// let mut s = BlockSet::new();
/// let b = BlockAddr::from_index(70);
/// assert!(s.insert(b));
/// assert!(!s.insert(b));
/// assert!(s.contains(b));
/// assert!(s.remove(b));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockSet {
    words: Vec<u64>,
    len: usize,
}

impl BlockSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BlockSet { words: Vec::new(), len: 0 }
    }

    /// Creates an empty set with room for `blocks` dense block indices.
    pub fn with_block_capacity(blocks: usize) -> Self {
        BlockSet { words: Vec::with_capacity(blocks.div_ceil(64)), len: 0 }
    }

    /// Pre-allocates for `blocks` dense block indices.
    pub fn reserve_blocks(&mut self, blocks: usize) {
        let words = blocks.div_ceil(64);
        if self.words.len() < words {
            self.words.reserve(words - self.words.len());
        }
    }

    /// Number of blocks in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `block` is in the set.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        let b = dense_index(block);
        self.words.get(b / 64).is_some_and(|w| w & (1u64 << (b % 64)) != 0)
    }

    /// Inserts `block`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, block: BlockAddr) -> bool {
        let b = dense_index(block);
        if self.words.len() <= b / 64 {
            self.words.resize(b / 64 + 1, 0);
        }
        let bit = 1u64 << (b % 64);
        let newly = self.words[b / 64] & bit == 0;
        self.words[b / 64] |= bit;
        if newly {
            self.len += 1;
        }
        newly
    }

    /// Iterates over the blocks in the set, in block order.
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| BlockAddr::from_index((w * 64 + b) as u64))
        })
    }

    /// Removes `block`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, block: BlockAddr) -> bool {
        let b = dense_index(block);
        let Some(word) = self.words.get_mut(b / 64) else {
            return false;
        };
        let bit = 1u64 << (b % 64);
        let present = *word & bit != 0;
        *word &= !bit;
        if present {
            self.len -= 1;
        }
        present
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn map_insert_get_remove() {
        let mut m: BlockMap<u8> = BlockMap::with_block_capacity(4);
        assert_eq!(m.insert(b(2), 5), None);
        assert_eq!(m.insert(b(2), 6), Some(5));
        assert_eq!(m.get(b(2)), Some(&6));
        assert!(m.contains_key(b(2)));
        assert!(!m.contains_key(b(99)));
        *m.get_mut(b(2)).unwrap() = 7;
        assert_eq!(m.remove(b(2)), Some(7));
        assert_eq!(m.remove(b(2)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn map_entry_defaults() {
        let mut m: BlockMap<Vec<u8>> = BlockMap::new();
        m.entry(b(3)).push(1);
        m.entry(b(3)).push(2);
        assert_eq!(m.get(b(3)), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_iterates_in_block_order() {
        let mut m: BlockMap<u8> = BlockMap::new();
        m.insert(b(9), 9);
        m.insert(b(1), 1);
        let pairs: Vec<(u64, u8)> = m.iter().map(|(blk, v)| (blk.index(), *v)).collect();
        assert_eq!(pairs, vec![(1, 1), (9, 9)]);
        m.reserve_blocks(64);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_insert_contains_remove() {
        let mut s = BlockSet::with_block_capacity(100);
        assert!(s.insert(b(0)));
        assert!(s.insert(b(64)));
        assert!(!s.insert(b(64)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(b(0)) && s.contains(b(64)));
        assert!(!s.contains(b(1)));
        assert!(s.remove(b(0)));
        assert!(!s.remove(b(0)));
        assert!(!s.remove(b(1000)));
        assert_eq!(s.len(), 1);
        s.reserve_blocks(1024);
        assert!(!s.is_empty());
    }
}

//! The infinite-cache array with residency oracle, on dense block tables.
//!
//! Replay feeds protocols *interned* block addresses (dense indices in
//! first-appearance order, see `dircc-trace`'s interner), so per-cache
//! state and the residency oracle live in flat `Vec`s indexed by the block
//! index — no hashing anywhere on the access path. The tables grow on
//! demand, so hand-built test traces with small literal block numbers work
//! without an interner.

use dircc_types::{BlockAddr, CacheId, CacheIdSet};

/// Largest block index the dense tables will grow to. Dense ids from an
/// interner are `u32` by construction; a raw (un-interned) block address
/// beyond this bound indicates a sparse stream that must be interned
/// before replay.
const MAX_DENSE_INDEX: u64 = u32::MAX as u64;

fn dense_index(block: BlockAddr) -> usize {
    let i = block.index();
    assert!(
        i <= MAX_DENSE_INDEX,
        "{block}: block index exceeds the dense-table bound; intern the trace first"
    );
    i as usize
}

/// An array of infinite caches, one per [`CacheId`], each mapping blocks to
/// a protocol-defined state `S`, plus a residency oracle.
///
/// Invariant: `holders(b)` contains exactly the caches for which
/// `state(c, b)` is `Some`. The oracle is maintained internally and is what
/// makes O(1) "who has this block" queries possible for snoopy protocols,
/// verification, and statistics.
#[derive(Debug, Clone)]
pub struct CacheArray<S> {
    /// `caches[c][b]` is the state of block `b` in cache `c` (`None` = not
    /// resident). Each cache's table grows on demand.
    caches: Vec<Vec<Option<S>>>,
    /// Per-cache resident-block counts (kept so `blocks_in` stays O(1)).
    resident: Vec<usize>,
    /// `residency[b]` is the set of caches holding block `b`.
    residency: Vec<CacheIdSet>,
    /// Number of blocks with a nonempty residency set.
    distinct: usize,
}

impl<S> CacheArray<S> {
    /// Creates `n` empty caches.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 64 (the [`CacheIdSet`] width).
    pub fn new(n: usize) -> Self {
        Self::with_block_capacity(n, 0)
    }

    /// Creates `n` empty caches with room for `blocks` dense block indices
    /// pre-allocated (the capacity hint an interner provides), avoiding
    /// growth reallocations during replay.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 64 (the [`CacheIdSet`] width).
    pub fn with_block_capacity(n: usize, blocks: usize) -> Self {
        assert!((1..=64).contains(&n), "cache count must be in 1..=64");
        CacheArray {
            caches: (0..n).map(|_| Vec::with_capacity(blocks)).collect(),
            resident: vec![0; n],
            residency: Vec::with_capacity(blocks),
            distinct: 0,
        }
    }

    /// Pre-allocates every table for `blocks` dense block indices.
    pub fn reserve_blocks(&mut self, blocks: usize) {
        for tags in &mut self.caches {
            if tags.len() < blocks {
                tags.reserve(blocks - tags.len());
            }
        }
        if self.residency.len() < blocks {
            self.residency.reserve(blocks - self.residency.len());
        }
    }

    /// Number of caches.
    pub fn num_caches(&self) -> usize {
        self.caches.len()
    }

    /// Iterates over all valid cache ids.
    pub fn cache_ids(&self) -> impl Iterator<Item = CacheId> {
        (0..self.caches.len() as u16).map(CacheId::new)
    }

    /// Returns the state of `block` in `cache`, if present.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    #[inline]
    pub fn state(&self, cache: CacheId, block: BlockAddr) -> Option<&S> {
        self.caches[cache.index()].get(dense_index(block)).and_then(Option::as_ref)
    }

    /// Returns a mutable reference to the state of `block` in `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    #[inline]
    pub fn state_mut(&mut self, cache: CacheId, block: BlockAddr) -> Option<&mut S> {
        self.caches[cache.index()].get_mut(dense_index(block)).and_then(Option::as_mut)
    }

    /// Installs or updates `block` in `cache` with state `s`, returning the
    /// previous state if the block was already present.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    #[inline]
    pub fn set(&mut self, cache: CacheId, block: BlockAddr, s: S) -> Option<S> {
        let b = dense_index(block);
        let tags = &mut self.caches[cache.index()];
        if tags.len() <= b {
            tags.resize_with(b + 1, || None);
        }
        let prev = tags[b].replace(s);
        if prev.is_none() {
            self.resident[cache.index()] += 1;
            if self.residency.len() <= b {
                self.residency.resize(b + 1, CacheIdSet::new());
            }
            if self.residency[b].is_empty() {
                self.distinct += 1;
            }
            self.residency[b].insert(cache);
        }
        prev
    }

    /// Removes `block` from `cache`, returning its state if present.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    #[inline]
    pub fn remove(&mut self, cache: CacheId, block: BlockAddr) -> Option<S> {
        let b = dense_index(block);
        let prev = self.caches[cache.index()].get_mut(b).and_then(Option::take);
        if prev.is_some() {
            self.resident[cache.index()] -= 1;
            let set = &mut self.residency[b];
            set.remove(cache);
            if set.is_empty() {
                self.distinct -= 1;
            }
        }
        prev
    }

    /// Returns the set of caches currently holding `block`.
    #[inline]
    pub fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.residency.get(dense_index(block)).copied().unwrap_or_default()
    }

    /// Returns the caches holding `block`, excluding `cache`.
    #[inline]
    pub fn other_holders(&self, cache: CacheId, block: BlockAddr) -> CacheIdSet {
        self.holders(block).without(cache)
    }

    /// Returns the number of blocks resident in `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn blocks_in(&self, cache: CacheId) -> usize {
        self.resident[cache.index()]
    }

    /// Returns the number of distinct blocks resident anywhere.
    pub fn distinct_blocks(&self) -> usize {
        self.distinct
    }

    /// Iterates over `(block, state)` pairs of one cache, in block order.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn iter_cache(&self, cache: CacheId) -> impl Iterator<Item = (BlockAddr, &S)> {
        self.caches[cache.index()]
            .iter()
            .enumerate()
            .filter_map(|(b, s)| Some((BlockAddr::from_index(b as u64), s.as_ref()?)))
    }

    /// Iterates over every block resident anywhere, with its holder set,
    /// in block order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockAddr, &CacheIdSet)> {
        self.residency
            .iter()
            .enumerate()
            .filter(|(_, set)| !set.is_empty())
            .map(|(b, set)| (BlockAddr::from_index(b as u64), set))
    }

    /// Appends a canonical, self-delimiting encoding of every resident
    /// copy to `out`: a resident-block count, then per block (in block
    /// order) the block index, the holder bitset, and one `code(state)`
    /// word per holder in cache-id order. Two arrays encode equally iff
    /// they hold the same blocks in the same caches with `code`-equal
    /// states — the building block for `Protocol::encode_state`.
    pub fn encode_states(&self, out: &mut Vec<u64>, mut code: impl FnMut(&S) -> u64) {
        out.push(self.distinct as u64);
        for (block, holders) in self.iter_blocks() {
            out.push(block.index());
            out.push(holders.bits());
            for cache in holders.iter() {
                out.push(code(self.state(cache, block).expect("oracle-listed holder has state")));
            }
        }
    }

    /// Checks the internal residency-oracle invariant; used by tests and
    /// the protocol invariant checkers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn check_residency(&self) -> Result<(), String> {
        let mut distinct = 0;
        for (b, set) in self.residency.iter().enumerate() {
            let block = BlockAddr::from_index(b as u64);
            if !set.is_empty() {
                distinct += 1;
            }
            for cache in set.iter() {
                if self.caches[cache.index()].get(b).is_none_or(Option::is_none) {
                    return Err(format!("{block}: oracle claims {cache} but tag store disagrees"));
                }
            }
        }
        if distinct != self.distinct {
            return Err(format!(
                "distinct-block count {} disagrees with oracle ({distinct})",
                self.distinct
            ));
        }
        for (i, tags) in self.caches.iter().enumerate() {
            let cache = CacheId::new(i as u16);
            let mut resident = 0;
            for (b, s) in tags.iter().enumerate() {
                if s.is_some() {
                    resident += 1;
                    let block = BlockAddr::from_index(b as u64);
                    if !self.holders(block).contains(cache) {
                        return Err(format!("{block}: in {cache} tag store but not in oracle"));
                    }
                }
            }
            if resident != self.resident[i] {
                return Err(format!(
                    "{cache}: resident count {} disagrees with tag store ({resident})",
                    self.resident[i]
                ));
            }
        }
        Ok(())
    }
}

impl<S: Clone> CacheArray<S> {
    /// Removes `block` from every cache except `keep`, returning the caches
    /// it was removed from. Pass `None` to remove from all.
    pub fn remove_all_except(&mut self, block: BlockAddr, keep: Option<CacheId>) -> CacheIdSet {
        let mut victims = self.holders(block);
        if let Some(k) = keep {
            victims.remove(k);
        }
        for c in victims.iter() {
            self.remove(c, block);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn c(i: u16) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn set_and_get() {
        let mut a: CacheArray<u32> = CacheArray::new(2);
        assert_eq!(a.set(c(0), b(1), 7), None);
        assert_eq!(a.set(c(0), b(1), 9), Some(7));
        assert_eq!(a.state(c(0), b(1)), Some(&9));
        assert_eq!(a.state(c(1), b(1)), None);
        *a.state_mut(c(0), b(1)).unwrap() = 11;
        assert_eq!(a.state(c(0), b(1)), Some(&11));
    }

    #[test]
    fn holders_tracks_residency() {
        let mut a: CacheArray<()> = CacheArray::new(4);
        a.set(c(0), b(5), ());
        a.set(c(2), b(5), ());
        a.set(c(2), b(6), ());
        assert_eq!(a.holders(b(5)).len(), 2);
        assert_eq!(a.other_holders(c(0), b(5)).sole(), Some(c(2)));
        a.remove(c(0), b(5));
        assert_eq!(a.holders(b(5)).sole(), Some(c(2)));
        a.remove(c(2), b(5));
        assert!(a.holders(b(5)).is_empty());
        assert_eq!(a.distinct_blocks(), 1);
        a.check_residency().unwrap();
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut a: CacheArray<()> = CacheArray::new(1);
        assert_eq!(a.remove(c(0), b(1)), None);
        a.check_residency().unwrap();
    }

    #[test]
    fn remove_all_except_keeps_one() {
        let mut a: CacheArray<u8> = CacheArray::new(4);
        for i in 0..4 {
            a.set(c(i), b(9), i as u8);
        }
        let removed = a.remove_all_except(b(9), Some(c(2)));
        assert_eq!(removed.len(), 3);
        assert!(!removed.contains(c(2)));
        assert_eq!(a.holders(b(9)).sole(), Some(c(2)));
        a.check_residency().unwrap();
    }

    #[test]
    fn remove_all_clears_block() {
        let mut a: CacheArray<u8> = CacheArray::new(3);
        a.set(c(0), b(9), 0);
        a.set(c(1), b(9), 0);
        let removed = a.remove_all_except(b(9), None);
        assert_eq!(removed.len(), 2);
        assert!(a.holders(b(9)).is_empty());
    }

    #[test]
    fn blocks_in_counts_per_cache() {
        let mut a: CacheArray<()> = CacheArray::new(2);
        a.set(c(0), b(1), ());
        a.set(c(0), b(2), ());
        a.set(c(1), b(1), ());
        assert_eq!(a.blocks_in(c(0)), 2);
        assert_eq!(a.blocks_in(c(1)), 1);
        assert_eq!(a.distinct_blocks(), 2);
    }

    #[test]
    fn iter_blocks_covers_everything() {
        let mut a: CacheArray<()> = CacheArray::new(2);
        a.set(c(0), b(1), ());
        a.set(c(1), b(2), ());
        let mut blocks: Vec<u64> = a.iter_blocks().map(|(blk, _)| blk.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![1, 2]);
        assert_eq!(a.iter_cache(c(0)).count(), 1);
    }

    #[test]
    fn capacity_hint_preallocates() {
        let mut a: CacheArray<u8> = CacheArray::with_block_capacity(2, 128);
        for i in 0..128 {
            a.set(c(0), b(i), 0);
        }
        assert_eq!(a.blocks_in(c(0)), 128);
        a.reserve_blocks(256);
        a.check_residency().unwrap();
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_caches_rejected() {
        let _: CacheArray<()> = CacheArray::new(0);
    }

    #[test]
    #[should_panic(expected = "dense-table bound")]
    fn sparse_block_index_rejected() {
        let mut a: CacheArray<()> = CacheArray::new(1);
        a.set(c(0), b(1 << 40), ());
    }

    #[test]
    fn encode_states_is_canonical() {
        let mut a: CacheArray<u8> = CacheArray::new(3);
        a.set(c(0), b(1), 7);
        a.set(c(2), b(1), 9);
        let mut x = Vec::new();
        a.encode_states(&mut x, |s| u64::from(*s));
        // 1 block; block 1 held by caches {0, 2} with states 7 and 9.
        assert_eq!(x, vec![1, 1, 0b101, 7, 9]);

        // A grown-then-emptied table encodes identically to a fresh one.
        let mut grown: CacheArray<u8> = CacheArray::new(3);
        grown.set(c(1), b(5), 3);
        grown.remove(c(1), b(5));
        let (mut g, mut f) = (Vec::new(), Vec::new());
        grown.encode_states(&mut g, |s| u64::from(*s));
        CacheArray::<u8>::new(3).encode_states(&mut f, |s| u64::from(*s));
        assert_eq!(g, f);
    }

    #[test]
    fn cache_ids_enumerates() {
        let a: CacheArray<()> = CacheArray::new(3);
        let ids: Vec<u16> = a.cache_ids().map(|c| c.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}

//! The infinite-cache array with residency oracle.

use dircc_types::{BlockAddr, CacheId, CacheIdSet};
use std::collections::HashMap;

/// An array of infinite caches, one per [`CacheId`], each mapping blocks to
/// a protocol-defined state `S`, plus a residency oracle.
///
/// Invariant: `holders(b)` contains exactly the caches for which
/// `state(c, b)` is `Some`. The oracle is maintained internally and is what
/// makes O(1) "who has this block" queries possible for snoopy protocols,
/// verification, and statistics.
#[derive(Debug, Clone)]
pub struct CacheArray<S> {
    caches: Vec<HashMap<BlockAddr, S>>,
    residency: HashMap<BlockAddr, CacheIdSet>,
}

impl<S> CacheArray<S> {
    /// Creates `n` empty caches.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 64 (the [`CacheIdSet`] width).
    pub fn new(n: usize) -> Self {
        assert!((1..=64).contains(&n), "cache count must be in 1..=64");
        CacheArray { caches: (0..n).map(|_| HashMap::new()).collect(), residency: HashMap::new() }
    }

    /// Number of caches.
    pub fn num_caches(&self) -> usize {
        self.caches.len()
    }

    /// Iterates over all valid cache ids.
    pub fn cache_ids(&self) -> impl Iterator<Item = CacheId> {
        (0..self.caches.len() as u16).map(CacheId::new)
    }

    /// Returns the state of `block` in `cache`, if present.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn state(&self, cache: CacheId, block: BlockAddr) -> Option<&S> {
        self.caches[cache.index()].get(&block)
    }

    /// Returns a mutable reference to the state of `block` in `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn state_mut(&mut self, cache: CacheId, block: BlockAddr) -> Option<&mut S> {
        self.caches[cache.index()].get_mut(&block)
    }

    /// Installs or updates `block` in `cache` with state `s`, returning the
    /// previous state if the block was already present.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn set(&mut self, cache: CacheId, block: BlockAddr, s: S) -> Option<S> {
        let prev = self.caches[cache.index()].insert(block, s);
        if prev.is_none() {
            self.residency.entry(block).or_default().insert(cache);
        }
        prev
    }

    /// Removes `block` from `cache`, returning its state if present.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn remove(&mut self, cache: CacheId, block: BlockAddr) -> Option<S> {
        let prev = self.caches[cache.index()].remove(&block);
        if prev.is_some() {
            if let Some(set) = self.residency.get_mut(&block) {
                set.remove(cache);
                if set.is_empty() {
                    self.residency.remove(&block);
                }
            }
        }
        prev
    }

    /// Returns the set of caches currently holding `block`.
    pub fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.residency.get(&block).copied().unwrap_or_default()
    }

    /// Returns the caches holding `block`, excluding `cache`.
    pub fn other_holders(&self, cache: CacheId, block: BlockAddr) -> CacheIdSet {
        self.holders(block).without(cache)
    }

    /// Returns the number of blocks resident in `cache`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn blocks_in(&self, cache: CacheId) -> usize {
        self.caches[cache.index()].len()
    }

    /// Returns the number of distinct blocks resident anywhere.
    pub fn distinct_blocks(&self) -> usize {
        self.residency.len()
    }

    /// Iterates over `(block, state)` pairs of one cache (arbitrary order).
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range.
    pub fn iter_cache(&self, cache: CacheId) -> impl Iterator<Item = (&BlockAddr, &S)> {
        self.caches[cache.index()].iter()
    }

    /// Iterates over every block resident anywhere, with its holder set.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (&BlockAddr, &CacheIdSet)> {
        self.residency.iter()
    }

    /// Checks the internal residency-oracle invariant; used by tests and
    /// the protocol invariant checkers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn check_residency(&self) -> Result<(), String> {
        for (block, set) in &self.residency {
            if set.is_empty() {
                return Err(format!("{block}: empty residency entry retained"));
            }
            for cache in set.iter() {
                if !self.caches[cache.index()].contains_key(block) {
                    return Err(format!("{block}: oracle claims {cache} but tag store disagrees"));
                }
            }
        }
        for (i, tags) in self.caches.iter().enumerate() {
            let cache = CacheId::new(i as u16);
            for block in tags.keys() {
                if !self.holders(*block).contains(cache) {
                    return Err(format!("{block}: in {cache} tag store but not in oracle"));
                }
            }
        }
        Ok(())
    }
}

impl<S: Clone> CacheArray<S> {
    /// Removes `block` from every cache except `keep`, returning the caches
    /// it was removed from. Pass `None` to remove from all.
    pub fn remove_all_except(&mut self, block: BlockAddr, keep: Option<CacheId>) -> CacheIdSet {
        let mut victims = self.holders(block);
        if let Some(k) = keep {
            victims.remove(k);
        }
        for c in victims.iter() {
            self.remove(c, block);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn c(i: u16) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn set_and_get() {
        let mut a: CacheArray<u32> = CacheArray::new(2);
        assert_eq!(a.set(c(0), b(1), 7), None);
        assert_eq!(a.set(c(0), b(1), 9), Some(7));
        assert_eq!(a.state(c(0), b(1)), Some(&9));
        assert_eq!(a.state(c(1), b(1)), None);
        *a.state_mut(c(0), b(1)).unwrap() = 11;
        assert_eq!(a.state(c(0), b(1)), Some(&11));
    }

    #[test]
    fn holders_tracks_residency() {
        let mut a: CacheArray<()> = CacheArray::new(4);
        a.set(c(0), b(5), ());
        a.set(c(2), b(5), ());
        a.set(c(2), b(6), ());
        assert_eq!(a.holders(b(5)).len(), 2);
        assert_eq!(a.other_holders(c(0), b(5)).sole(), Some(c(2)));
        a.remove(c(0), b(5));
        assert_eq!(a.holders(b(5)).sole(), Some(c(2)));
        a.remove(c(2), b(5));
        assert!(a.holders(b(5)).is_empty());
        assert_eq!(a.distinct_blocks(), 1);
        a.check_residency().unwrap();
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut a: CacheArray<()> = CacheArray::new(1);
        assert_eq!(a.remove(c(0), b(1)), None);
        a.check_residency().unwrap();
    }

    #[test]
    fn remove_all_except_keeps_one() {
        let mut a: CacheArray<u8> = CacheArray::new(4);
        for i in 0..4 {
            a.set(c(i), b(9), i as u8);
        }
        let removed = a.remove_all_except(b(9), Some(c(2)));
        assert_eq!(removed.len(), 3);
        assert!(!removed.contains(c(2)));
        assert_eq!(a.holders(b(9)).sole(), Some(c(2)));
        a.check_residency().unwrap();
    }

    #[test]
    fn remove_all_clears_block() {
        let mut a: CacheArray<u8> = CacheArray::new(3);
        a.set(c(0), b(9), 0);
        a.set(c(1), b(9), 0);
        let removed = a.remove_all_except(b(9), None);
        assert_eq!(removed.len(), 2);
        assert!(a.holders(b(9)).is_empty());
    }

    #[test]
    fn blocks_in_counts_per_cache() {
        let mut a: CacheArray<()> = CacheArray::new(2);
        a.set(c(0), b(1), ());
        a.set(c(0), b(2), ());
        a.set(c(1), b(1), ());
        assert_eq!(a.blocks_in(c(0)), 2);
        assert_eq!(a.blocks_in(c(1)), 1);
        assert_eq!(a.distinct_blocks(), 2);
    }

    #[test]
    fn iter_blocks_covers_everything() {
        let mut a: CacheArray<()> = CacheArray::new(2);
        a.set(c(0), b(1), ());
        a.set(c(1), b(2), ());
        let mut blocks: Vec<u64> = a.iter_blocks().map(|(blk, _)| blk.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![1, 2]);
        assert_eq!(a.iter_cache(c(0)).count(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_caches_rejected() {
        let _: CacheArray<()> = CacheArray::new(0);
    }

    #[test]
    fn cache_ids_enumerates() {
        let a: CacheArray<()> = CacheArray::new(3);
        let ids: Vec<u16> = a.cache_ids().map(|c| c.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}

//! # dircc-cache
//!
//! Cache tag-store substrates for the dircc coherence simulator.
//!
//! The paper's methodology simulates **infinite caches** ("to eliminate the
//! traffic caused by interference in finite caches"); [`CacheArray`] is that
//! model: one unbounded tag store per cache, with a residency oracle that
//! answers *which caches hold this block* in O(1). Coherence protocols store
//! their per-block, per-cache state here and the simulation engine uses the
//! oracle for verification.
//!
//! [`SetAssocCache`] is the finite set-associative LRU cache used by the
//! finite-cache extension experiments (the paper estimates finite-cache
//! behaviour "to first order by adding the costs due to the finite cache
//! size").
//!
//! [`BlockMap`] and [`BlockSet`] are dense per-block containers for
//! directory state: replay feeds protocols *interned* (dense) block
//! addresses, so per-block tables are flat vectors instead of hash maps.
//!
//! # Examples
//!
//! ```
//! use dircc_cache::CacheArray;
//! use dircc_types::{BlockAddr, CacheId};
//!
//! let mut caches: CacheArray<bool> = CacheArray::new(4);
//! let b = BlockAddr::from_index(7);
//! caches.set(CacheId::new(0), b, false);
//! caches.set(CacheId::new(2), b, true);
//! assert_eq!(caches.holders(b).len(), 2);
//! ```

mod array;
mod blockmap;
mod finite;

pub use array::CacheArray;
pub use blockmap::{BlockMap, BlockSet};
pub use finite::{Eviction, FiniteCacheConfig, Lookup, SetAssocCache};

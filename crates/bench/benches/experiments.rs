//! One benchmark per paper table and figure: each measurement regenerates
//! the artifact end-to-end (trace synthesis + protocol replay + pricing)
//! at a reduced scale, so `cargo bench` demonstrably covers every
//! experiment the paper reports.

use criterion::{criterion_group, criterion_main, Criterion};
use dircc_bench::{BENCH_REFS, BENCH_SEED};
use dircc_sim::experiments::{extensions, figures, network, studies, system, tables};
use dircc_sim::Workbench;
use std::hint::black_box;
use std::time::Duration;

fn fresh_workbench() -> Workbench {
    Workbench::paper_scaled(BENCH_REFS, BENCH_SEED)
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1", |b| b.iter(|| black_box(tables::table1().to_string())));
    g.bench_function("table2", |b| b.iter(|| black_box(tables::table2().to_string())));
    g.bench_function("table3", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(tables::table3(&wb).to_string())
        })
    });
    g.bench_function("table4", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(tables::table4(&wb).to_string())
        })
    });
    g.bench_function("table5", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(tables::table5(&wb).to_string())
        })
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.bench_function("figure1", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(figures::figure1(&wb).at_most_one)
        })
    });
    g.bench_function("figure2", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(figures::figure2(&wb).ranges.len())
        })
    });
    g.bench_function("figure3", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(figures::figure3(&wb).per_trace.len())
        })
    });
    g.bench_function("figure4", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(figures::figure4(&wb).schemes.len())
        })
    });
    g.bench_function("figure5", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(figures::figure5(&wb).per_transaction.len())
        })
    });
    g.finish();
}

fn bench_studies(c: &mut Criterion) {
    let mut g = c.benchmark_group("studies");
    g.bench_function("sensitivity_5_1", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(studies::sensitivity(&wb).lines.len())
        })
    });
    g.bench_function("spinlock_5_2", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(studies::spinlock(&wb).dir1nb_improvement())
        })
    });
    g.bench_function("berkeley", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(studies::berkeley(&wb).estimate)
        })
    });
    g.bench_function("scalability_6", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(studies::scalability(&wb).dirnnb)
        })
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.bench_function("system_5", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(system::system(&wb).rows.len())
        })
    });
    g.bench_function("finite_cache", |b| {
        b.iter(|| {
            let wb = fresh_workbench();
            black_box(extensions::finite_cache(&wb).points.len())
        })
    });
    g.bench_function("footnote2", |b| {
        b.iter(|| {
            let wb = Workbench::paper_scaled(10_000, BENCH_SEED);
            black_box(extensions::footnote2(&wb).points.len())
        })
    });
    g.bench_function("scaling", |b| {
        b.iter(|| black_box(extensions::scaling(5_000, BENCH_SEED, 1).rows.len()))
    });
    g.bench_function("block_size", |b| {
        b.iter(|| black_box(extensions::block_size(BENCH_REFS, BENCH_SEED, 1).points.len()))
    });
    g.bench_function("storage_table", |b| {
        b.iter(|| black_box(network::storage_table().rows.len()))
    });
    g.bench_function("network_meshes", |b| {
        b.iter(|| black_box(network::network_study(5_000, BENCH_SEED, 1).rows.len()))
    });
    g.finish();
}

fn bench_bus_queue(c: &mut Criterion) {
    use dircc_sim::busqueue::{simulate, BusLoad};
    let mut g = c.benchmark_group("busqueue");
    g.bench_function("simulate_16cpu", |b| {
        let load = BusLoad::paper_platform(16);
        b.iter(|| black_box(simulate(&load, BENCH_SEED).effective_processors))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tables, bench_figures, bench_studies, bench_extensions, bench_bus_queue
}
criterion_main!(benches);

//! Micro-benchmarks of the substrates: workload generation, trace codecs
//! and cache tag stores.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dircc_bench::{bench_trace, BENCH_REFS, BENCH_SEED};
use dircc_cache::CacheArray;
use dircc_trace::codec::{BinaryReader, BinaryWriter};
use dircc_trace::gen::{Generator, Profile};
use dircc_types::{BlockAddr, CacheId, CacheIdSet};
use std::hint::black_box;
use std::time::Duration;

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.throughput(Throughput::Elements(BENCH_REFS));
    for profile in [Profile::pops(), Profile::thor(), Profile::pero()] {
        let name = profile.name.to_string();
        g.bench_function(name, |b| {
            b.iter(|| {
                let gen = Generator::new(profile.clone().with_total_refs(BENCH_REFS), BENCH_SEED);
                black_box(gen.count())
            })
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let trace = bench_trace(BENCH_REFS);
    let mut encoded = Vec::new();
    let mut w = BinaryWriter::new(&mut encoded);
    w.write_all(&trace).unwrap();
    w.finish().unwrap();

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(BENCH_REFS));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            let mut w = BinaryWriter::new(&mut buf);
            w.write_all(&trace).unwrap();
            w.finish().unwrap();
            black_box(buf.len())
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            let n = BinaryReader::new(&encoded[..]).unwrap().count();
            black_box(n)
        })
    });
    g.finish();
}

fn bench_cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_array");
    g.bench_function("set_get_remove", |b| {
        b.iter(|| {
            let mut a: CacheArray<u8> = CacheArray::new(4);
            for i in 0..1_000u64 {
                let cache = CacheId::new((i % 4) as u16);
                let block = BlockAddr::from_index(i % 64);
                a.set(cache, block, (i % 251) as u8);
                black_box(a.holders(block).len());
                if i % 3 == 0 {
                    a.remove(cache, block);
                }
            }
            black_box(a.distinct_blocks())
        })
    });
    g.bench_function("holders_query", |b| {
        let mut a: CacheArray<()> = CacheArray::new(16);
        for i in 0..64u64 {
            for c in 0..16u16 {
                if (i + u64::from(c)) % 3 == 0 {
                    a.set(CacheId::new(c), BlockAddr::from_index(i), ());
                }
            }
        }
        b.iter(|| {
            let mut total = 0;
            for i in 0..64u64 {
                total += a.holders(BlockAddr::from_index(i)).len();
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_cache_id_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_id_set");
    g.bench_function("insert_iterate", |b| {
        b.iter(|| {
            let mut s = CacheIdSet::new();
            for i in (0..64u16).step_by(3) {
                s.insert(CacheId::new(i));
            }
            let sum: u32 = s.iter().map(|c| u32::from(c.raw())).sum();
            black_box(sum)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generator, bench_codec, bench_cache_array, bench_cache_id_set
}
criterion_main!(benches);

//! Replay throughput of every coherence protocol on a fixed trace, plus
//! ablations: verification overhead and finite-vs-infinite caches.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dircc_bench::{bench_trace, BENCH_REFS};
use dircc_cache::{FiniteCacheConfig, SetAssocCache};
use dircc_core::{build, ProtocolKind};
use dircc_sim::engine::{run, RunConfig};
use dircc_types::BlockGeometry;
use std::hint::black_box;
use std::time::Duration;

fn all_kinds() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::DirNb { pointers: 1 },
        ProtocolKind::DirNb { pointers: 2 },
        ProtocolKind::DirNb { pointers: 4 },
        ProtocolKind::Dir0B,
        ProtocolKind::DirB { pointers: 1 },
        ProtocolKind::CodedSet,
        ProtocolKind::Tang,
        ProtocolKind::YenFu,
        ProtocolKind::Wti,
        ProtocolKind::Dragon,
        ProtocolKind::Berkeley,
    ]
}

fn bench_replay(c: &mut Criterion) {
    let trace = bench_trace(BENCH_REFS);
    let mut g = c.benchmark_group("replay");
    g.throughput(Throughput::Elements(BENCH_REFS));
    for kind in all_kinds() {
        g.bench_function(kind.display_name(4), |b| {
            b.iter(|| {
                let mut p = build(kind, 4);
                let res = run(p.as_mut(), trace.iter().copied(), &RunConfig::default()).unwrap();
                black_box(res.counters.total())
            })
        });
    }
    g.finish();
}

fn bench_verification_overhead(c: &mut Criterion) {
    // Ablation: what the value-level verifier costs on top of plain replay.
    let trace = bench_trace(BENCH_REFS);
    let mut g = c.benchmark_group("verify_ablation");
    g.throughput(Throughput::Elements(BENCH_REFS));
    for (name, cfg) in [
        ("dir0b_plain", RunConfig::default()),
        ("dir0b_verified", RunConfig { verify: true, ..RunConfig::default() }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut p = build(ProtocolKind::Dir0B, 4);
                let res = run(p.as_mut(), trace.iter().copied(), &cfg).unwrap();
                black_box(res.violations.len())
            })
        });
    }
    g.finish();
}

fn bench_finite_cache_ablation(c: &mut Criterion) {
    // Ablation for the paper's finite-cache extension: replay the trace
    // through finite set-associative caches and count replacement misses —
    // the "costs due to the finite cache size" the paper adds to first
    // order.
    let trace = bench_trace(BENCH_REFS);
    let g_geom = BlockGeometry::PAPER;
    let mut g = c.benchmark_group("finite_cache");
    g.throughput(Throughput::Elements(BENCH_REFS));
    for (name, capacity) in [("cap_256", 256usize), ("cap_1k", 1024), ("cap_4k", 4096)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut caches: Vec<SetAssocCache<()>> = (0..4)
                    .map(|_| SetAssocCache::new(FiniteCacheConfig::with_capacity(capacity, 4)))
                    .collect();
                for r in &trace {
                    if !r.is_data() {
                        continue;
                    }
                    let cache = &mut caches[r.cpu.index()];
                    let block = g_geom.block_of(r.addr);
                    if cache.get(block).is_none() {
                        cache.insert(block, ());
                    }
                }
                let misses: u64 = caches.iter().map(|c| c.misses()).sum();
                black_box(misses)
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_replay, bench_verification_overhead, bench_finite_cache_ablation
}
criterion_main!(benches);

//! # dircc-bench
//!
//! Benchmark harness for the dircc workspace. The crate body only holds
//! shared fixtures; the measurements live in the `benches/` targets:
//!
//! * `experiments` — one Criterion group per paper table and figure,
//!   regenerating each artifact end-to-end at a reduced trace scale;
//! * `protocols` — replay throughput of every coherence protocol;
//! * `substrate` — micro-benchmarks of the generator, codecs and cache
//!   tag stores.

use dircc_trace::gen::{Generator, Profile};
use dircc_trace::TraceRecord;

/// References per trace used by the experiment benches (small enough to
/// iterate, large enough to exercise steady-state behaviour).
pub const BENCH_REFS: u64 = 30_000;

/// Deterministic seed shared by all benches.
pub const BENCH_SEED: u64 = 1988;

/// Materializes a POPS-like benchmark trace.
pub fn bench_trace(total_refs: u64) -> Vec<TraceRecord> {
    Generator::new(Profile::pops().with_total_refs(total_refs), BENCH_SEED).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trace_has_requested_length() {
        assert_eq!(bench_trace(1_000).len(), 1_000);
    }
}

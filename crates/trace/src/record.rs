//! Trace records.

use core::fmt;
use dircc_types::{AccessKind, Address, CpuId, ProcessId};

/// Metadata flags attached to a [`TraceRecord`].
///
/// The ATUM traces let the paper's authors identify lock-test reads and
/// operating-system activity; synthetic traces carry the same information
/// explicitly so the §5.2 (spin-lock exclusion) and Table 3 (user/sys split)
/// experiments can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RecordFlags(u8);

impl RecordFlags {
    /// No flags set.
    pub const NONE: RecordFlags = RecordFlags(0);
    /// The reference touches a lock word (test or test-and-set).
    pub const LOCK: RecordFlags = RecordFlags(1);
    /// The reference was issued by operating-system code.
    pub const SYSTEM: RecordFlags = RecordFlags(2);
    /// Every defined flag; bits outside this mask are undefined.
    pub const ALL: RecordFlags = RecordFlags(3);

    /// Creates flags from their raw bit representation (unknown bits kept).
    ///
    /// Use [`RecordFlags::from_bits_checked`] at trust boundaries (the
    /// codecs do): undefined bits would otherwise flow unnoticed into
    /// shard routing and filter decisions.
    #[inline]
    pub const fn from_bits(bits: u8) -> Self {
        RecordFlags(bits)
    }

    /// Creates flags from raw bits, rejecting undefined bits.
    #[inline]
    pub const fn from_bits_checked(bits: u8) -> Option<Self> {
        if bits & !RecordFlags::ALL.0 != 0 {
            None
        } else {
            Some(RecordFlags(bits))
        }
    }

    /// Returns the raw bit representation.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Returns `true` if every flag in `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: RecordFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns the union of two flag sets.
    #[inline]
    #[must_use]
    pub const fn union(self, other: RecordFlags) -> RecordFlags {
        RecordFlags(self.0 | other.0)
    }

    /// Returns `true` if the lock flag is set.
    #[inline]
    pub const fn is_lock(self) -> bool {
        self.contains(RecordFlags::LOCK)
    }

    /// Returns `true` if the system flag is set.
    #[inline]
    pub const fn is_system(self) -> bool {
        self.contains(RecordFlags::SYSTEM)
    }
}

impl core::ops::BitOr for RecordFlags {
    type Output = RecordFlags;

    fn bitor(self, rhs: RecordFlags) -> RecordFlags {
        self.union(rhs)
    }
}

impl fmt::Display for RecordFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (flag, name) in [(RecordFlags::LOCK, "lock"), (RecordFlags::SYSTEM, "sys")] {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// One memory reference in a multiprocessor address trace.
///
/// Mirrors the information the multiprocessor ATUM extension recorded:
/// interleaved per-CPU address streams with CPU numbers and process
/// identifiers, "so that any address in the trace can be identified as
/// coming from a given CPU and given process".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// The CPU that issued the reference.
    pub cpu: CpuId,
    /// The process that was running on that CPU.
    pub pid: ProcessId,
    /// Instruction fetch, read or write.
    pub kind: AccessKind,
    /// Byte address referenced.
    pub addr: Address,
    /// Lock/system metadata.
    pub flags: RecordFlags,
}

impl TraceRecord {
    /// Creates a record with no flags.
    pub fn new(cpu: CpuId, pid: ProcessId, kind: AccessKind, addr: Address) -> Self {
        TraceRecord { cpu, pid, kind, addr, flags: RecordFlags::NONE }
    }

    /// Returns a copy with the given flags added.
    #[must_use]
    pub fn with_flags(mut self, flags: RecordFlags) -> Self {
        self.flags = self.flags | flags;
        self
    }

    /// Returns `true` for data references (read/write).
    #[inline]
    pub fn is_data(&self) -> bool {
        self.kind.is_data()
    }

    /// Returns `true` if this is a lock-test read (a read with the lock
    /// flag), i.e. the first "test" of a test-and-test-and-set primitive.
    /// These are the references excluded by the paper's §5.2 experiment.
    #[inline]
    pub fn is_lock_spin(&self) -> bool {
        self.kind == AccessKind::Read && self.flags.is_lock()
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {:#x} {}", self.cpu, self.pid, self.kind.code(), self.addr, self.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: AccessKind) -> TraceRecord {
        TraceRecord::new(CpuId::new(1), ProcessId::new(2), kind, Address::new(0x40))
    }

    #[test]
    fn flags_contain_and_union() {
        let f = RecordFlags::LOCK | RecordFlags::SYSTEM;
        assert!(f.is_lock());
        assert!(f.is_system());
        assert!(f.contains(RecordFlags::LOCK));
        assert!(!RecordFlags::NONE.is_lock());
    }

    #[test]
    fn lock_spin_requires_read_and_lock_flag() {
        assert!(rec(AccessKind::Read).with_flags(RecordFlags::LOCK).is_lock_spin());
        assert!(!rec(AccessKind::Write).with_flags(RecordFlags::LOCK).is_lock_spin());
        assert!(!rec(AccessKind::Read).is_lock_spin());
    }

    #[test]
    fn display_is_compact() {
        let r = rec(AccessKind::Read).with_flags(RecordFlags::LOCK);
        assert_eq!(r.to_string(), "cpu1 pid2 R 0x40 lock");
        assert_eq!(rec(AccessKind::InstrFetch).to_string(), "cpu1 pid2 I 0x40 -");
    }

    #[test]
    fn flags_round_trip_bits() {
        let f = RecordFlags::from_bits(3);
        assert_eq!(f.bits(), 3);
        assert!(f.is_lock() && f.is_system());
    }

    #[test]
    fn flags_display() {
        assert_eq!(RecordFlags::NONE.to_string(), "-");
        assert_eq!(RecordFlags::LOCK.to_string(), "lock");
        assert_eq!((RecordFlags::LOCK | RecordFlags::SYSTEM).to_string(), "lock|sys");
    }
}

//! Stream adaptors over trace records.
//!
//! The paper's §5.2 experiment re-runs the simulations "excluding all the
//! tests on locks"; [`exclude_lock_spins`] reproduces that transformation.
//! [`remap_cpu_to_process`] supports the paper's process-sharing model by
//! re-homing each reference onto a virtual per-process cache.

use crate::record::TraceRecord;
use dircc_types::CpuId;

/// Removes lock-test reads (spins) from a record stream, keeping lock
/// writes (the test-and-set itself) and everything else.
///
/// This is exactly the §5.2 transformation: spins are the *first test* in a
/// test-and-test-and-set, and appear in the trace as flagged reads.
///
/// ```
/// use dircc_trace::filter::exclude_lock_spins;
/// use dircc_trace::{RecordFlags, TraceRecord};
/// use dircc_types::{AccessKind, Address, CpuId, ProcessId};
///
/// let spin = TraceRecord::new(CpuId::new(0), ProcessId::new(0), AccessKind::Read, Address::new(0))
///     .with_flags(RecordFlags::LOCK);
/// let write = TraceRecord::new(CpuId::new(0), ProcessId::new(0), AccessKind::Write, Address::new(0))
///     .with_flags(RecordFlags::LOCK);
/// let out: Vec<_> = exclude_lock_spins([spin, write]).collect();
/// assert_eq!(out, vec![write]);
/// ```
pub fn exclude_lock_spins<I>(records: I) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    records.into_iter().filter(|r| !r.is_lock_spin())
}

/// Rewrites each record's CPU to its process id, so that a simulator keyed
/// on CPUs effectively simulates one cache per *process*.
///
/// The paper classifies sharing between processes rather than processors
/// ("a block is considered shared only if it is accessed by more than one
/// process"); with rare migration the two give nearly identical numbers,
/// which integration tests verify.
pub fn remap_cpu_to_process<I>(records: I) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    records.into_iter().map(|mut r| {
        r.cpu = CpuId::new(r.pid.raw());
        r
    })
}

/// Keeps only references issued by the given CPU.
pub fn only_cpu<I>(cpu: CpuId, records: I) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    records.into_iter().filter(move |r| r.cpu == cpu)
}

/// Keeps only data references (drops instruction fetches).
pub fn only_data<I>(records: I) -> impl Iterator<Item = TraceRecord>
where
    I: IntoIterator<Item = TraceRecord>,
{
    records.into_iter().filter(|r| r.is_data())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordFlags;
    use dircc_types::{AccessKind, Address, ProcessId};

    fn rec(cpu: u16, pid: u16, kind: AccessKind, flags: RecordFlags) -> TraceRecord {
        TraceRecord::new(CpuId::new(cpu), ProcessId::new(pid), kind, Address::new(0x40))
            .with_flags(flags)
    }

    #[test]
    fn exclude_lock_spins_keeps_lock_writes() {
        let recs = vec![
            rec(0, 0, AccessKind::Read, RecordFlags::LOCK),
            rec(0, 0, AccessKind::Write, RecordFlags::LOCK),
            rec(0, 0, AccessKind::Read, RecordFlags::NONE),
            rec(0, 0, AccessKind::InstrFetch, RecordFlags::NONE),
        ];
        let out: Vec<_> = exclude_lock_spins(recs).collect();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| !r.is_lock_spin()));
    }

    #[test]
    fn remap_rehomes_on_pid() {
        let out: Vec<_> =
            remap_cpu_to_process([rec(3, 7, AccessKind::Read, RecordFlags::NONE)]).collect();
        assert_eq!(out[0].cpu, CpuId::new(7));
        assert_eq!(out[0].pid, ProcessId::new(7));
    }

    #[test]
    fn only_cpu_filters() {
        let recs = vec![
            rec(0, 0, AccessKind::Read, RecordFlags::NONE),
            rec(1, 0, AccessKind::Read, RecordFlags::NONE),
        ];
        let out: Vec<_> = only_cpu(CpuId::new(1), recs).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cpu, CpuId::new(1));
    }

    #[test]
    fn only_data_drops_instr() {
        let recs = vec![
            rec(0, 0, AccessKind::InstrFetch, RecordFlags::NONE),
            rec(0, 0, AccessKind::Write, RecordFlags::NONE),
        ];
        let out: Vec<_> = only_data(recs).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AccessKind::Write);
    }
}

//! Deterministic sharing kernels with exactly predictable event counts.
//!
//! These tiny generators exercise one sharing pattern each. Protocol unit
//! tests use them because the expected event frequencies can be computed by
//! hand; benches use them to isolate a single behaviour.

use crate::record::{RecordFlags, TraceRecord};
use dircc_types::{AccessKind, Address, BlockGeometry, CpuId, ProcessId};

const BLOCK: u64 = BlockGeometry::PAPER.block_bytes();
/// Base address of all pattern data (block-aligned, away from zero).
const DATA_BASE: u64 = 0x10_0000;

fn rec(cpu: u16, kind: AccessKind, addr: u64) -> TraceRecord {
    TraceRecord::new(CpuId::new(cpu), ProcessId::new(cpu), kind, Address::new(addr))
}

/// Two CPUs alternately write the same block: the classic ping-pong.
///
/// Each round is one write by CPU 0 then one by CPU 1 to the same address.
/// Under any invalidation protocol every write after the first two misses
/// (the block is dirty in the other cache).
///
/// ```
/// let t = dircc_trace::gen::patterns::ping_pong(10);
/// assert_eq!(t.len(), 20);
/// ```
pub fn ping_pong(rounds: u32) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(rounds as usize * 2);
    for _ in 0..rounds {
        out.push(rec(0, AccessKind::Write, DATA_BASE));
        out.push(rec(1, AccessKind::Write, DATA_BASE));
    }
    out
}

/// Every CPU reads the same `blocks` blocks, `rounds` times.
///
/// After the cold pass no coherence traffic occurs in any protocol that
/// permits multiple clean copies; `Dir1NB` instead misses on every read
/// because only one cached copy may exist.
pub fn read_only_sharing(cpus: u16, blocks: u32, rounds: u32) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    for _ in 0..rounds {
        for cpu in 0..cpus {
            for b in 0..blocks {
                out.push(rec(cpu, AccessKind::Read, DATA_BASE + u64::from(b) * BLOCK));
            }
        }
    }
    out
}

/// A migratory object: each CPU in turn reads then writes the same block.
///
/// This is the access pattern of data protected by a lock. Each hand-off
/// produces a read miss to a dirty block followed by a write hit to a block
/// that is clean in the local cache (`wh-blk-cln`).
pub fn migratory(cpus: u16, handoffs: u32) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    for i in 0..handoffs {
        let cpu = (i % u32::from(cpus)) as u16;
        out.push(rec(cpu, AccessKind::Read, DATA_BASE));
        out.push(rec(cpu, AccessKind::Write, DATA_BASE));
    }
    out
}

/// Producer/consumer: CPU 0 writes slot *i*, CPU 1 then reads it.
pub fn producer_consumer(items: u32, slots: u32) -> Vec<TraceRecord> {
    let slots = slots.max(1);
    let mut out = Vec::new();
    for i in 0..items {
        let addr = DATA_BASE + u64::from(i % slots) * BLOCK;
        out.push(rec(0, AccessKind::Write, addr));
        out.push(rec(1, AccessKind::Read, addr));
    }
    out
}

/// Each CPU reads and writes only its own private block; no sharing at all.
///
/// After the cold pass, no protocol generates any traffic.
pub fn private_only(cpus: u16, rounds: u32) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    for _ in 0..rounds {
        for cpu in 0..cpus {
            let addr = DATA_BASE + u64::from(cpu) * BLOCK * 16;
            out.push(rec(cpu, AccessKind::Read, addr));
            out.push(rec(cpu, AccessKind::Write, addr));
        }
    }
    out
}

/// Spin-lock contention: CPU 0 holds the lock and works; CPUs 1.. spin
/// (flagged lock-test reads); then CPU 0 releases and CPU 1 acquires.
///
/// One element of the paper's §5.2 story in miniature: the spin reads
/// ping-pong in `Dir1NB` but are quiet in multi-copy protocols.
pub fn spinlock_contention(spinners: u16, spins_each: u32) -> Vec<TraceRecord> {
    let lock = DATA_BASE + 0x1000;
    let work = DATA_BASE + 0x2000;
    let mut out = Vec::new();
    // CPU 0 acquires: test, then set.
    out.push(rec(0, AccessKind::Read, lock).with_flags(RecordFlags::LOCK));
    out.push(rec(0, AccessKind::Write, lock).with_flags(RecordFlags::LOCK));
    // Spinners test while CPU 0 works.
    for s in 0..spins_each {
        for cpu in 1..=spinners {
            out.push(rec(cpu, AccessKind::Read, lock).with_flags(RecordFlags::LOCK));
        }
        out.push(rec(0, AccessKind::Write, work + u64::from(s % 4) * 4));
    }
    // Release, then CPU 1 acquires.
    out.push(rec(0, AccessKind::Write, lock).with_flags(RecordFlags::LOCK));
    out.push(rec(1, AccessKind::Read, lock).with_flags(RecordFlags::LOCK));
    out.push(rec(1, AccessKind::Write, lock).with_flags(RecordFlags::LOCK));
    out
}

/// Barrier synchronization: every CPU increments a shared counter (read +
/// write), then spins reading it until all have arrived, for `episodes`
/// barrier episodes.
///
/// Generates the other classic synchronization hot spot besides locks: a
/// single block written by everyone in turn and read by everyone
/// in-between.
pub fn barrier(cpus: u16, episodes: u32, spins_each: u32) -> Vec<TraceRecord> {
    let counter = DATA_BASE + 0x3000;
    let mut out = Vec::new();
    for e in 0..episodes {
        // Arrival: each CPU reads then increments the counter.
        for cpu in 0..cpus {
            out.push(rec(cpu, AccessKind::Read, counter));
            out.push(rec(cpu, AccessKind::Write, counter));
        }
        // Wait: each CPU re-reads until released (modelled as a fixed
        // number of spin reads, interleaved).
        for _ in 0..spins_each {
            for cpu in 0..cpus {
                out.push(rec(cpu, AccessKind::Read, counter));
            }
        }
        // Keep episodes distinguishable for debugging: a per-episode
        // private touch.
        out.push(rec((e % u32::from(cpus)) as u16, AccessKind::Read, DATA_BASE + 0x4000));
    }
    out
}

/// Interleaves instruction fetches (one per CPU per data reference) into an
/// existing pattern, for tests that need realistic instruction fractions.
pub fn with_instr_stream(data: Vec<TraceRecord>) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(data.len() * 2);
    for (i, r) in data.into_iter().enumerate() {
        out.push(TraceRecord::new(
            r.cpu,
            r.pid,
            AccessKind::InstrFetch,
            Address::new(0x9000_0000 + u64::from(r.cpu.raw()) * 0x1_0000 + (i as u64 % 64) * BLOCK),
        ));
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_alternates() {
        let t = ping_pong(3);
        assert_eq!(t.len(), 6);
        assert!(t.iter().step_by(2).all(|r| r.cpu == CpuId::new(0)));
        assert!(t.iter().skip(1).step_by(2).all(|r| r.cpu == CpuId::new(1)));
        assert!(t.iter().all(|r| r.kind == AccessKind::Write));
        let first = t[0].addr;
        assert!(t.iter().all(|r| r.addr == first));
    }

    #[test]
    fn read_only_counts() {
        let t = read_only_sharing(3, 4, 2);
        assert_eq!(t.len(), 3 * 4 * 2);
        assert!(t.iter().all(|r| r.kind == AccessKind::Read));
    }

    #[test]
    fn migratory_rotates_cpus() {
        let t = migratory(2, 4);
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].cpu, CpuId::new(0));
        assert_eq!(t[2].cpu, CpuId::new(1));
        assert_eq!(t[4].cpu, CpuId::new(0));
        assert_eq!(t[1].kind, AccessKind::Write);
    }

    #[test]
    fn producer_consumer_pairs() {
        let t = producer_consumer(5, 2);
        assert_eq!(t.len(), 10);
        for pair in t.chunks(2) {
            assert_eq!(pair[0].kind, AccessKind::Write);
            assert_eq!(pair[1].kind, AccessKind::Read);
            assert_eq!(pair[0].addr, pair[1].addr);
        }
    }

    #[test]
    fn private_only_never_shares_blocks() {
        let t = private_only(4, 3);
        let g = BlockGeometry::PAPER;
        use std::collections::HashMap;
        let mut owner: HashMap<u64, CpuId> = HashMap::new();
        for r in &t {
            let b = g.block_of(r.addr).index();
            let prev = owner.insert(b, r.cpu);
            assert!(prev.is_none() || prev == Some(r.cpu));
        }
    }

    #[test]
    fn spinlock_contention_flags_spins() {
        let t = spinlock_contention(2, 5);
        let spins = t.iter().filter(|r| r.is_lock_spin()).count();
        // initial test + 2 spinners x 5 + final test by cpu 1
        assert_eq!(spins, 1 + 10 + 1);
    }

    #[test]
    fn barrier_counts() {
        let t = barrier(4, 2, 3);
        // Per episode: 4*(read+write) + 3*4 spins + 1 = 21 records.
        assert_eq!(t.len(), 2 * 21);
        let writes = t.iter().filter(|r| r.kind == AccessKind::Write).count();
        assert_eq!(writes, 8, "one increment per CPU per episode");
    }

    #[test]
    fn with_instr_stream_doubles_and_interleaves() {
        let t = with_instr_stream(ping_pong(2));
        assert_eq!(t.len(), 8);
        assert!(t.iter().step_by(2).all(|r| r.kind == AccessKind::InstrFetch));
        // Instruction addresses never collide with data addresses.
        assert!(t
            .iter()
            .filter(|r| r.kind == AccessKind::InstrFetch)
            .all(|r| r.addr.raw() >= 0x9000_0000));
    }
}

//! Address-space layout for synthetic workloads.
//!
//! Each logical data region gets a disjoint slice of the 64-bit address
//! space so generated references can never alias across regions. All layout
//! uses the paper's 16-byte blocks.

use super::Profile;
use dircc_types::{Address, BlockGeometry};

const BLOCK: u64 = BlockGeometry::PAPER.block_bytes();

/// Base of per-process code regions.
const CODE_BASE: u64 = 0x8000_0000;
/// Stride between per-process code regions.
const CODE_STRIDE: u64 = 0x0010_0000;
/// Base of per-process private data regions.
const PRIVATE_BASE: u64 = 0x1000_0000;
/// Stride between per-process private regions.
const PRIVATE_STRIDE: u64 = 0x0040_0000;
/// Base of the shared read-only table.
const SHARED_RO_BASE: u64 = 0x2000_0000;
/// Base of lock-protected (migratory) objects.
const OBJECT_BASE: u64 = 0x3000_0000;
/// Stride between per-lock objects.
const OBJECT_STRIDE: u64 = 0x0001_0000;
/// Base of lock words (one block per lock).
const LOCK_BASE: u64 = 0x4000_0000;
/// Base of producer/consumer queues.
const QUEUE_BASE: u64 = 0x5000_0000;
/// Stride between queues.
const QUEUE_STRIDE: u64 = 0x0001_0000;
/// Base of shared OS data.
const OS_DATA_BASE: u64 = 0xE000_0000;
/// Base of per-process OS data (kernel stacks, u-areas).
const OS_PRIVATE_BASE: u64 = 0xD000_0000;
/// Stride between per-process OS data regions.
const OS_PRIVATE_STRIDE: u64 = 0x0010_0000;
/// Base of OS code.
const OS_CODE_BASE: u64 = 0xF000_0000;

/// Resolves logical workload locations to concrete byte addresses.
///
/// ```
/// use dircc_trace::gen::{Profile, Regions};
///
/// let r = Regions::new(&Profile::pops());
/// let a = r.lock_word(0);
/// let b = r.lock_word(1);
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct Regions {
    private_blocks: u64,
    shared_read_blocks: u64,
    object_blocks: u64,
    queue_blocks: u64,
    os_blocks: u64,
    code_blocks: u64,
}

impl Regions {
    /// Builds the layout for a profile.
    pub fn new(p: &Profile) -> Self {
        Regions {
            private_blocks: u64::from(p.private_blocks.max(1)),
            shared_read_blocks: u64::from(p.shared_read_blocks.max(1)),
            object_blocks: u64::from(p.object_blocks.max(1)),
            queue_blocks: u64::from(p.queue_blocks.max(1)),
            os_blocks: u64::from(p.os_blocks.max(1)),
            code_blocks: u64::from(p.code_blocks.max(1)),
        }
    }

    /// Address of instruction word `i` in process `pid`'s code region
    /// (wraps around the region).
    pub fn code(&self, pid: u16, i: u64) -> Address {
        let blk = i % self.code_blocks;
        Address::new(CODE_BASE + u64::from(pid) * CODE_STRIDE + blk * BLOCK)
    }

    /// Address of OS instruction word `i` (shared OS code region).
    pub fn os_code(&self, i: u64) -> Address {
        Address::new(OS_CODE_BASE + (i % self.code_blocks) * BLOCK)
    }

    /// Address inside process `pid`'s private data region.
    pub fn private(&self, pid: u16, block: u64, word: u64) -> Address {
        debug_assert!(block < self.private_blocks);
        Address::new(
            PRIVATE_BASE + u64::from(pid) * PRIVATE_STRIDE + block * BLOCK + (word % 4) * 4,
        )
    }

    /// Number of private blocks per process.
    pub fn private_blocks(&self) -> u64 {
        self.private_blocks
    }

    /// Address inside the shared read-only table.
    pub fn shared_read(&self, block: u64, word: u64) -> Address {
        debug_assert!(block < self.shared_read_blocks);
        Address::new(SHARED_RO_BASE + block * BLOCK + (word % 4) * 4)
    }

    /// Number of blocks in the shared read-only table.
    pub fn shared_read_blocks(&self) -> u64 {
        self.shared_read_blocks
    }

    /// Address inside lock `lock`'s protected object.
    pub fn object(&self, lock: u32, block: u64, word: u64) -> Address {
        debug_assert!(block < self.object_blocks);
        Address::new(OBJECT_BASE + u64::from(lock) * OBJECT_STRIDE + block * BLOCK + (word % 4) * 4)
    }

    /// Number of blocks per lock-protected object.
    pub fn object_blocks(&self) -> u64 {
        self.object_blocks
    }

    /// Address of lock `lock`'s lock word (one block per lock, so locks
    /// never falsely share).
    pub fn lock_word(&self, lock: u32) -> Address {
        Address::new(LOCK_BASE + u64::from(lock) * BLOCK)
    }

    /// Address of slot `slot` in queue `q`.
    pub fn queue_slot(&self, q: u32, slot: u64) -> Address {
        Address::new(QUEUE_BASE + u64::from(q) * QUEUE_STRIDE + (slot % self.queue_blocks) * BLOCK)
    }

    /// Number of blocks per queue.
    pub fn queue_blocks(&self) -> u64 {
        self.queue_blocks
    }

    /// Address inside the shared OS data region.
    pub fn os_data(&self, block: u64, word: u64) -> Address {
        debug_assert!(block < self.os_blocks);
        Address::new(OS_DATA_BASE + block * BLOCK + (word % 4) * 4)
    }

    /// Number of OS data blocks.
    pub fn os_blocks(&self) -> u64 {
        self.os_blocks
    }

    /// Address inside process `pid`'s private OS data (kernel stack,
    /// u-area): most OS references touch per-process structures.
    pub fn os_private(&self, pid: u16, block: u64, word: u64) -> Address {
        debug_assert!(block < self.os_blocks);
        Address::new(
            OS_PRIVATE_BASE + u64::from(pid) * OS_PRIVATE_STRIDE + block * BLOCK + (word % 4) * 4,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_types::BlockGeometry;

    fn regions() -> Regions {
        Regions::new(&Profile::pops())
    }

    #[test]
    fn regions_are_disjoint() {
        let r = regions();
        let g = BlockGeometry::PAPER;
        let addrs = [
            r.code(0, 0),
            r.code(63, 0),
            r.private(0, 0, 0),
            r.private(63, 0, 0),
            r.shared_read(0, 0),
            r.object(0, 0, 0),
            r.object(100, 0, 0),
            r.lock_word(0),
            r.lock_word(500),
            r.queue_slot(0, 0),
            r.os_data(0, 0),
            r.os_private(0, 0, 0),
            r.os_private(5, 0, 0),
            r.os_code(0),
        ];
        let blocks: Vec<u64> = addrs.iter().map(|a| g.block_of(*a).index()).collect();
        let mut dedup = blocks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), blocks.len(), "all sample addresses live in distinct blocks");
    }

    #[test]
    fn per_process_privates_do_not_overlap() {
        let r = regions();
        // largest block index of pid 0 < smallest of pid 1
        let last0 = r.private(0, r.private_blocks() - 1, 3).raw();
        let first1 = r.private(1, 0, 0).raw();
        assert!(last0 < first1);
    }

    #[test]
    fn code_wraps_within_region() {
        let r = regions();
        assert_eq!(r.code(2, 0), r.code(2, 256));
    }

    #[test]
    fn lock_words_are_block_aligned_and_distinct() {
        let r = regions();
        let g = BlockGeometry::PAPER;
        assert_ne!(g.block_of(r.lock_word(0)), g.block_of(r.lock_word(1)));
        assert_eq!(r.lock_word(3).raw() % 16, 0);
    }

    #[test]
    fn queue_slots_wrap() {
        let r = regions();
        assert_eq!(r.queue_slot(1, 0), r.queue_slot(1, r.queue_blocks()));
    }

    #[test]
    fn word_offsets_stay_in_block() {
        let r = regions();
        let g = BlockGeometry::PAPER;
        for w in 0..8 {
            assert_eq!(
                g.block_of(r.private(0, 5, w)),
                g.block_of(r.private(0, 5, 0)),
                "word {w} must stay in block"
            );
        }
    }
}

//! Per-process activity state machines and shared workload state.
//!
//! Each synthetic process cycles through phases — private compute, lock
//! acquire / critical section / release, shared read-only scans, producer/
//! consumer exchanges and OS bursts — emitting a queue of references that
//! the scheduler drains one at a time. Lock state is global: a process
//! whose lock is held emits spin reads (the §4.4 test-and-test-and-set
//! "first test") until the holder's release is observed.

use super::regions::Regions;
use super::Profile;
use crate::record::RecordFlags;
use dircc_types::AccessKind;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Samples a geometric length with the given mean (≥ 1).
pub(crate) fn sample_len(rng: &mut SmallRng, mean: f64) -> u32 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let len = (u.ln() / (1.0 - p).ln()).floor();
    (len as u32).saturating_add(1).min(100_000)
}

/// One spin lock's global state.
#[derive(Debug, Clone, Default)]
pub(crate) struct LockState {
    /// Holding process index, if any.
    pub held_by: Option<u16>,
}

/// Workload state shared across all processes.
#[derive(Debug, Clone)]
pub(crate) struct SharedState {
    pub locks: Vec<LockState>,
    /// Monotonic produced-slot cursor per queue.
    pub queue_cursor: Vec<u64>,
}

impl SharedState {
    pub fn new(p: &Profile) -> Self {
        SharedState {
            locks: vec![LockState::default(); p.lock_count as usize],
            queue_cursor: vec![0; p.queue_count as usize],
        }
    }
}

/// A reference waiting to be emitted (everything but CPU, which the
/// scheduler supplies).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRef {
    pub kind: AccessKind,
    pub addr: dircc_types::Address,
    pub flags: RecordFlags,
}

#[derive(Debug, Clone, Copy)]
enum Activity {
    Idle,
    Private { remaining: u32 },
    Acquire { lock: u32 },
    Critical { lock: u32, remaining: u32 },
    SharedRead { remaining: u32 },
    ProdCons { queue: u32, remaining: u32, produce: bool },
    Syscall { remaining: u32 },
}

/// One synthetic process.
#[derive(Debug)]
pub(crate) struct ProcessState {
    pid: u16,
    activity: Activity,
    pending: VecDeque<PendingRef>,
    code_pc: u64,
    os_pc: u64,
}

impl ProcessState {
    pub fn new(pid: u16) -> Self {
        ProcessState {
            pid,
            activity: Activity::Idle,
            pending: VecDeque::with_capacity(8),
            // Stagger instruction pointers so processes don't fetch in
            // lockstep from identical code offsets.
            code_pc: u64::from(pid) * 17,
            os_pc: u64::from(pid) * 29,
        }
    }

    /// Emits the next reference, advancing the activity machine as needed.
    pub fn emit(
        &mut self,
        shared: &mut SharedState,
        rng: &mut SmallRng,
        p: &Profile,
        regions: &Regions,
    ) -> PendingRef {
        while self.pending.is_empty() {
            self.step(shared, rng, p, regions);
        }
        self.pending.pop_front().expect("pending refilled")
    }

    fn push(&mut self, kind: AccessKind, addr: dircc_types::Address, flags: RecordFlags) {
        self.pending.push_back(PendingRef { kind, addr, flags });
    }

    /// Pushes the instruction fetch that precedes a data reference, unless
    /// the profile's `extra_data_prob` skip fires (fine-tuning the global
    /// instruction fraction below 50%).
    fn push_instr(&mut self, rng: &mut SmallRng, p: &Profile, regions: &Regions, sys: bool) {
        if rng.gen::<f64>() < p.extra_data_prob {
            return;
        }
        if sys {
            let a = regions.os_code(self.os_pc);
            self.os_pc += 1;
            self.push(AccessKind::InstrFetch, a, RecordFlags::SYSTEM);
        } else {
            let a = regions.code(self.pid, self.code_pc);
            self.code_pc += 1;
            self.push(AccessKind::InstrFetch, a, RecordFlags::NONE);
        }
    }

    fn choose_next(&mut self, rng: &mut SmallRng, p: &Profile) {
        let lock_w = if p.lock_count == 0 { 0 } else { p.weight_lock };
        let pc_w = if p.queue_count == 0 { 0 } else { p.weight_prodcons };
        let weights = [p.weight_private, lock_w, p.weight_shared_read, pc_w, p.weight_syscall];
        let total: u32 = weights.iter().sum();
        let mut pick = if total == 0 { 0 } else { rng.gen_range(0..total) };
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
        }
        self.activity = match idx {
            1 => Activity::Acquire { lock: rng.gen_range(0..p.lock_count) },
            2 => Activity::SharedRead { remaining: sample_len(rng, p.shared_read_iters_mean) },
            3 => Activity::ProdCons {
                // Queues are pid-affine (one producer and one consumer per
                // queue), like a real pipeline.
                queue: u32::from(self.pid / 2) % p.queue_count,
                remaining: sample_len(rng, p.prodcons_iters_mean),
                produce: self.pid.is_multiple_of(2),
            },
            4 => Activity::Syscall { remaining: sample_len(rng, p.syscall_iters_mean) },
            _ => Activity::Private { remaining: sample_len(rng, p.private_iters_mean) },
        };
    }

    /// Runs one phase iteration, pushing at least one reference unless the
    /// process is choosing its next phase (which always terminates into a
    /// pushing state on the following call).
    fn step(&mut self, shared: &mut SharedState, rng: &mut SmallRng, p: &Profile, r: &Regions) {
        match self.activity {
            Activity::Idle => self.choose_next(rng, p),
            Activity::Private { remaining } => {
                self.push_instr(rng, p, r, false);
                let block = rng.gen_range(0..r.private_blocks());
                let word = rng.gen_range(0..4u64);
                let kind = if rng.gen::<f64>() < p.private_write_frac {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.push(kind, r.private(self.pid, block, word), RecordFlags::NONE);
                self.activity = if remaining <= 1 {
                    Activity::Idle
                } else {
                    Activity::Private { remaining: remaining - 1 }
                };
            }
            Activity::Acquire { lock } => {
                let lockstate = &mut shared.locks[lock as usize];
                self.push_instr(rng, p, r, false);
                // The "first test": always a read of the lock word.
                self.push(AccessKind::Read, r.lock_word(lock), RecordFlags::LOCK);
                if lockstate.held_by.is_none() {
                    // Free: test-and-set succeeds.
                    lockstate.held_by = Some(self.pid);
                    self.push_instr(rng, p, r, false);
                    self.push(AccessKind::Write, r.lock_word(lock), RecordFlags::LOCK);
                    self.activity = Activity::Critical {
                        lock,
                        remaining: sample_len(rng, p.critical_iters_mean),
                    };
                }
                // Held: that read was one spin iteration; stay in Acquire.
            }
            Activity::Critical { lock, remaining } => {
                self.push_instr(rng, p, r, false);
                let block = rng.gen_range(0..r.object_blocks());
                let word = rng.gen_range(0..4u64);
                // Read-modify-write on the protected object: the write hits
                // a block that is clean in this cache (the Dir0B
                // `wh-blk-cln` event) whenever another process read it since
                // our last write.
                self.push(AccessKind::Read, r.object(lock, block, word), RecordFlags::NONE);
                if rng.gen::<f64>() < p.critical_write_frac {
                    self.push_instr(rng, p, r, false);
                    self.push(AccessKind::Write, r.object(lock, block, word), RecordFlags::NONE);
                }
                if remaining <= 1 {
                    // Release: a write to the lock word.
                    self.push_instr(rng, p, r, false);
                    self.push(AccessKind::Write, r.lock_word(lock), RecordFlags::LOCK);
                    shared.locks[lock as usize].held_by = None;
                    self.activity = Activity::Idle;
                } else {
                    self.activity = Activity::Critical { lock, remaining: remaining - 1 };
                }
            }
            Activity::SharedRead { remaining } => {
                self.push_instr(rng, p, r, false);
                let block = rng.gen_range(0..r.shared_read_blocks());
                let word = rng.gen_range(0..4u64);
                self.push(AccessKind::Read, r.shared_read(block, word), RecordFlags::NONE);
                self.activity = if remaining <= 1 {
                    Activity::Idle
                } else {
                    Activity::SharedRead { remaining: remaining - 1 }
                };
            }
            Activity::ProdCons { queue, remaining, produce } => {
                self.push_instr(rng, p, r, false);
                let cursor = &mut shared.queue_cursor[queue as usize];
                if produce {
                    let slot = *cursor;
                    *cursor += 1;
                    self.push(AccessKind::Write, r.queue_slot(queue, slot), RecordFlags::NONE);
                } else {
                    // Read a recently produced slot (one behind the cursor).
                    let slot = cursor.saturating_sub(1);
                    self.push(AccessKind::Read, r.queue_slot(queue, slot), RecordFlags::NONE);
                }
                self.activity = if remaining <= 1 {
                    Activity::Idle
                } else {
                    Activity::ProdCons { queue, remaining: remaining - 1, produce }
                };
            }
            Activity::Syscall { remaining } => {
                self.push_instr(rng, p, r, true);
                let block = rng.gen_range(0..r.os_blocks());
                let word = rng.gen_range(0..4u64);
                // Most OS references touch per-process structures (kernel
                // stacks, u-areas); only a fraction hit shared OS data,
                // which is mostly read (system tables).
                let (addr, write_frac) = if rng.gen::<f64>() < p.os_shared_frac {
                    (r.os_data(block, word), p.os_write_frac * 0.25)
                } else {
                    (r.os_private(self.pid, block, word), p.os_write_frac)
                };
                let kind = if rng.gen::<f64>() < write_frac {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.push(kind, addr, RecordFlags::SYSTEM);
                self.activity = if remaining <= 1 {
                    Activity::Idle
                } else {
                    Activity::Syscall { remaining: remaining - 1 }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (Profile, Regions, SharedState, SmallRng) {
        let p = Profile::pops().with_total_refs(1000);
        let r = Regions::new(&p);
        let s = SharedState::new(&p);
        (p, r, s, SmallRng::seed_from_u64(1))
    }

    #[test]
    fn sample_len_is_positive_and_roughly_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| u64::from(sample_len(&mut rng, 10.0))).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean {mean} far from 10");
        assert_eq!(sample_len(&mut rng, 1.0), 1);
        assert_eq!(sample_len(&mut rng, 0.5), 1);
    }

    #[test]
    fn emit_always_produces() {
        let (p, r, mut s, mut rng) = setup();
        let mut proc = ProcessState::new(0);
        for _ in 0..5_000 {
            let _ = proc.emit(&mut s, &mut rng, &p, &r);
        }
    }

    #[test]
    fn held_lock_generates_spins_until_release() {
        let (p, r, mut s, mut rng) = setup();
        // Process 1 holds lock 0.
        s.locks[0].held_by = Some(1);
        let mut proc = ProcessState::new(0);
        proc.activity = Activity::Acquire { lock: 0 };
        let mut spins = 0;
        for _ in 0..50 {
            let pr = proc.emit(&mut s, &mut rng, &p, &r);
            if pr.kind == AccessKind::Read && pr.flags.is_lock() {
                spins += 1;
            }
            assert!(
                pr.kind != AccessKind::Write || !pr.flags.is_lock(),
                "must not test-and-set while held"
            );
        }
        assert!(spins >= 20, "expected sustained spinning, saw {spins}");
        // Release: the next lock access must be able to acquire.
        s.locks[0].held_by = None;
        let mut acquired = false;
        for _ in 0..10 {
            let pr = proc.emit(&mut s, &mut rng, &p, &r);
            if pr.kind == AccessKind::Write && pr.flags.is_lock() {
                acquired = true;
                break;
            }
        }
        assert!(acquired, "lock should be acquired after release");
        assert_eq!(s.locks[0].held_by, Some(0));
    }

    #[test]
    fn critical_section_releases_lock() {
        let (p, r, mut s, mut rng) = setup();
        let mut proc = ProcessState::new(2);
        proc.activity = Activity::Critical { lock: 1, remaining: 3 };
        s.locks[1].held_by = Some(2);
        // Drain until the release write appears.
        let mut released = false;
        for _ in 0..100 {
            let pr = proc.emit(&mut s, &mut rng, &p, &r);
            if pr.kind == AccessKind::Write && pr.flags.is_lock() {
                released = true;
                break;
            }
        }
        assert!(released);
        assert_eq!(s.locks[1].held_by, None);
    }

    #[test]
    fn syscall_refs_are_flagged_system() {
        let (p, r, mut s, mut rng) = setup();
        let mut proc = ProcessState::new(0);
        proc.activity = Activity::Syscall { remaining: 5 };
        for _ in 0..8 {
            let pr = proc.emit(&mut s, &mut rng, &p, &r);
            if matches!(proc.activity, Activity::Syscall { .. }) {
                assert!(pr.flags.is_system(), "syscall refs carry SYSTEM flag");
            }
        }
    }

    #[test]
    fn producer_and_consumer_touch_same_queue() {
        let (p, r, mut s, mut rng) = setup();
        let mut producer = ProcessState::new(0);
        producer.activity = Activity::ProdCons { queue: 0, remaining: 4, produce: true };
        let mut writes = Vec::new();
        for _ in 0..10 {
            let pr = producer.emit(&mut s, &mut rng, &p, &r);
            if pr.kind == AccessKind::Write {
                writes.push(pr.addr);
            }
        }
        assert!(!writes.is_empty());
        assert!(s.queue_cursor[0] > 0, "producer advanced the cursor");

        let mut consumer = ProcessState::new(1);
        consumer.activity = Activity::ProdCons { queue: 0, remaining: 4, produce: false };
        let mut read_any = false;
        for _ in 0..10 {
            let pr = consumer.emit(&mut s, &mut rng, &p, &r);
            if pr.kind == AccessKind::Read && writes.contains(&pr.addr) {
                read_any = true;
            }
        }
        assert!(read_any, "consumer reads recently produced slots");
    }
}

//! Synthetic multiprocessor workload generation.
//!
//! The paper drove its simulations with ATUM address traces of three real
//! parallel programs on a 4-CPU VAX 8350 under MACH:
//!
//! * **POPS** — a parallel OPS5 rule-based-language implementation,
//! * **THOR** — a parallel logic simulator,
//! * **PERO** — a parallel VLSI router.
//!
//! Those traces are unavailable, so this module generates the closest
//! synthetic equivalent: interleaved per-CPU reference streams produced by a
//! small model of parallel processes that compute privately, contend for
//! test-and-test-and-set spin locks, mutate lock-protected (migratory)
//! objects, read shared read-only tables, pass data through producer/
//! consumer queues, and occasionally trap into a shared operating system.
//! Every statistic the paper's results depend on is an explicit calibrated
//! knob of [`Profile`]:
//!
//! * ≈49.7% instruction fetches, ≈39.8% reads, ≈10.5% writes (Table 3/4);
//! * lock spins ≈⅓ of data reads for POPS/THOR (§4.4), far fewer for PERO;
//! * ≈10% operating-system references (§4.4);
//! * a small distinct-block working set so first-reference misses are a
//!   fraction of a percent of references (Table 4);
//! * single-digit sharer counts at invalidation time (Figure 1);
//! * rare process migration (§4.4: sharing is classified per process).
//!
//! [`patterns`] additionally provides tiny deterministic sharing kernels
//! (ping-pong, migratory, read-only sharing, producer/consumer…) used
//! throughout the workspace's unit tests, where exact event counts must be
//! predictable.

mod generator;
pub mod patterns;
mod process;
mod profile;
mod regions;

pub use generator::Generator;
pub use profile::{Profile, ProfileName};
pub use regions::Regions;

use crate::TraceRecord;

/// Generates a complete trace into memory.
///
/// Convenience for tests and small experiments; large traces should stream
/// through [`Generator`]'s iterator instead.
///
/// ```
/// use dircc_trace::gen::{generate, Profile};
///
/// let trace = generate(Profile::pero().with_total_refs(5_000), 7);
/// assert_eq!(trace.len(), 5_000);
/// ```
pub fn generate(profile: Profile, seed: u64) -> Vec<TraceRecord> {
    Generator::new(profile, seed).collect()
}

//! The trace generator: schedules processes onto CPUs and interleaves
//! their reference streams.

use super::process::{sample_len, ProcessState, SharedState};
use super::regions::Regions;
use super::Profile;
use crate::record::TraceRecord;
use dircc_types::{CpuId, ProcessId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Streaming synthetic-trace generator.
///
/// `Generator` is an [`Iterator`] over [`TraceRecord`]s; it produces exactly
/// `profile.total_refs` records, deterministically for a given
/// `(profile, seed)` pair.
///
/// Scheduling model: CPUs take turns in round-robin order, each contributing
/// a geometrically-distributed burst of consecutive references (mean
/// `quantum_mean`). At burst boundaries a context switch may rotate in a
/// ready process (when `processes > cpus`) and, rarely, a process may
/// migrate between CPUs (the paper's traces showed only a few instances of
/// migration, and the study deliberately classifies sharing per process).
///
/// ```
/// use dircc_trace::gen::{Generator, Profile};
///
/// let profile = Profile::thor().with_total_refs(1_000);
/// let a: Vec<_> = Generator::new(profile.clone(), 3).collect();
/// let b: Vec<_> = Generator::new(profile, 3).collect();
/// assert_eq!(a, b, "generation is deterministic in (profile, seed)");
/// ```
#[derive(Debug)]
pub struct Generator {
    profile: Profile,
    regions: Regions,
    rng: SmallRng,
    shared: SharedState,
    procs: Vec<ProcessState>,
    /// Process index running on each CPU.
    on_cpu: Vec<u16>,
    /// Ready (descheduled) processes, FIFO so nothing starves.
    ready: VecDeque<u16>,
    cur_cpu: u16,
    burst_left: u32,
    emitted: u64,
}

impl Generator {
    /// Creates a generator for a profile with a deterministic seed.
    pub fn new(profile: Profile, seed: u64) -> Self {
        let regions = Regions::new(&profile);
        let shared = SharedState::new(&profile);
        let procs: Vec<ProcessState> = (0..profile.processes).map(ProcessState::new).collect();
        let on_cpu: Vec<u16> = (0..profile.cpus).collect();
        let ready: VecDeque<u16> = (profile.cpus..profile.processes).collect();
        Generator {
            rng: SmallRng::seed_from_u64(seed),
            regions,
            shared,
            procs,
            on_cpu,
            ready,
            cur_cpu: 0,
            burst_left: 0,
            profile,
            emitted: 0,
        }
    }

    /// Returns the profile this generator runs.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Returns how many references have been emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Handles a burst boundary: advance round-robin, sample the next burst
    /// length, and apply context switches / migrations.
    fn next_burst(&mut self) {
        self.cur_cpu = (self.cur_cpu + 1) % self.profile.cpus;
        self.burst_left = sample_len(&mut self.rng, self.profile.quantum_mean);

        // Context switch: rotate the CPU's process with the ready queue.
        if !self.ready.is_empty() && self.rng.gen::<f64>() < self.profile.ctx_switch_prob {
            let incoming = self.ready.pop_front().expect("ready nonempty");
            let outgoing = std::mem::replace(&mut self.on_cpu[self.cur_cpu as usize], incoming);
            self.ready.push_back(outgoing);
        }

        // Migration: swap the processes of two CPUs (keeps every process
        // scheduled; the trace shows the process continuing on a new CPU).
        if self.profile.cpus > 1 && self.rng.gen::<f64>() < self.profile.migration_prob {
            let other = self.rng.gen_range(0..self.profile.cpus);
            if other != self.cur_cpu {
                self.on_cpu.swap(self.cur_cpu as usize, other as usize);
            }
        }
    }
}

impl Iterator for Generator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.emitted >= self.profile.total_refs {
            return None;
        }
        if self.burst_left == 0 {
            self.next_burst();
        }
        let pidx = self.on_cpu[self.cur_cpu as usize];
        let pending = self.procs[pidx as usize].emit(
            &mut self.shared,
            &mut self.rng,
            &self.profile,
            &self.regions,
        );
        self.burst_left -= 1;
        self.emitted += 1;
        Some(TraceRecord {
            cpu: CpuId::new(self.cur_cpu),
            pid: ProcessId::new(pidx),
            kind: pending.kind,
            addr: pending.addr,
            flags: pending.flags,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.profile.total_refs - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Generator {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn emits_exact_count() {
        let g = Generator::new(Profile::pops().with_total_refs(12_345), 1);
        assert_eq!(g.count(), 12_345);
    }

    #[test]
    fn cpu_ids_stay_in_range() {
        let p = Profile::thor().with_total_refs(5_000);
        for r in Generator::new(p, 2) {
            assert!(r.cpu.raw() < 4);
            assert!(r.pid.raw() < 4);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = Profile::pops().with_total_refs(2_000);
        let a: Vec<_> = Generator::new(p.clone(), 1).collect();
        let b: Vec<_> = Generator::new(p, 2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn more_processes_than_cpus_all_run() {
        let p = Profile::custom().with_cpus(2).with_processes(5).with_total_refs(60_000);
        let mut seen = std::collections::HashSet::new();
        for r in Generator::new(p, 3) {
            seen.insert(r.pid);
        }
        assert_eq!(seen.len(), 5, "every process must eventually be scheduled");
    }

    #[test]
    fn migration_changes_cpu_of_a_process() {
        let p = Profile::custom().with_migration_prob(0.2).with_total_refs(50_000);
        let mut cpus_of_p0 = std::collections::HashSet::new();
        for r in Generator::new(p, 4) {
            if r.pid.raw() == 0 {
                cpus_of_p0.insert(r.cpu);
            }
        }
        assert!(cpus_of_p0.len() > 1, "process 0 should migrate at 20% probability");
    }

    #[test]
    fn zero_migration_keeps_processes_home_when_one_to_one() {
        let p = Profile::custom().with_migration_prob(0.0).with_total_refs(20_000);
        // With processes == cpus and no migration, pid i always runs on cpu i.
        for r in Generator::new(p, 5) {
            assert_eq!(r.cpu.raw(), r.pid.raw());
        }
    }

    #[test]
    fn reference_mix_is_calibrated() {
        // The headline Table 3/4 shape targets, with generous tolerances.
        for profile in [Profile::pops(), Profile::thor()] {
            let name = profile.name;
            let stats: TraceStats = Generator::new(profile.with_total_refs(400_000), 11).collect();
            let instr = stats.instr_fraction();
            assert!((0.45..=0.53).contains(&instr), "{name}: instr fraction {instr}");
            let w = stats.write_fraction();
            assert!((0.06..=0.15).contains(&w), "{name}: write fraction {w}");
            let spin = stats.spin_fraction_of_reads();
            assert!((0.15..=0.50).contains(&spin), "{name}: spin fraction {spin}");
            let sys = stats.system_fraction();
            assert!((0.04..=0.20).contains(&sys), "{name}: system fraction {sys}");
        }
    }

    #[test]
    fn pero_has_little_spinning() {
        let stats: TraceStats =
            Generator::new(Profile::pero().with_total_refs(400_000), 11).collect();
        assert!(
            stats.spin_fraction_of_reads() < 0.10,
            "PERO spins {}",
            stats.spin_fraction_of_reads()
        );
    }

    #[test]
    fn size_hint_is_exact() {
        let mut g = Generator::new(Profile::pero().with_total_refs(10), 0);
        assert_eq!(g.size_hint(), (10, Some(10)));
        g.next();
        assert_eq!(g.size_hint(), (9, Some(9)));
        assert_eq!(g.len(), 9);
    }
}

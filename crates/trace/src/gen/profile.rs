//! Workload profiles: the calibrated parameter sets.

use core::fmt;

/// Which paper trace a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileName {
    /// Parallel OPS5 rule system: heavy lock spinning, moderate sharing.
    Pops,
    /// Parallel logic simulator: heavy lock spinning, more writes.
    Thor,
    /// Parallel VLSI router: high read ratio, little sharing.
    Pero,
    /// A custom parameter set.
    Custom,
}

impl fmt::Display for ProfileName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProfileName::Pops => "POPS",
            ProfileName::Thor => "THOR",
            ProfileName::Pero => "PERO",
            ProfileName::Custom => "CUSTOM",
        };
        f.write_str(s)
    }
}

/// The full parameter set of a synthetic workload.
///
/// Construct via [`Profile::pops`], [`Profile::thor`], [`Profile::pero`]
/// or [`Profile::custom`], then adjust with the `with_*` methods
/// (consuming-builder style).
///
/// ```
/// use dircc_trace::gen::Profile;
///
/// let p = Profile::pops().with_total_refs(100_000).with_cpus(8);
/// assert_eq!(p.cpus, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Which trace this models.
    pub name: ProfileName,
    /// Number of CPUs (= hardware caches). The paper's traces had 4.
    pub cpus: u16,
    /// Number of application processes (≥ `cpus`; extras time-share).
    pub processes: u16,
    /// Total references to generate.
    pub total_refs: u64,
    /// Probability that an activity iteration emits a data reference
    /// *without* a paired instruction fetch (fine-tunes the ≈49.7% instr
    /// fraction; the base pattern is one instr per data reference).
    pub extra_data_prob: f64,
    /// Mean scheduling-burst length in references (how many consecutive
    /// references one CPU contributes before interleaving switches away).
    pub quantum_mean: f64,
    /// Probability per quantum boundary of a context switch when more
    /// processes than CPUs exist.
    pub ctx_switch_prob: f64,
    /// Probability per quantum boundary of migrating the current process to
    /// another CPU (the paper observed only a few instances).
    pub migration_prob: f64,
    /// Relative weight of private-compute phases.
    pub weight_private: u32,
    /// Relative weight of lock/critical-section phases.
    pub weight_lock: u32,
    /// Relative weight of shared read-only phases.
    pub weight_shared_read: u32,
    /// Relative weight of producer/consumer phases.
    pub weight_prodcons: u32,
    /// Relative weight of operating-system bursts (flagged SYSTEM).
    pub weight_syscall: u32,
    /// Mean iterations of a private-compute phase.
    pub private_iters_mean: f64,
    /// Fraction of private data references that are writes.
    pub private_write_frac: f64,
    /// Private data blocks per process.
    pub private_blocks: u32,
    /// Number of spin locks in the system.
    pub lock_count: u32,
    /// Mean iterations (read+write pairs) of a critical section.
    pub critical_iters_mean: f64,
    /// Blocks in each lock-protected (migratory) object.
    pub object_blocks: u32,
    /// Fraction of critical-section data references that are writes.
    pub critical_write_frac: f64,
    /// Mean iterations of a shared read-only phase.
    pub shared_read_iters_mean: f64,
    /// Blocks in the shared read-only table.
    pub shared_read_blocks: u32,
    /// Number of producer/consumer queues.
    pub queue_count: u32,
    /// Blocks per queue.
    pub queue_blocks: u32,
    /// Mean iterations of a producer/consumer phase.
    pub prodcons_iters_mean: f64,
    /// Mean iterations of an OS burst.
    pub syscall_iters_mean: f64,
    /// Blocks of shared OS data.
    pub os_blocks: u32,
    /// Fraction of OS data references that are writes.
    pub os_write_frac: f64,
    /// Fraction of OS data references that touch the *shared* OS region
    /// (the rest go to per-process kernel structures).
    pub os_shared_frac: f64,
    /// Instruction blocks per process code region.
    pub code_blocks: u32,
}

impl Profile {
    /// Baseline parameters shared by all profiles (4 CPUs, paper scale).
    fn base(name: ProfileName) -> Self {
        Profile {
            name,
            cpus: 4,
            processes: 4,
            total_refs: 3_200_000,
            extra_data_prob: 0.011,
            quantum_mean: 4.0,
            ctx_switch_prob: 0.02,
            migration_prob: 0.000002,
            weight_private: 10,
            weight_lock: 3,
            weight_shared_read: 2,
            weight_prodcons: 1,
            weight_syscall: 3,
            private_iters_mean: 40.0,
            private_write_frac: 0.26,
            private_blocks: 2200,
            lock_count: 2,
            critical_iters_mean: 110.0,
            object_blocks: 2,
            critical_write_frac: 0.10,
            shared_read_iters_mean: 20.0,
            shared_read_blocks: 1000,
            queue_count: 2,
            queue_blocks: 32,
            prodcons_iters_mean: 12.0,
            syscall_iters_mean: 35.0,
            os_blocks: 500,
            os_write_frac: 0.20,
            os_shared_frac: 0.15,
            code_blocks: 256,
        }
    }

    /// POPS-like workload: rule-based system, heavy lock contention (≈⅓ of
    /// reads are spins), read-to-write ratio ≈4.8.
    pub fn pops() -> Self {
        Profile {
            weight_lock: 4,
            weight_private: 8,
            weight_shared_read: 2,
            private_write_frac: 0.46,
            critical_iters_mean: 120.0,
            ..Self::base(ProfileName::Pops)
        }
    }

    /// THOR-like workload: logic simulator, heavy spinning, read-to-write
    /// ratio ≈3.8 (more writes than POPS).
    pub fn thor() -> Self {
        Profile {
            weight_lock: 4,
            weight_private: 8,
            weight_prodcons: 2,
            private_write_frac: 0.55,
            critical_write_frac: 0.13,
            ..Self::base(ProfileName::Thor)
        }
    }

    /// PERO-like workload: VLSI router, high read ratio from the algorithm
    /// (≈3.1) and a much smaller fraction of shared references.
    pub fn pero() -> Self {
        Profile {
            weight_lock: 1,
            weight_private: 24,
            weight_shared_read: 6,
            weight_prodcons: 0,
            private_write_frac: 0.28,
            private_blocks: 3200,
            shared_read_blocks: 2000,
            critical_iters_mean: 30.0,
            total_refs: 3_500_000,
            ..Self::base(ProfileName::Pero)
        }
    }

    /// A neutral custom profile (same as the internal baseline) for
    /// experiments that sweep individual knobs.
    pub fn custom() -> Self {
        Self::base(ProfileName::Custom)
    }

    /// The three paper profiles, in Table 3 order.
    pub fn paper_suite() -> Vec<Profile> {
        vec![Profile::pops(), Profile::thor(), Profile::pero()]
    }

    /// Sets the total reference count, scaling the data-pool sizes
    /// proportionally so the working-set-to-trace-length ratio (and hence
    /// the first-reference miss fraction and steady-state sharing
    /// behaviour) stays at the paper's calibration regardless of scale.
    #[must_use]
    pub fn with_total_refs(mut self, n: u64) -> Self {
        let factor = n as f64 / self.total_refs as f64;
        let scale =
            |blocks: u32, min: u32| -> u32 { ((blocks as f64 * factor).round() as u32).max(min) };
        self.private_blocks = scale(self.private_blocks, 64);
        self.shared_read_blocks = scale(self.shared_read_blocks, 32);
        self.os_blocks = scale(self.os_blocks, 16);
        self.total_refs = n;
        self
    }

    /// Sets the CPU count (processes are raised to match if fewer).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is 0 or exceeds 64 (the `CacheIdSet` width).
    #[must_use]
    pub fn with_cpus(mut self, cpus: u16) -> Self {
        assert!((1..=64).contains(&cpus), "cpus must be in 1..=64");
        self.cpus = cpus;
        if self.processes < cpus {
            self.processes = cpus;
        }
        self
    }

    /// Sets the process count.
    ///
    /// # Panics
    ///
    /// Panics if `processes < self.cpus`.
    #[must_use]
    pub fn with_processes(mut self, processes: u16) -> Self {
        assert!(processes >= self.cpus, "need at least one process per cpu");
        self.processes = processes;
        self
    }

    /// Sets the number of spin locks.
    #[must_use]
    pub fn with_lock_count(mut self, locks: u32) -> Self {
        self.lock_count = locks;
        self
    }

    /// Scales the lock-phase weight, the main contention knob.
    #[must_use]
    pub fn with_lock_weight(mut self, weight: u32) -> Self {
        self.weight_lock = weight;
        self
    }

    /// Sets the migration probability per quantum boundary.
    #[must_use]
    pub fn with_migration_prob(mut self, p: f64) -> Self {
        self.migration_prob = p;
        self
    }

    /// Sets the mean scheduling burst length.
    ///
    /// # Panics
    ///
    /// Panics unless `quantum_mean >= 1.0`.
    #[must_use]
    pub fn with_quantum_mean(mut self, q: f64) -> Self {
        assert!(q >= 1.0, "quantum mean must be >= 1");
        self.quantum_mean = q;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_three_profiles() {
        let suite = Profile::paper_suite();
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[0].name, ProfileName::Pops);
        assert_eq!(suite[1].name, ProfileName::Thor);
        assert_eq!(suite[2].name, ProfileName::Pero);
        for p in &suite {
            assert_eq!(p.cpus, 4, "the paper's machine had 4 CPUs");
            assert!(p.total_refs >= 3_000_000, "paper traces were ~3.1-3.5M refs");
        }
    }

    #[test]
    fn pero_is_less_contended_than_pops() {
        assert!(Profile::pero().weight_lock < Profile::pops().weight_lock);
    }

    #[test]
    fn builders_adjust() {
        let p = Profile::custom().with_cpus(8).with_total_refs(10).with_lock_count(5);
        assert_eq!(p.cpus, 8);
        assert_eq!(p.processes, 8, "processes raised to cpus");
        assert_eq!(p.total_refs, 10);
        assert_eq!(p.lock_count, 5);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_cpus_rejected() {
        let _ = Profile::custom().with_cpus(0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn fewer_processes_than_cpus_rejected() {
        let _ = Profile::custom().with_cpus(4).with_processes(2);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProfileName::Pops.to_string(), "POPS");
        assert_eq!(ProfileName::Custom.to_string(), "CUSTOM");
    }
}

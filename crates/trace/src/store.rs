//! The shared trace store: generate once, replay by slice.
//!
//! The paper's methodology is one simulation run per (protocol, trace)
//! pair, re-priced under any hardware model. That makes the experiment
//! matrix embarrassingly parallel — but only if the trace itself is not
//! regenerated for every run. [`TraceStore`] materializes each
//! (trace, filter) record stream exactly once into an
//! `Arc<[TraceRecord]>` and hands out cheap slices; concurrent requests
//! for the same stream block on a [`OnceLock`] instead of duplicating
//! generator work.
//!
//! The filtered stream ([`TraceFilter::ExcludeLockSpins`]) is derived from
//! the full stream rather than re-running the generator, so the generator
//! executes at most once per trace per process — observable through
//! [`TraceStore::generations`], which tests use to pin the
//! "generated exactly once" guarantee.

use crate::filter::exclude_lock_spins;
use crate::gen::{Generator, Profile};
use crate::record::TraceRecord;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Trace preprocessing applied before replay.
///
/// Lives next to the store so every layer (trace store, workbench, CLI)
/// shares one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFilter {
    /// The full trace.
    Full,
    /// Lock-test reads removed (the §5.2 experiment).
    ExcludeLockSpins,
}

impl TraceFilter {
    /// All filters, in stable (paper) order.
    pub const ALL: [TraceFilter; 2] = [TraceFilter::Full, TraceFilter::ExcludeLockSpins];

    fn slot(self) -> usize {
        match self {
            TraceFilter::Full => 0,
            TraceFilter::ExcludeLockSpins => 1,
        }
    }
}

/// One trace's lazily-materialized streams, one slot per filter.
#[derive(Debug, Default)]
struct TraceSlot {
    streams: [OnceLock<Arc<[TraceRecord]>>; 2],
}

/// Thread-safe, generate-once storage for the synthetic trace suite.
///
/// ```
/// use dircc_trace::gen::Profile;
/// use dircc_trace::store::{TraceFilter, TraceStore};
///
/// let store = TraceStore::new(vec![Profile::pero().with_total_refs(1_000)], 7);
/// let a = store.records(0, TraceFilter::Full);
/// let b = store.records(0, TraceFilter::Full);
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second call reuses the slice");
/// assert_eq!(store.generations(), 1);
/// ```
#[derive(Debug)]
pub struct TraceStore {
    profiles: Vec<Profile>,
    seed: u64,
    slots: Vec<TraceSlot>,
    /// Number of generator executions (not stream requests).
    generations: AtomicU64,
}

impl TraceStore {
    /// Creates a store over `profiles`, generating with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(profiles: Vec<Profile>, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "need at least one trace profile");
        let slots = profiles.iter().map(|_| TraceSlot::default()).collect();
        TraceStore { profiles, seed, slots, generations: AtomicU64::new(0) }
    }

    /// The profiles this store generates.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of traces.
    pub fn num_traces(&self) -> usize {
        self.profiles.len()
    }

    /// The materialized record stream of one (trace, filter) pair.
    ///
    /// The first call per pair generates (or derives) the stream; later
    /// calls — from any thread — return the same shared slice.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn records(&self, trace: usize, filter: TraceFilter) -> Arc<[TraceRecord]> {
        let slot = &self.slots[trace];
        slot.streams[filter.slot()]
            .get_or_init(|| match filter {
                TraceFilter::Full => {
                    self.generations.fetch_add(1, Ordering::Relaxed);
                    Generator::new(self.profiles[trace].clone(), self.seed).collect()
                }
                TraceFilter::ExcludeLockSpins => {
                    // Derived from the full stream: no second generator run.
                    let full = self.records(trace, TraceFilter::Full);
                    exclude_lock_spins(full.iter().copied()).collect()
                }
            })
            .clone()
    }

    /// How many times a generator actually executed (for the
    /// generated-exactly-once guarantee; filters don't count).
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TraceStore {
        TraceStore::new(
            vec![Profile::pops().with_total_refs(5_000), Profile::thor().with_total_refs(5_000)],
            3,
        )
    }

    #[test]
    fn streams_are_shared_not_regenerated() {
        let s = store();
        let a = s.records(0, TraceFilter::Full);
        let b = s.records(0, TraceFilter::Full);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(s.generations(), 1);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn filtered_stream_derives_from_full_without_regenerating() {
        let s = store();
        let filtered = s.records(1, TraceFilter::ExcludeLockSpins);
        let full = s.records(1, TraceFilter::Full);
        assert_eq!(s.generations(), 1, "filter must not re-run the generator");
        assert!(filtered.len() < full.len(), "THOR has spins to drop");
        assert!(filtered.iter().all(|r| !r.is_lock_spin()));
    }

    #[test]
    fn concurrent_requests_generate_once() {
        let s = store();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for t in 0..s.num_traces() {
                        for f in TraceFilter::ALL {
                            let _ = s.records(t, f);
                        }
                    }
                });
            }
        });
        assert_eq!(s.generations(), s.num_traces() as u64);
    }

    #[test]
    fn matches_a_fresh_generator() {
        let s = store();
        let stored = s.records(0, TraceFilter::Full);
        let fresh: Vec<TraceRecord> =
            Generator::new(Profile::pops().with_total_refs(5_000), 3).collect();
        assert_eq!(&stored[..], &fresh[..]);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_profiles_rejected() {
        let _ = TraceStore::new(vec![], 0);
    }
}

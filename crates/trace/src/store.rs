//! The shared trace store: generate once, replay by slice.
//!
//! The paper's methodology is one simulation run per (protocol, trace)
//! pair, re-priced under any hardware model. That makes the experiment
//! matrix embarrassingly parallel — but only if the trace itself is not
//! regenerated for every run. [`TraceStore`] materializes each
//! (trace, filter) record stream exactly once into an
//! `Arc<[TraceRecord]>` and hands out cheap slices; concurrent requests
//! for the same stream block on a [`OnceLock`] instead of duplicating
//! generator work.
//!
//! The filtered stream ([`TraceFilter::ExcludeLockSpins`]) is derived from
//! the full stream rather than re-running the generator, so the generator
//! executes at most once per trace per process — observable through
//! [`TraceStore::generations`], which tests use to pin the
//! "generated exactly once" guarantee.

use crate::filter::exclude_lock_spins;
use crate::gen::{Generator, Profile};
use crate::intern::BlockInterner;
use crate::record::TraceRecord;
use crate::shard::ShardedStream;
use crate::soa::{ShardedSoa, SoaStream};
use dircc_types::{BlockGeometry, SharingModel};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Trace preprocessing applied before replay.
///
/// Lives next to the store so every layer (trace store, workbench, CLI)
/// shares one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFilter {
    /// The full trace.
    Full,
    /// Lock-test reads removed (the §5.2 experiment).
    ExcludeLockSpins,
}

impl TraceFilter {
    /// All filters, in stable (paper) order.
    pub const ALL: [TraceFilter; 2] = [TraceFilter::Full, TraceFilter::ExcludeLockSpins];

    fn slot(self) -> usize {
        match self {
            TraceFilter::Full => 0,
            TraceFilter::ExcludeLockSpins => 1,
        }
    }
}

/// One trace's lazily-materialized streams, one slot per filter.
#[derive(Debug, Default)]
struct TraceSlot {
    streams: [OnceLock<Arc<[TraceRecord]>>; 2],
}

/// A mutex-guarded map of memo cells: the cell is cloned out under the
/// lock and initialized outside it, so builders never serialize.
type MemoMap<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// Thread-safe, generate-once storage for the synthetic trace suite.
///
/// ```
/// use dircc_trace::gen::Profile;
/// use dircc_trace::store::{TraceFilter, TraceStore};
///
/// let store = TraceStore::new(vec![Profile::pero().with_total_refs(1_000)], 7);
/// let a = store.records(0, TraceFilter::Full);
/// let b = store.records(0, TraceFilter::Full);
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second call reuses the slice");
/// assert_eq!(store.generations(), 1);
/// ```
#[derive(Debug)]
pub struct TraceStore {
    profiles: Vec<Profile>,
    seed: u64,
    slots: Vec<TraceSlot>,
    /// Number of generator executions (not stream requests).
    generations: AtomicU64,
    /// Memoized dense renamings, one per (trace, geometry).
    interners: MemoMap<(usize, BlockGeometry), Arc<BlockInterner>>,
    /// Memoized per-record dense-id streams, one per (trace, filter, geometry).
    dense: MemoMap<(usize, usize, BlockGeometry), Arc<[u32]>>,
    /// Memoized block-sharded partitions, one per
    /// (trace, filter, geometry, shard count).
    sharded: MemoMap<(usize, usize, BlockGeometry, usize), Arc<ShardedStream>>,
    /// Memoized structure-of-arrays streams, one per
    /// (trace, filter, geometry, sharing model).
    soa: MemoMap<(usize, usize, BlockGeometry, SharingModel), Arc<SoaStream>>,
    /// Memoized per-shard structure-of-arrays streams, one per
    /// (trace, filter, geometry, shard count, sharing model).
    sharded_soa: MemoMap<(usize, usize, BlockGeometry, usize, SharingModel), Arc<ShardedSoa>>,
}

impl TraceStore {
    /// Creates a store over `profiles`, generating with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(profiles: Vec<Profile>, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "need at least one trace profile");
        let slots = profiles.iter().map(|_| TraceSlot::default()).collect();
        TraceStore {
            profiles,
            seed,
            slots,
            generations: AtomicU64::new(0),
            interners: Mutex::new(HashMap::new()),
            dense: Mutex::new(HashMap::new()),
            sharded: Mutex::new(HashMap::new()),
            soa: Mutex::new(HashMap::new()),
            sharded_soa: Mutex::new(HashMap::new()),
        }
    }

    /// The profiles this store generates.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of traces.
    pub fn num_traces(&self) -> usize {
        self.profiles.len()
    }

    /// The materialized record stream of one (trace, filter) pair.
    ///
    /// The first call per pair generates (or derives) the stream; later
    /// calls — from any thread — return the same shared slice.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn records(&self, trace: usize, filter: TraceFilter) -> Arc<[TraceRecord]> {
        let slot = &self.slots[trace];
        slot.streams[filter.slot()]
            .get_or_init(|| match filter {
                TraceFilter::Full => {
                    self.generations.fetch_add(1, Ordering::Relaxed);
                    Generator::new(self.profiles[trace].clone(), self.seed).collect()
                }
                TraceFilter::ExcludeLockSpins => {
                    // Derived from the full stream: no second generator run.
                    let full = self.records(trace, TraceFilter::Full);
                    exclude_lock_spins(full.iter().copied()).collect()
                }
            })
            .clone()
    }

    /// How many times a generator actually executed (for the
    /// generated-exactly-once guarantee; filters don't count).
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// The dense block renaming of one trace under `geometry`, built once
    /// over the full stream and shared thereafter.
    ///
    /// Built over [`TraceFilter::Full`] so every derived (filtered) stream
    /// of the same trace maps through the same renaming.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn interner(&self, trace: usize, geometry: BlockGeometry) -> Arc<BlockInterner> {
        assert!(trace < self.slots.len(), "trace {trace} out of range");
        let cell = {
            let mut map = self.interners.lock().expect("interner memo poisoned");
            map.entry((trace, geometry)).or_default().clone()
        };
        cell.get_or_init(|| {
            let records = self.records(trace, TraceFilter::Full);
            Arc::new(BlockInterner::from_records(records.iter(), geometry))
        })
        .clone()
    }

    /// The per-record dense block ids of one (trace, filter) stream under
    /// `geometry`, aligned one-to-one with
    /// [`records(trace, filter)`](TraceStore::records). Materialized once
    /// and shared thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn dense_blocks(
        &self,
        trace: usize,
        filter: TraceFilter,
        geometry: BlockGeometry,
    ) -> Arc<[u32]> {
        let cell = {
            let mut map = self.dense.lock().expect("dense memo poisoned");
            map.entry((trace, filter.slot(), geometry)).or_default().clone()
        };
        cell.get_or_init(|| {
            let interner = self.interner(trace, geometry);
            let records = self.records(trace, filter);
            interner.dense_stream(&records).into()
        })
        .clone()
    }

    /// The block-sharded partition of one (trace, filter) stream under
    /// `geometry` — `shards` sub-streams routed by `block_id % shards`
    /// (the infinite-cache router), with shard-local dense ids and global
    /// reference numbers. Materialized once per (trace, filter, geometry,
    /// shards) and shared thereafter, alongside the unsharded streams.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range or `shards` is zero.
    pub fn sharded(
        &self,
        trace: usize,
        filter: TraceFilter,
        geometry: BlockGeometry,
        shards: usize,
    ) -> Arc<ShardedStream> {
        assert!(shards >= 1, "need at least one shard");
        let cell = {
            let mut map = self.sharded.lock().expect("sharded memo poisoned");
            map.entry((trace, filter.slot(), geometry, shards)).or_default().clone()
        };
        cell.get_or_init(|| {
            let records = self.records(trace, filter);
            let dense = self.dense_blocks(trace, filter, geometry);
            let num_blocks = self.interner(trace, geometry).num_blocks();
            Arc::new(ShardedStream::build(&records, &dense, num_blocks, shards, |_, gid| {
                gid as usize % shards
            }))
        })
        .clone()
    }

    /// The structure-of-arrays split of one (trace, filter) stream under
    /// `geometry` and `sharing` — flat `kind`/`cache_idx`/`block_id`/
    /// `first_ref` arrays with the sharing-model cache index and address
    /// math precomputed (see [`SoaStream`]). Materialized once per key and
    /// shared thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn soa(
        &self,
        trace: usize,
        filter: TraceFilter,
        geometry: BlockGeometry,
        sharing: SharingModel,
    ) -> Arc<SoaStream> {
        let cell = {
            let mut map = self.soa.lock().expect("soa memo poisoned");
            map.entry((trace, filter.slot(), geometry, sharing)).or_default().clone()
        };
        cell.get_or_init(|| {
            let records = self.records(trace, filter);
            let dense = self.dense_blocks(trace, filter, geometry);
            let num_blocks = self.interner(trace, geometry).num_blocks();
            Arc::new(SoaStream::build(&records, &dense, num_blocks, sharing))
        })
        .clone()
    }

    /// The per-shard structure-of-arrays split of one sharded partition
    /// (see [`TraceStore::sharded`]), aligned one-to-one with its shards.
    /// Materialized once per (trace, filter, geometry, shards, sharing)
    /// and shared thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range or `shards` is zero.
    pub fn sharded_soa(
        &self,
        trace: usize,
        filter: TraceFilter,
        geometry: BlockGeometry,
        shards: usize,
        sharing: SharingModel,
    ) -> Arc<ShardedSoa> {
        assert!(shards >= 1, "need at least one shard");
        let cell = {
            let mut map = self.sharded_soa.lock().expect("sharded soa memo poisoned");
            map.entry((trace, filter.slot(), geometry, shards, sharing)).or_default().clone()
        };
        cell.get_or_init(|| {
            let sharded = self.sharded(trace, filter, geometry, shards);
            Arc::new(ShardedSoa::build(&sharded, sharing))
        })
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TraceStore {
        TraceStore::new(
            vec![Profile::pops().with_total_refs(5_000), Profile::thor().with_total_refs(5_000)],
            3,
        )
    }

    #[test]
    fn streams_are_shared_not_regenerated() {
        let s = store();
        let a = s.records(0, TraceFilter::Full);
        let b = s.records(0, TraceFilter::Full);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(s.generations(), 1);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn filtered_stream_derives_from_full_without_regenerating() {
        let s = store();
        let filtered = s.records(1, TraceFilter::ExcludeLockSpins);
        let full = s.records(1, TraceFilter::Full);
        assert_eq!(s.generations(), 1, "filter must not re-run the generator");
        assert!(filtered.len() < full.len(), "THOR has spins to drop");
        assert!(filtered.iter().all(|r| !r.is_lock_spin()));
    }

    #[test]
    fn concurrent_requests_generate_once() {
        let s = store();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for t in 0..s.num_traces() {
                        for f in TraceFilter::ALL {
                            let _ = s.records(t, f);
                        }
                    }
                });
            }
        });
        assert_eq!(s.generations(), s.num_traces() as u64);
    }

    #[test]
    fn matches_a_fresh_generator() {
        let s = store();
        let stored = s.records(0, TraceFilter::Full);
        let fresh: Vec<TraceRecord> =
            Generator::new(Profile::pops().with_total_refs(5_000), 3).collect();
        assert_eq!(&stored[..], &fresh[..]);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_profiles_rejected() {
        let _ = TraceStore::new(vec![], 0);
    }

    #[test]
    fn interner_is_memoized_per_geometry() {
        let s = store();
        let a = s.interner(0, BlockGeometry::PAPER);
        let b = s.interner(0, BlockGeometry::PAPER);
        assert!(Arc::ptr_eq(&a, &b), "same (trace, geometry) shares the interner");
        let wide = s.interner(0, BlockGeometry::new(5));
        assert!(!Arc::ptr_eq(&a, &wide));
        assert!(wide.num_blocks() <= a.num_blocks(), "wider blocks cannot increase count");
        assert_eq!(s.generations(), 1, "interning reuses the stored stream");
    }

    #[test]
    fn sharded_streams_are_memoized_and_partition_the_stream() {
        let s = store();
        let g = BlockGeometry::PAPER;
        let a = s.sharded(0, TraceFilter::Full, g, 4);
        let b = s.sharded(0, TraceFilter::Full, g, 4);
        assert!(Arc::ptr_eq(&a, &b), "same (trace, filter, shards) shares the partition");
        let other = s.sharded(0, TraceFilter::Full, g, 2);
        assert!(!Arc::ptr_eq(&a, &other), "shard count is part of the key");
        assert_eq!(a.total_records(), s.records(0, TraceFilter::Full).len());
        assert_eq!(a.total_blocks(), s.interner(0, g).num_blocks());
        assert_eq!(s.generations(), 1, "sharding reuses the stored stream");
        // The mod router: every data record's original dense id maps to
        // shard gid % 4, i.e. local ids stride the global id space.
        let dense = s.dense_blocks(0, TraceFilter::Full, g);
        for (i, sh) in a.shards().iter().enumerate() {
            for (r, &g_ref) in sh.records.iter().zip(&sh.global_refs) {
                if r.is_data() {
                    assert_eq!(dense[(g_ref - 1) as usize] as usize % 4, i);
                }
            }
        }
    }

    #[test]
    fn soa_streams_are_memoized_per_sharing_model() {
        let s = store();
        let g = BlockGeometry::PAPER;
        let a = s.soa(0, TraceFilter::Full, g, SharingModel::Processor);
        let b = s.soa(0, TraceFilter::Full, g, SharingModel::Processor);
        assert!(Arc::ptr_eq(&a, &b), "same key shares the split");
        let proc = s.soa(0, TraceFilter::Full, g, SharingModel::Process);
        assert!(!Arc::ptr_eq(&a, &proc), "sharing model is part of the key");
        assert_eq!(a.len(), s.records(0, TraceFilter::Full).len());
        assert_eq!(a.num_blocks, s.interner(0, g).num_blocks());
        assert_eq!(s.generations(), 1, "the split reuses the stored stream");
        let sh = s.sharded_soa(0, TraceFilter::Full, g, 3, SharingModel::Process);
        let sh2 = s.sharded_soa(0, TraceFilter::Full, g, 3, SharingModel::Process);
        assert!(Arc::ptr_eq(&sh, &sh2));
        assert_eq!(sh.shards().len(), 3);
        let total: usize = sh.shards().iter().map(|s| s.len()).sum();
        assert_eq!(total, a.len());
    }

    #[test]
    fn dense_blocks_align_with_records_for_every_filter() {
        let s = store();
        let geometry = BlockGeometry::PAPER;
        let interner = s.interner(1, geometry);
        for f in TraceFilter::ALL {
            let records = s.records(1, f);
            let dense = s.dense_blocks(1, f, geometry);
            assert_eq!(dense.len(), records.len());
            let again = s.dense_blocks(1, f, geometry);
            assert!(Arc::ptr_eq(&dense, &again), "dense stream is memoized");
            for (r, &id) in records.iter().zip(dense.iter()) {
                if r.is_data() {
                    let expect = interner.get(geometry.block_of(r.addr)).unwrap();
                    assert_eq!(expect.raw(), id);
                }
            }
        }
        assert_eq!(s.generations(), 1);
    }
}

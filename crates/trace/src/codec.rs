//! Trace serialization: a compact binary format and a line-oriented text
//! format.
//!
//! Both formats carry exactly the fields of [`TraceRecord`]. The binary
//! format is the working format (a few bytes per reference); the text format
//! exists for inspection, diffing and hand-written test inputs. The chunked
//! v2 format for corpus-scale streaming lives in [`crate::chunk`].
//!
//! # Binary format (v1, flat)
//!
//! ```text
//! magic   4 bytes  "DCCT"
//! version 1 byte   0x01
//! records repeated:
//!   flags   u8
//!   kind    u8        0=I 1=R 2=W
//!   cpu     u16 LE
//!   pid     u16 LE
//!   addr    LEB128    unsigned, up to 10 bytes
//! ```
//!
//! # Text format
//!
//! One record per line: `cpu pid K addr flags-bits`, e.g. `0 3 R 0x1230 1`.
//! Lines beginning with `#` and blank lines are ignored.

use crate::record::{RecordFlags, TraceRecord};
use dircc_types::{AccessKind, Address, CpuId, ProcessId};
use std::io::{self, BufRead, Read, Write};

/// Magic bytes at the start of a binary trace.
pub const MAGIC: [u8; 4] = *b"DCCT";
/// Current binary format version.
pub const VERSION: u8 = 1;

pub(crate) fn kind_to_byte(k: AccessKind) -> u8 {
    match k {
        AccessKind::InstrFetch => 0,
        AccessKind::Read => 1,
        AccessKind::Write => 2,
    }
}

pub(crate) fn kind_from_byte(b: u8) -> Option<AccessKind> {
    match b {
        0 => Some(AccessKind::InstrFetch),
        1 => Some(AccessKind::Read),
        2 => Some(AccessKind::Write),
        _ => None,
    }
}

/// Writes `v` in the canonical (minimal-length) LEB128 encoding.
pub(crate) fn write_leb128<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 value.
///
/// The writer always emits the canonical minimal encoding; the reader is
/// permissive about redundant zero padding *within* the 10 bytes a u64 can
/// occupy, but rejects anything that cannot denote a u64: a 10th byte with
/// payload bits above bit 63 ("overflows u64") or with its continuation
/// bit still set ("continues past 10 bytes").
pub(crate) fn read_leb128<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        if shift == 63 {
            // The 10th byte holds only bit 63: payload must be 0 or 1 and
            // the encoding cannot continue. Report the two failure modes
            // distinctly — a continuation bit here is a length violation,
            // not an overflow.
            if byte & 0x7f > 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "LEB128 value overflows u64",
                ));
            }
            if byte & 0x80 != 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "LEB128 encoding continues past 10 bytes",
                ));
            }
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Streaming writer for the binary trace format.
///
/// The header is written lazily on the first record (or explicitly via
/// [`BinaryWriter::finish`] for an empty trace). Generic writers can be
/// passed by `&mut` reference as usual for `W: Write` APIs.
///
/// ```
/// # use dircc_trace::codec::{BinaryWriter, BinaryReader};
/// # use dircc_trace::TraceRecord;
/// # use dircc_types::{AccessKind, Address, CpuId, ProcessId};
/// # fn main() -> std::io::Result<()> {
/// let mut buf = Vec::new();
/// let mut w = BinaryWriter::new(&mut buf);
/// let r = TraceRecord::new(CpuId::new(0), ProcessId::new(1), AccessKind::Read, Address::new(0x40));
/// w.write(&r)?;
/// w.finish()?;
/// let got: Vec<_> = BinaryReader::new(&buf[..])?.collect::<Result<_, _>>()?;
/// assert_eq!(got, vec![r]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BinaryWriter<W: Write> {
    inner: W,
    header_written: bool,
    records: u64,
}

impl<W: Write> BinaryWriter<W> {
    /// Creates a writer over any byte sink.
    pub fn new(inner: W) -> Self {
        BinaryWriter { inner, header_written: false, records: 0 }
    }

    fn ensure_header(&mut self) -> io::Result<()> {
        if !self.header_written {
            self.inner.write_all(&MAGIC)?;
            self.inner.write_all(&[VERSION])?;
            self.header_written = true;
        }
        Ok(())
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, r: &TraceRecord) -> io::Result<()> {
        self.ensure_header()?;
        self.inner.write_all(&[r.flags.bits(), kind_to_byte(r.kind)])?;
        self.inner.write_all(&r.cpu.raw().to_le_bytes())?;
        self.inner.write_all(&r.pid.raw().to_le_bytes())?;
        write_leb128(&mut self.inner, r.addr.raw())?;
        self.records += 1;
        Ok(())
    }

    /// Appends every record from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_all<'a, I: IntoIterator<Item = &'a TraceRecord>>(
        &mut self,
        records: I,
    ) -> io::Result<()> {
        for r in records {
            self.write(r)?;
        }
        Ok(())
    }

    /// Returns the number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer, writing the header first
    /// if no record ever was (so even empty traces are well-formed).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.ensure_header()?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader for the binary trace format.
///
/// Iterates `io::Result<TraceRecord>`; ends cleanly at EOF on a record
/// boundary and reports `UnexpectedEof` for truncated records.
#[derive(Debug)]
pub struct BinaryReader<R: Read> {
    inner: R,
}

impl<R: Read> BinaryReader<R> {
    /// Creates a reader, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic or version is wrong, and
    /// propagates I/O errors.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let mut header = [0u8; 5];
        inner.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a dircc binary trace"));
        }
        if header[4] != VERSION {
            let hint = if header[4] == crate::chunk::VERSION_V2 {
                " (a chunked v2 trace: replay it with `dircc replay --in`, read it \
                 with ChunkedReader, or regenerate a flat v1 file with `dircc gen`)"
            } else {
                ""
            };
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}{hint}", header[4]),
            ));
        }
        Ok(BinaryReader { inner })
    }

    /// Creates a reader positioned just past an already-consumed v1 header
    /// (used by [`crate::chunk::open_trace`] after sniffing the version).
    pub(crate) fn from_body(inner: R) -> Self {
        BinaryReader { inner }
    }

    fn read_record(&mut self) -> io::Result<Option<TraceRecord>> {
        // A record boundary is the one place EOF is clean, so the first
        // byte cannot use read_exact (whose EOF is an error). A bare
        // read() is not enough either: it may legitimately be interrupted,
        // and only Ok(0) means end-of-stream.
        let first = loop {
            let mut first = [0u8; 1];
            match self.inner.read(&mut first) {
                Ok(0) => return Ok(None),
                Ok(_) => break first[0],
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let flags = RecordFlags::from_bits_checked(first).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("unknown flag bits {first:#04x}"))
        })?;
        let mut rest = [0u8; 5];
        self.inner.read_exact(&mut rest)?;
        let kind = kind_from_byte(rest[0])
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad access kind byte"))?;
        let cpu = CpuId::new(u16::from_le_bytes([rest[1], rest[2]]));
        let pid = ProcessId::new(u16::from_le_bytes([rest[3], rest[4]]));
        let addr = Address::new(read_leb128(&mut self.inner)?);
        Ok(Some(TraceRecord { cpu, pid, kind, addr, flags }))
    }
}

impl<R: Read> Iterator for BinaryReader<R> {
    type Item = io::Result<TraceRecord>;

    fn next(&mut self) -> Option<io::Result<TraceRecord>> {
        self.read_record().transpose()
    }
}

/// Writes records in the text format, one per line.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_text<'a, W: Write, I: IntoIterator<Item = &'a TraceRecord>>(
    mut w: W,
    records: I,
) -> io::Result<()> {
    for r in records {
        writeln!(
            w,
            "{} {} {} {:#x} {}",
            r.cpu.raw(),
            r.pid.raw(),
            r.kind.code(),
            r.addr,
            r.flags.bits()
        )?;
    }
    Ok(())
}

/// Parses the text format from any buffered reader.
///
/// # Errors
///
/// Returns `InvalidData` with a line number on malformed input; propagates
/// I/O errors.
pub fn read_text<R: BufRead>(r: R) -> io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_text_line(line).map_err(|msg| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {}", lineno + 1, msg))
        })?);
    }
    Ok(out)
}

fn parse_text_line(line: &str) -> Result<TraceRecord, String> {
    let mut it = line.split_whitespace();
    let mut field = |name: &str| it.next().ok_or_else(|| format!("missing field {name}"));
    let cpu: u16 = field("cpu")?.parse().map_err(|e| format!("cpu: {e}"))?;
    let pid: u16 = field("pid")?.parse().map_err(|e| format!("pid: {e}"))?;
    let kind_s = field("kind")?;
    let kind = kind_s
        .chars()
        .next()
        .and_then(AccessKind::from_code)
        .filter(|_| kind_s.len() == 1)
        .ok_or_else(|| format!("bad kind {kind_s:?}"))?;
    let addr_s = field("addr")?;
    let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("addr: {e}"))?
    } else {
        addr_s.parse().map_err(|e| format!("addr: {e}"))?
    };
    let flag_bits: u8 = match it.next() {
        Some(f) => f.parse().map_err(|e| format!("flags: {e}"))?,
        None => 0,
    };
    let flags = RecordFlags::from_bits_checked(flag_bits)
        .ok_or_else(|| format!("flags: unknown flag bits {flag_bits:#04x}"))?;
    if it.next().is_some() {
        return Err("trailing fields".to_string());
    }
    Ok(TraceRecord {
        cpu: CpuId::new(cpu),
        pid: ProcessId::new(pid),
        kind,
        addr: Address::new(addr),
        flags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(
                CpuId::new(0),
                ProcessId::new(0),
                AccessKind::InstrFetch,
                Address::new(0),
            ),
            TraceRecord::new(
                CpuId::new(1),
                ProcessId::new(9),
                AccessKind::Read,
                Address::new(0x1234),
            )
            .with_flags(RecordFlags::LOCK),
            TraceRecord::new(
                CpuId::new(3),
                ProcessId::new(2),
                AccessKind::Write,
                Address::new(u64::MAX),
            )
            .with_flags(RecordFlags::SYSTEM),
        ]
    }

    #[test]
    fn binary_round_trip() {
        let recs = sample();
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write_all(&recs).unwrap();
        assert_eq!(w.records_written(), 3);
        w.finish().unwrap();
        let got: Vec<_> = BinaryReader::new(&buf[..]).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn empty_binary_trace_is_well_formed() {
        let buf = BinaryWriter::new(Vec::new()).finish().unwrap();
        assert_eq!(buf.len(), 5);
        assert_eq!(BinaryReader::new(&buf[..]).unwrap().count(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = BinaryReader::new(&b"NOPE\x01"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let err = BinaryReader::new(&b"DCCT\x63"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_reports_eof() {
        let recs = sample();
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write_all(&recs).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 1);
        let result: Result<Vec<_>, _> = BinaryReader::new(&buf[..]).unwrap().collect();
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn text_round_trip() {
        let recs = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &recs).unwrap();
        let got = read_text(&buf[..]).unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn text_accepts_comments_and_default_flags() {
        let input = "# a comment\n\n0 1 R 64\n";
        let got = read_text(input.as_bytes()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].addr, Address::new(64));
        assert_eq!(got[0].flags, RecordFlags::NONE);
    }

    #[test]
    fn text_rejects_malformed_lines() {
        for bad in ["0 1 Z 0x10 0", "0 1 R", "0 1 R 0x10 0 extra", "x 1 R 0x10"] {
            let err = read_text(bad.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "input {bad:?}");
        }
    }

    #[test]
    fn leb128_extremes() {
        for v in [0u64, 1, 127, 128, u64::MAX] {
            let mut buf = Vec::new();
            write_leb128(&mut buf, v).unwrap();
            assert_eq!(read_leb128(&mut &buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn leb128_round_trips_every_shift_boundary() {
        // Values straddling each 7-bit group boundary: 2^(7k) - 1 and
        // 2^(7k), where the encoded length changes.
        for k in 1..10u32 {
            let boundary = 1u64 << (7 * k);
            for v in [boundary - 1, boundary, u64::MAX >> 1, (u64::MAX >> 1) + 1] {
                let mut buf = Vec::new();
                write_leb128(&mut buf, v).unwrap();
                assert!(buf.len() <= 10);
                assert_eq!(read_leb128(&mut &buf[..]).unwrap(), v, "value {v:#x}");
            }
        }
        // Canonical u64::MAX is exactly 10 bytes, last byte 0x01.
        let mut buf = Vec::new();
        write_leb128(&mut buf, u64::MAX).unwrap();
        assert_eq!(buf.len(), 10);
        assert_eq!(buf[9], 0x01);
        // Canonical 0 is a single zero byte.
        let mut buf = Vec::new();
        write_leb128(&mut buf, 0).unwrap();
        assert_eq!(buf, [0x00]);
    }

    #[test]
    fn leb128_overflow_rejected() {
        // 10th byte with payload above bit 63: a true overflow.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        let err = read_leb128(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflows"), "got {err}");
    }

    #[test]
    fn leb128_overlong_continuation_rejected_distinctly() {
        // A continuation bit on the 10th byte is a length violation and
        // must not be misreported as an overflow — even for the padding
        // byte 0x80 whose payload is zero.
        for tenth in [0x80u8, 0x81] {
            let mut buf = vec![0x80u8; 9];
            buf.push(tenth);
            buf.push(0x00);
            let err = read_leb128(&mut &buf[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("continues past 10 bytes"), "got {err}");
        }
    }

    #[test]
    fn leb128_accepts_redundant_padding_within_bounds() {
        // Permissive decode: zero padding inside the 10-byte window is
        // decodable even though the writer never emits it.
        assert_eq!(read_leb128(&mut &[0x80u8, 0x00][..]).unwrap(), 0);
        assert_eq!(read_leb128(&mut &[0xc0u8, 0x00][..]).unwrap(), 0x40);
    }

    /// A reader that yields one byte at a time, interposing a spurious
    /// `Interrupted` error before every byte — what a signal-heavy
    /// environment can do to a real file descriptor.
    struct Interrupting<'a> {
        data: &'a [u8],
        ready: bool,
    }

    impl Read for Interrupting<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            self.ready = false;
            if self.data.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[0];
            self.data = &self.data[1..];
            Ok(1)
        }
    }

    #[test]
    fn interrupted_reads_are_retried_not_fatal() {
        let recs = sample();
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write_all(&recs).unwrap();
        w.finish().unwrap();
        // read_exact retries Interrupted for the header and fixed fields;
        // the record-boundary first byte must do the same rather than
        // surfacing the error (or worse, mistaking a retry for EOF).
        let r = BinaryReader::new(Interrupting { data: &buf, ready: false }).unwrap();
        let got: Vec<_> = r.collect::<Result<_, _>>().unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn truncation_at_every_field_boundary_reports_eof() {
        // One record: flags, kind, cpu(2), pid(2), addr LEB128. Cutting the
        // stream after any strict prefix of the record must yield
        // UnexpectedEof — never a garbage record or a silent clean EOF of
        // a partially-consumed record.
        let rec = TraceRecord::new(
            CpuId::new(7),
            ProcessId::new(260),
            AccessKind::Write,
            Address::new(0x1234_5678),
        )
        .with_flags(RecordFlags::LOCK);
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write(&rec).unwrap();
        w.finish().unwrap();
        for cut in 6..buf.len() {
            let result: Result<Vec<_>, _> = BinaryReader::new(&buf[..cut]).unwrap().collect();
            assert_eq!(
                result.unwrap_err().kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at byte {cut} of {}",
                buf.len()
            );
        }
        // Cutting exactly at the record boundary is a clean EOF.
        let got: Vec<_> = BinaryReader::new(&buf[..]).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(got, vec![rec]);
    }

    #[test]
    fn unknown_flag_bits_rejected_on_binary_path() {
        let mut buf = Vec::new();
        let mut w = BinaryWriter::new(&mut buf);
        w.write(&sample()[0]).unwrap();
        w.finish().unwrap();
        buf[5] = 0x84; // flags byte of the first record: undefined bits set
        let err = BinaryReader::new(&buf[..]).unwrap().next().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown flag bits"), "got {err}");
    }

    #[test]
    fn unknown_flag_bits_rejected_in_text_with_line_number() {
        let err = read_text("0 1 R 0x40 1\n0 1 W 0x80 9\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("unknown flag bits"), "got {msg}");
    }

    #[test]
    fn v2_trace_rejected_by_v1_reader_with_hint() {
        let err = BinaryReader::new(&b"DCCT\x02"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("dircc replay --in"), "hint should name a converter: {msg}");
    }
}

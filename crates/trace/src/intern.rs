//! Block interning: dense ids for the blocks a trace actually touches.
//!
//! Trace addresses are sparse — whatever the generator's region layout
//! produces. Replaying through hash-mapped per-block state pays a
//! SipHash probe for every table on every reference. A [`BlockInterner`]
//! makes one pass over a stored stream and assigns each distinct block a
//! dense [`BlockId`] in first-appearance order; replay then renames blocks
//! to their dense ids, so every per-block structure (tag arrays, directory
//! entries, first-reference set, verifier tables) becomes a flat vector.
//!
//! The renaming is a bijection per (trace, geometry). Protocols only ever
//! compare blocks for identity, so dense replay produces bit-identical
//! event counts — pinned by `dircc-sim`'s interned-vs-raw equality tests.

use crate::record::TraceRecord;
use dircc_types::{BlockAddr, BlockGeometry, BlockId};
use std::collections::HashMap;

/// A dense renaming of the blocks in one (trace, geometry) stream.
#[derive(Debug, Clone)]
pub struct BlockInterner {
    geometry: BlockGeometry,
    ids: HashMap<u64, u32>,
}

impl BlockInterner {
    /// Creates an empty interner for incremental use: streaming replay
    /// interns blocks chunk by chunk via [`BlockInterner::intern`] as it
    /// first sees them, never holding the whole stream.
    pub fn new(geometry: BlockGeometry) -> Self {
        BlockInterner { geometry, ids: HashMap::new() }
    }

    /// Builds an interner over every *data* reference in `records`
    /// (instruction fetches never reach block-level state), assigning
    /// dense ids in first-appearance order.
    ///
    /// # Panics
    ///
    /// Panics if the stream touches more than `u32::MAX` distinct blocks.
    pub fn from_records<'a, I>(records: I, geometry: BlockGeometry) -> Self
    where
        I: IntoIterator<Item = &'a TraceRecord>,
    {
        let mut interner = BlockInterner::new(geometry);
        for r in records {
            if r.is_data() {
                interner.intern(geometry.block_of(r.addr));
            }
        }
        interner
    }

    /// Interns `block`, returning its dense id and whether this is the
    /// block's first appearance. Ids are assigned in first-appearance
    /// order, exactly as [`BlockInterner::from_records`] would over the
    /// same stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream touches more than `u32::MAX` distinct blocks.
    #[inline]
    pub fn intern(&mut self, block: BlockAddr) -> (u32, bool) {
        let next = self.ids.len();
        let mut first = false;
        let id = *self.ids.entry(block.index()).or_insert_with(|| {
            first = true;
            u32::try_from(next).expect("more than u32::MAX distinct blocks")
        });
        (id, first)
    }

    /// The geometry the interner was built with.
    pub fn geometry(&self) -> BlockGeometry {
        self.geometry
    }

    /// Number of distinct blocks interned — the exact capacity hint for
    /// dense per-block tables.
    pub fn num_blocks(&self) -> usize {
        self.ids.len()
    }

    /// Returns the dense id of `block`, if the stream touches it.
    #[inline]
    pub fn get(&self, block: BlockAddr) -> Option<BlockId> {
        self.ids.get(&block.index()).map(|&id| BlockId::new(id))
    }

    /// Maps each record of `records` to the dense id of its block, aligned
    /// one-to-one with the input (instruction fetches, which carry no
    /// block-level state, map to a placeholder id 0 that replay never
    /// reads).
    ///
    /// # Panics
    ///
    /// Panics if a data record's block was not interned (i.e. `records` is
    /// not drawn from the stream this interner was built over).
    pub fn dense_stream(&self, records: &[TraceRecord]) -> Vec<u32> {
        records
            .iter()
            .map(|r| {
                if !r.is_data() {
                    return 0;
                }
                let block = self.geometry.block_of(r.addr);
                self.ids
                    .get(&block.index())
                    .copied()
                    .unwrap_or_else(|| panic!("{block}: not in the interned stream"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Generator, Profile};
    use crate::stats::TraceStats;

    fn trace() -> Vec<TraceRecord> {
        Generator::new(Profile::pops().with_total_refs(20_000), 7).collect()
    }

    #[test]
    fn ids_are_dense_and_first_appearance_ordered() {
        let records = trace();
        let geometry = BlockGeometry::PAPER;
        let interner = BlockInterner::from_records(&records, geometry);
        assert!(interner.num_blocks() > 0);
        assert_eq!(interner.geometry(), geometry);
        // First data record's block must be id 0; ids cover 0..n densely.
        let first_block =
            records.iter().find(|r| r.is_data()).map(|r| geometry.block_of(r.addr)).unwrap();
        assert_eq!(interner.get(first_block), Some(BlockId::new(0)));
        let mut seen = vec![false; interner.num_blocks()];
        for r in records.iter().filter(|r| r.is_data()) {
            let id = interner.get(geometry.block_of(r.addr)).expect("every data block interned");
            seen[id.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "every dense id in 0..n is used");
    }

    #[test]
    fn count_matches_trace_stats() {
        let records = trace();
        let interner = BlockInterner::from_records(&records, BlockGeometry::PAPER);
        let stats: TraceStats = records.iter().collect();
        assert_eq!(interner.num_blocks(), stats.distinct_data_blocks());
    }

    #[test]
    fn dense_stream_aligns_with_records() {
        let records = trace();
        let geometry = BlockGeometry::PAPER;
        let interner = BlockInterner::from_records(&records, geometry);
        let dense = interner.dense_stream(&records);
        assert_eq!(dense.len(), records.len());
        for (r, &id) in records.iter().zip(&dense) {
            if r.is_data() {
                assert_eq!(interner.get(geometry.block_of(r.addr)), Some(BlockId::new(id)));
            }
        }
    }

    #[test]
    fn incremental_interning_matches_batch() {
        let records = trace();
        let geometry = BlockGeometry::PAPER;
        let batch = BlockInterner::from_records(&records, geometry);
        let mut inc = BlockInterner::new(geometry);
        let mut firsts = 0usize;
        for r in records.iter().filter(|r| r.is_data()) {
            let block = geometry.block_of(r.addr);
            let (id, first) = inc.intern(block);
            if first {
                firsts += 1;
            }
            assert_eq!(batch.get(block).unwrap().index(), id as usize);
        }
        assert_eq!(inc.num_blocks(), batch.num_blocks());
        assert_eq!(firsts, batch.num_blocks(), "one first-appearance per block");
    }

    #[test]
    fn unknown_block_is_none() {
        let records = trace();
        let interner = BlockInterner::from_records(&records, BlockGeometry::PAPER);
        assert_eq!(interner.get(BlockAddr::from_index(u64::MAX >> 5)), None);
    }
}

//! Reference-stream statistics (the Table 3 columns, and more).
//!
//! [`TraceStats`] accumulates the per-trace characteristics the paper
//! reports: total references, instruction fetches, data reads, data writes,
//! user/system split — plus the extra quantities the methodology depends on:
//! lock-spin reads (§4.4 reports roughly one third of reads in POPS and THOR
//! are spins), distinct data blocks (first-reference misses), and per-CPU
//! reference counts.

use crate::record::TraceRecord;
use dircc_types::{AccessKind, BlockGeometry, CpuId, ProcessId};
use std::collections::{HashMap, HashSet};

/// Accumulated statistics over a trace.
///
/// Build one by [`Extend`]ing/[`FromIterator`]-collecting records into it,
/// or by calling [`TraceStats::observe`] per record.
#[derive(Debug, Clone)]
pub struct TraceStats {
    geometry: BlockGeometry,
    total: u64,
    instr: u64,
    reads: u64,
    writes: u64,
    system: u64,
    lock_refs: u64,
    lock_spin_reads: u64,
    per_cpu: HashMap<CpuId, u64>,
    processes: HashSet<ProcessId>,
    data_blocks: HashSet<u64>,
    instr_blocks: HashSet<u64>,
}

impl TraceStats {
    /// Creates empty statistics using the paper's block geometry.
    pub fn new() -> Self {
        Self::with_geometry(BlockGeometry::PAPER)
    }

    /// Creates empty statistics with an explicit block geometry.
    pub fn with_geometry(geometry: BlockGeometry) -> Self {
        TraceStats {
            geometry,
            total: 0,
            instr: 0,
            reads: 0,
            writes: 0,
            system: 0,
            lock_refs: 0,
            lock_spin_reads: 0,
            per_cpu: HashMap::new(),
            processes: HashSet::new(),
            data_blocks: HashSet::new(),
            instr_blocks: HashSet::new(),
        }
    }

    /// Accounts for one record.
    pub fn observe(&mut self, r: &TraceRecord) {
        self.total += 1;
        *self.per_cpu.entry(r.cpu).or_insert(0) += 1;
        self.processes.insert(r.pid);
        let block = self.geometry.block_of(r.addr).index();
        match r.kind {
            AccessKind::InstrFetch => {
                self.instr += 1;
                self.instr_blocks.insert(block);
            }
            AccessKind::Read => {
                self.reads += 1;
                self.data_blocks.insert(block);
            }
            AccessKind::Write => {
                self.writes += 1;
                self.data_blocks.insert(block);
            }
        }
        if r.flags.is_system() {
            self.system += 1;
        }
        if r.flags.is_lock() {
            self.lock_refs += 1;
            if r.is_lock_spin() {
                self.lock_spin_reads += 1;
            }
        }
    }

    /// Total number of references.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of instruction fetches.
    pub fn instr(&self) -> u64 {
        self.instr
    }

    /// Number of data reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of data writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of references issued by system code.
    pub fn system(&self) -> u64 {
        self.system
    }

    /// Number of references issued by user code.
    pub fn user(&self) -> u64 {
        self.total - self.system
    }

    /// Number of references that touched a lock word.
    pub fn lock_refs(&self) -> u64 {
        self.lock_refs
    }

    /// Number of lock-test reads (spins).
    pub fn lock_spin_reads(&self) -> u64 {
        self.lock_spin_reads
    }

    /// Number of distinct data blocks referenced (equals the count of
    /// first-reference misses in an infinite cache).
    pub fn distinct_data_blocks(&self) -> usize {
        self.data_blocks.len()
    }

    /// Number of distinct instruction blocks referenced.
    pub fn distinct_instr_blocks(&self) -> usize {
        self.instr_blocks.len()
    }

    /// Number of distinct processes observed.
    pub fn distinct_processes(&self) -> usize {
        self.processes.len()
    }

    /// References issued by one CPU.
    pub fn refs_for_cpu(&self, cpu: CpuId) -> u64 {
        self.per_cpu.get(&cpu).copied().unwrap_or(0)
    }

    /// Number of distinct CPUs observed.
    pub fn distinct_cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// Fraction of references that are instruction fetches.
    pub fn instr_fraction(&self) -> f64 {
        self.frac(self.instr)
    }

    /// Fraction of references that are data reads.
    pub fn read_fraction(&self) -> f64 {
        self.frac(self.reads)
    }

    /// Fraction of references that are data writes.
    pub fn write_fraction(&self) -> f64 {
        self.frac(self.writes)
    }

    /// Fraction of references issued by system code.
    pub fn system_fraction(&self) -> f64 {
        self.frac(self.system)
    }

    /// Ratio of data reads to data writes.
    pub fn read_write_ratio(&self) -> f64 {
        if self.writes == 0 {
            f64::INFINITY
        } else {
            self.reads as f64 / self.writes as f64
        }
    }

    /// Fraction of data reads that are lock spins (§4.4: roughly one third
    /// in POPS and THOR).
    pub fn spin_fraction_of_reads(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.lock_spin_reads as f64 / self.reads as f64
        }
    }

    fn frac(&self, n: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }
}

impl Default for TraceStats {
    fn default() -> Self {
        TraceStats::new()
    }
}

impl Extend<TraceRecord> for TraceStats {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        for r in iter {
            self.observe(&r);
        }
    }
}

impl FromIterator<TraceRecord> for TraceStats {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        let mut s = TraceStats::new();
        s.extend(iter);
        s
    }
}

impl<'a> FromIterator<&'a TraceRecord> for TraceStats {
    fn from_iter<I: IntoIterator<Item = &'a TraceRecord>>(iter: I) -> Self {
        let mut s = TraceStats::new();
        for r in iter {
            s.observe(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordFlags;
    use dircc_types::Address;

    fn rec(cpu: u16, pid: u16, kind: AccessKind, addr: u64) -> TraceRecord {
        TraceRecord::new(CpuId::new(cpu), ProcessId::new(pid), kind, Address::new(addr))
    }

    #[test]
    fn counts_and_fractions() {
        let recs = [
            rec(0, 0, AccessKind::InstrFetch, 0x100),
            rec(0, 0, AccessKind::Read, 0x200),
            rec(1, 1, AccessKind::Write, 0x200),
            rec(1, 1, AccessKind::Read, 0x210).with_flags(RecordFlags::LOCK),
            rec(1, 1, AccessKind::Write, 0x210).with_flags(RecordFlags::LOCK | RecordFlags::SYSTEM),
        ];
        let s: TraceStats = recs.iter().collect();
        assert_eq!(s.total(), 5);
        assert_eq!(s.instr(), 1);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.system(), 1);
        assert_eq!(s.user(), 4);
        assert_eq!(s.lock_refs(), 2);
        assert_eq!(s.lock_spin_reads(), 1);
        assert_eq!(s.distinct_cpus(), 2);
        assert_eq!(s.distinct_processes(), 2);
        assert!((s.instr_fraction() - 0.2).abs() < 1e-12);
        assert!((s.spin_fraction_of_reads() - 0.5).abs() < 1e-12);
        assert!((s.read_write_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_blocks_use_geometry() {
        // 0x200 and 0x20c share a 16-byte block; 0x210 does not.
        let recs = [
            rec(0, 0, AccessKind::Read, 0x200),
            rec(0, 0, AccessKind::Read, 0x20c),
            rec(0, 0, AccessKind::Read, 0x210),
            rec(0, 0, AccessKind::InstrFetch, 0x1000),
        ];
        let s: TraceStats = recs.iter().collect();
        assert_eq!(s.distinct_data_blocks(), 2);
        assert_eq!(s.distinct_instr_blocks(), 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.instr_fraction(), 0.0);
        assert_eq!(s.spin_fraction_of_reads(), 0.0);
        assert!(s.read_write_ratio().is_infinite());
    }

    #[test]
    fn per_cpu_counts() {
        let recs = [rec(2, 0, AccessKind::Read, 0), rec(2, 0, AccessKind::Read, 4)];
        let s: TraceStats = recs.iter().collect();
        assert_eq!(s.refs_for_cpu(CpuId::new(2)), 2);
        assert_eq!(s.refs_for_cpu(CpuId::new(0)), 0);
    }
}

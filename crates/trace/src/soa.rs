//! Structure-of-arrays replay streams.
//!
//! The dense-id rewrite (see [`crate::intern`]) removed hashing from the
//! replay loop but still walks 16-byte [`TraceRecord`]s and redoes the
//! sharing-model match plus `geometry.block_of` address math per
//! reference. A [`SoaStream`] finishes the job: it splits one
//! (records, dense-ids) pair into four flat arrays —
//! `kind` / `cache_idx` / `block_id` / `first_ref` — with the
//! sharing-model cache index and the global first-reference bit
//! precomputed at build time, so a replay loop touches no `TraceRecord`
//! and performs no address math at all.
//!
//! `max_cache_idx` is the stream-wide maximum over *data* references:
//! when it is below the protocol's cache count the per-reference bounds
//! check is provably dead and a replay loop may skip it entirely; the
//! engine's mono path falls back to the checking loop (with its exact
//! serial error message, which needs the original records) otherwise.
//!
//! A [`ShardedSoa`] is the same split applied to every shard of a
//! [`ShardedStream`], aligned one-to-one with its shards so the sharded
//! replay path keeps the original records available for cold paths
//! (finite-cache set selection, diagnostics) while the hot loop reads
//! only flat arrays.

use crate::record::TraceRecord;
use crate::shard::ShardedStream;
use dircc_types::{AccessKind, BlockGeometry, SharingModel};

/// A dense-id record stream split into flat per-field arrays, with the
/// sharing-model cache index and first-reference bit precomputed.
///
/// All arrays have one entry per record, in trace order. Entries for
/// instruction fetches carry placeholders in `cache_idx` / `block_id` /
/// `first_ref` that replay never reads (exactly as the dense-id stream
/// carries a placeholder id for them).
#[derive(Debug, Clone)]
pub struct SoaStream {
    /// Access kind per record.
    pub kind: Vec<AccessKind>,
    /// Cache index per record under the stream's sharing model
    /// (`cpu` for [`SharingModel::Processor`], `pid` for
    /// [`SharingModel::Process`]).
    pub cache_idx: Vec<u16>,
    /// Dense block id per record (shard-local for shard sub-streams).
    pub block_id: Vec<u32>,
    /// Whether the record is its block's first reference in this stream.
    pub first_ref: Vec<bool>,
    /// Distinct data blocks in the stream — sizes replay tables.
    pub num_blocks: usize,
    /// The sharing model `cache_idx` was computed under.
    pub sharing: SharingModel,
    /// Maximum `cache_idx` over data references (0 if there are none):
    /// if this is below the protocol's cache count, no reference can
    /// fail the bounds check.
    pub max_cache_idx: u16,
}

impl SoaStream {
    /// Splits a record stream and its aligned dense-id stream (from
    /// [`crate::intern::BlockInterner::dense_stream`]) into flat arrays
    /// under `sharing`.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not aligned with `records` or a dense id is
    /// out of range for `num_blocks`.
    pub fn build(
        records: &[TraceRecord],
        dense: &[u32],
        num_blocks: usize,
        sharing: SharingModel,
    ) -> Self {
        assert_eq!(records.len(), dense.len(), "dense-id stream must align with the record stream");
        let len = records.len();
        let mut kind = Vec::with_capacity(len);
        let mut cache_idx = Vec::with_capacity(len);
        let mut block_id = Vec::with_capacity(len);
        let mut first_ref = Vec::with_capacity(len);
        let mut seen = vec![0u64; num_blocks.div_ceil(64)];
        let mut max_cache_idx = 0u16;
        for (r, &id) in records.iter().zip(dense) {
            kind.push(r.kind);
            if r.is_data() {
                assert!(
                    (id as usize) < num_blocks,
                    "dense id {id} out of range for {num_blocks} blocks"
                );
                let idx = match sharing {
                    SharingModel::Processor => r.cpu.raw(),
                    SharingModel::Process => r.pid.raw(),
                };
                max_cache_idx = max_cache_idx.max(idx);
                let (word, bit) = (id as usize / 64, 1u64 << (id % 64));
                first_ref.push(seen[word] & bit == 0);
                seen[word] |= bit;
                cache_idx.push(idx);
                block_id.push(id);
            } else {
                cache_idx.push(0);
                block_id.push(0);
                first_ref.push(false);
            }
        }
        SoaStream { kind, cache_idx, block_id, first_ref, num_blocks, sharing, max_cache_idx }
    }

    /// Number of records in the stream.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }
}

/// The structure-of-arrays split of every shard of a [`ShardedStream`],
/// aligned one-to-one with [`ShardedStream::shards`].
#[derive(Debug, Clone)]
pub struct ShardedSoa {
    shards: Vec<SoaStream>,
    sharing: SharingModel,
}

impl ShardedSoa {
    /// Builds the per-shard SoA split of `sharded` under `sharing`.
    pub fn build(sharded: &ShardedStream, sharing: SharingModel) -> Self {
        let shards = sharded
            .shards()
            .iter()
            .map(|sh| SoaStream::build(&sh.records, &sh.dense, sh.num_blocks, sharing))
            .collect();
        ShardedSoa { shards, sharing }
    }

    /// The per-shard streams, in shard-index order.
    pub fn shards(&self) -> &[SoaStream] {
        &self.shards
    }

    /// The sharing model the cache indices were computed under.
    pub fn sharing(&self) -> SharingModel {
        self.sharing
    }
}

/// Recomputes the reference values a [`SoaStream`] must match, straight
/// from the AoS records — shared by this module's tests and the sim
/// crate's property suite so both pin the same definition.
pub fn soa_reference_values(
    records: &[TraceRecord],
    geometry: BlockGeometry,
    sharing: SharingModel,
) -> (Vec<u16>, Vec<bool>) {
    // Derived from raw addresses, not dense ids: renaming is a bijection,
    // so address-level and dense-id first references must agree.
    let mut cache_idx = Vec::with_capacity(records.len());
    let mut first_ref = Vec::with_capacity(records.len());
    let mut seen = std::collections::HashSet::new();
    for r in records {
        if r.is_data() {
            cache_idx.push(match sharing {
                SharingModel::Processor => r.cpu.raw(),
                SharingModel::Process => r.pid.raw(),
            });
            first_ref.push(seen.insert(geometry.block_of(r.addr)));
        } else {
            cache_idx.push(0);
            first_ref.push(false);
        }
    }
    (cache_idx, first_ref)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Generator, Profile};
    use crate::intern::BlockInterner;
    use dircc_types::BlockGeometry;

    fn stream() -> (Vec<TraceRecord>, Vec<u32>, usize) {
        let records: Vec<TraceRecord> =
            Generator::new(Profile::thor().with_total_refs(4_000), 11).collect();
        let interner = BlockInterner::from_records(records.iter(), BlockGeometry::PAPER);
        let dense = interner.dense_stream(&records);
        let n = interner.num_blocks();
        (records, dense, n)
    }

    #[test]
    fn soa_matches_aos_derivation() {
        let (records, dense, n) = stream();
        for sharing in [SharingModel::Processor, SharingModel::Process] {
            let soa = SoaStream::build(&records, &dense, n, sharing);
            assert_eq!(soa.len(), records.len());
            assert_eq!(soa.num_blocks, n);
            assert_eq!(soa.sharing, sharing);
            let (cache_idx, first_ref) =
                soa_reference_values(&records, BlockGeometry::PAPER, sharing);
            assert_eq!(soa.cache_idx, cache_idx);
            assert_eq!(soa.first_ref, first_ref);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(soa.kind[i], r.kind);
                if r.is_data() {
                    assert_eq!(soa.block_id[i], dense[i]);
                }
            }
            let max = records
                .iter()
                .zip(&soa.cache_idx)
                .filter(|(r, _)| r.is_data())
                .map(|(_, &c)| c)
                .max()
                .unwrap_or(0);
            assert_eq!(soa.max_cache_idx, max);
        }
    }

    #[test]
    fn first_ref_bits_appear_once_per_block() {
        let (records, dense, n) = stream();
        let soa = SoaStream::build(&records, &dense, n, SharingModel::Processor);
        let firsts = records.iter().zip(&soa.first_ref).filter(|(r, &f)| r.is_data() && f).count();
        assert_eq!(firsts, n, "exactly one first reference per distinct block");
    }

    #[test]
    fn sharded_soa_aligns_with_the_partition() {
        let (records, dense, n) = stream();
        let sharded = ShardedStream::build(&records, &dense, n, 3, |_, gid| gid as usize % 3);
        let soa = ShardedSoa::build(&sharded, SharingModel::Process);
        assert_eq!(soa.shards().len(), sharded.num_shards());
        assert_eq!(soa.sharing(), SharingModel::Process);
        for (sh, so) in sharded.shards().iter().zip(soa.shards()) {
            assert_eq!(so.len(), sh.records.len());
            assert_eq!(so.num_blocks, sh.num_blocks);
            let expect = SoaStream::build(&sh.records, &sh.dense, sh.num_blocks, so.sharing);
            assert_eq!(so.block_id, expect.block_id);
            assert_eq!(so.first_ref, expect.first_ref);
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_dense_rejected() {
        let (records, dense, n) = stream();
        let _ = SoaStream::build(&records, &dense[1..], n, SharingModel::Processor);
    }
}

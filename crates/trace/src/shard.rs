//! Block-sharded sub-streams for intra-run parallel replay.
//!
//! With infinite caches, the protocol state touched by block *b* never
//! interacts with the state of any other block, so a dense-id stream can
//! be partitioned by any pure function of the block into `S` sub-streams
//! that replay independently and whose [`EventCounters`] merge back
//! bit-identically (counters are purely additive). A [`ShardedStream`]
//! holds that partition:
//!
//! * every *data* record lands in the shard its block routes to, with
//!   per-shard record order preserved;
//! * instruction fetches (which never reach a protocol) are dealt
//!   round-robin so their counter bumps spread evenly;
//! * block ids are renamed to *shard-local* dense ids in first-appearance
//!   order, so each shard's tables are sized for its blocks only;
//! * every record keeps its 1-based *global* reference number, so
//!   verifier findings and errors merge back in trace order.
//!
//! The router must be a pure function of the block (the builder asserts
//! it): the engine uses `block_id % S` for infinite caches and
//! `set_index % S` for finite ones (eviction is confined to a set, so
//! set-sharding preserves LRU victim choice exactly).
//!
//! [`EventCounters`]: https://docs.rs/dircc-core

use crate::record::TraceRecord;

/// One shard of a partitioned dense-id stream.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The shard's records, in global trace order.
    pub records: Vec<TraceRecord>,
    /// Shard-local dense block ids, aligned with `records` (instruction
    /// fetches carry a placeholder that replay never reads).
    pub dense: Vec<u32>,
    /// 1-based global reference numbers, aligned with `records`.
    pub global_refs: Vec<u64>,
    /// Maps each shard-local dense id back to the stream's global dense
    /// id (one entry per distinct block), so shard-local replay can
    /// report diagnostics in global terms.
    pub global_ids: Vec<u32>,
    /// Distinct data blocks routed to this shard — sizes its tables.
    pub num_blocks: usize,
}

/// A dense-id stream partitioned into per-block shards.
#[derive(Debug, Clone)]
pub struct ShardedStream {
    shards: Vec<Shard>,
    total_records: usize,
    total_blocks: usize,
}

impl ShardedStream {
    /// Partitions a record stream and its aligned dense-id stream into
    /// `shards` sub-streams. `route(record, dense_id)` is called for every
    /// *data* record and must return the same shard for every occurrence
    /// of a block; instruction fetches are dealt round-robin by record
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, `dense` is not aligned with `records`,
    /// the router returns an out-of-range shard, or the router is not a
    /// pure function of the block.
    pub fn build<F>(
        records: &[TraceRecord],
        dense: &[u32],
        num_blocks: usize,
        shards: usize,
        mut route: F,
    ) -> Self
    where
        F: FnMut(&TraceRecord, u32) -> usize,
    {
        assert!(shards >= 1, "need at least one shard");
        assert_eq!(records.len(), dense.len(), "dense-id stream must align with the record stream");
        let mut out: Vec<Shard> = (0..shards)
            .map(|_| Shard {
                records: Vec::new(),
                dense: Vec::new(),
                global_refs: Vec::new(),
                global_ids: Vec::new(),
                num_blocks: 0,
            })
            .collect();
        // Shard-local renaming: ascending global id order within a shard
        // IS first-appearance order within the shard, so the rank map
        // below assigns shard-local ids in first-appearance order too.
        const UNSEEN: u32 = u32::MAX;
        let mut local = vec![UNSEEN; num_blocks];
        let mut owner = vec![UNSEEN; num_blocks];
        for (i, r) in records.iter().enumerate() {
            let gref = (i + 1) as u64;
            let (s, lid) = if r.is_data() {
                let gid = dense[i] as usize;
                assert!(gid < num_blocks, "dense id {gid} out of range for {num_blocks} blocks");
                let s = route(r, dense[i]);
                assert!(s < shards, "router sent block {gid} to shard {s} of {shards}");
                if owner[gid] == UNSEEN {
                    owner[gid] = s as u32;
                    local[gid] =
                        u32::try_from(out[s].num_blocks).expect("more than u32::MAX shard blocks");
                    out[s].global_ids.push(dense[i]);
                    out[s].num_blocks += 1;
                } else {
                    assert_eq!(
                        owner[gid], s as u32,
                        "router must be a pure function of the block (block {gid})"
                    );
                }
                (s, local[gid])
            } else {
                (i % shards, 0)
            };
            out[s].records.push(*r);
            out[s].dense.push(lid);
            out[s].global_refs.push(gref);
        }
        let total_blocks = out.iter().map(|s| s.num_blocks).sum();
        ShardedStream { shards: out, total_records: records.len(), total_blocks }
    }

    /// The shards, in shard-index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards (as requested at build time).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total records across all shards (= the input stream's length).
    pub fn total_records(&self) -> usize {
        self.total_records
    }

    /// Total distinct data blocks across all shards.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Per-shard distinct-block counts, in shard order (what sizes each
    /// shard's protocol instance).
    pub fn shard_blocks(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.num_blocks).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Generator, Profile};
    use crate::intern::BlockInterner;
    use dircc_types::BlockGeometry;

    fn stream() -> (Vec<TraceRecord>, Vec<u32>, usize) {
        let records: Vec<TraceRecord> =
            Generator::new(Profile::pops().with_total_refs(4_000), 5).collect();
        let interner = BlockInterner::from_records(records.iter(), BlockGeometry::PAPER);
        let dense = interner.dense_stream(&records);
        let n = interner.num_blocks();
        (records, dense, n)
    }

    #[test]
    fn shards_partition_the_stream_preserving_order() {
        let (records, dense, n) = stream();
        for shards in [1, 2, 3, 8] {
            let s =
                ShardedStream::build(&records, &dense, n, shards, |_, gid| gid as usize % shards);
            assert_eq!(s.num_shards(), shards);
            assert_eq!(s.total_records(), records.len());
            assert_eq!(s.total_blocks(), n);
            // Every record appears exactly once; global refs are strictly
            // increasing within a shard (order preserved) and merge back
            // to exactly 1..=len.
            let mut all: Vec<u64> = Vec::new();
            for sh in s.shards() {
                assert_eq!(sh.records.len(), sh.dense.len());
                assert_eq!(sh.records.len(), sh.global_refs.len());
                assert!(sh.global_refs.windows(2).all(|w| w[0] < w[1]));
                for (r, &g) in sh.records.iter().zip(&sh.global_refs) {
                    assert_eq!(*r, records[(g - 1) as usize], "record kept its identity");
                }
                all.extend(&sh.global_refs);
            }
            all.sort_unstable();
            assert_eq!(all, (1..=records.len() as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_local_ids_are_dense_and_first_appearance_ordered() {
        let (records, dense, n) = stream();
        let s = ShardedStream::build(&records, &dense, n, 3, |_, gid| gid as usize % 3);
        for (s_idx, sh) in s.shards().iter().enumerate() {
            let mut next = 0u32;
            for (r, &lid) in sh.records.iter().zip(&sh.dense) {
                if !r.is_data() {
                    continue;
                }
                assert!(lid <= next, "ids appear in first-appearance order");
                if lid == next {
                    next += 1;
                }
            }
            assert_eq!(next as usize, sh.num_blocks);
            // global_ids inverts the shard-local renaming: every data
            // record's global dense id is recoverable from its local id.
            assert_eq!(sh.global_ids.len(), sh.num_blocks);
            for (i, (r, &lid)) in sh.records.iter().zip(&sh.dense).enumerate() {
                if r.is_data() {
                    let gid = sh.global_ids[lid as usize];
                    assert_eq!(gid, dense[(sh.global_refs[i] - 1) as usize]);
                    assert_eq!(gid as usize % 3, s_idx, "router consistency");
                }
            }
        }
    }

    #[test]
    fn single_shard_is_the_identity_partition() {
        let (records, dense, n) = stream();
        let s = ShardedStream::build(&records, &dense, n, 1, |_, _| 0);
        assert_eq!(s.shards()[0].records, records);
        // With one shard, local ids equal global ids on data records.
        for (i, r) in records.iter().enumerate() {
            if r.is_data() {
                assert_eq!(s.shards()[0].dense[i], dense[i]);
            }
        }
        assert_eq!(s.shards()[0].num_blocks, n);
    }

    #[test]
    #[should_panic(expected = "pure function")]
    fn inconsistent_router_is_rejected() {
        let (records, dense, n) = stream();
        let mut flip = 0usize;
        let _ = ShardedStream::build(&records, &dense, n, 2, |_, _| {
            flip += 1;
            flip % 2
        });
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let (records, dense, n) = stream();
        let _ = ShardedStream::build(&records, &dense, n, 0, |_, gid| gid as usize);
    }
}

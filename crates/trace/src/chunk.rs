//! Chunked binary trace format v2 — corpus-scale streaming I/O.
//!
//! The flat v1 format ([`crate::codec`]) spends ~10 bytes per reference
//! and can only be consumed record-at-a-time. Replaying the paper's
//! multi-million-reference workloads from disk wants a format that
//! (a) streams with memory bounded by a *chunk*, not the trace, and
//! (b) exploits the spatial locality every real address trace has. The
//! v2 format does both: records are grouped into chunks, each chunk
//! stores its minimum address once as a *base*, and every record stores
//! only the LEB128-encoded delta from that base — so a chunk that stays
//! inside a few megabytes of address space pays 2–4 bytes per address
//! instead of up to 10.
//!
//! # On-disk layout
//!
//! ```text
//! magic    4 bytes  "DCCT"
//! version  1 byte   0x02
//! sections repeated:
//!   chunk:
//!     marker   u8      0x01
//!     records  u32 LE  number of records in the chunk (> 0)
//!     bytes    u32 LE  payload length in bytes
//!     base     u64 LE  minimum address in the chunk
//!     payload  `bytes` bytes, per record:
//!       tag    u8      kind in bits 0-1, flags in bits 4-5, others 0
//!       cpu    LEB128
//!       pid    LEB128
//!       delta  LEB128  addr - base
//!   footer (exactly once, last):
//!     marker   u8      0x00
//!     total    u64 LE  total records across all chunks
//!     checksum u64 LE  FNV-1a 64 over every section byte before the footer
//! ```
//!
//! The checksum covers all chunk bytes (markers, chunk headers and
//! payloads) in file order; the footer itself is not checksummed. Bytes
//! after the footer are an error. An empty trace is header + footer.
//!
//! # Streaming
//!
//! [`ChunkedReader`] implements [`ChunkSource`]: it decodes one chunk at
//! a time into a caller-supplied buffer, so peak resident trace memory is
//! bounded by the chunk size however long the trace is. The engine's
//! `run_chunked` consumes any `ChunkSource`; [`SliceChunks`] adapts an
//! in-memory slice and [`IterChunks`] batches a fallible record iterator
//! (e.g. a v1 [`BinaryReader`]) so both formats replay through one path.
//!
//! [`BinaryReader`]: crate::codec::BinaryReader

use crate::codec::{self, kind_from_byte, kind_to_byte, read_leb128, write_leb128, MAGIC};
use crate::record::{RecordFlags, TraceRecord};
use dircc_types::{Address, CpuId, ProcessId};
use std::io::{self, Read, Write};

/// Version byte of the chunked format.
pub const VERSION_V2: u8 = 2;
/// Default records per chunk: a few MiB of decoded records, small enough
/// to keep resident memory modest, large enough to amortize chunk headers.
pub const DEFAULT_CHUNK_RECORDS: usize = 64 * 1024;
/// Upper bound on records per chunk (keeps the u32 payload-length field
/// sound: a record encodes to at most 31 bytes).
pub const MAX_CHUNK_RECORDS: usize = 1 << 26;

const CHUNK_MARKER: u8 = 0x01;
const FOOTER_MARKER: u8 = 0x00;
/// Worst-case encoded record: tag + three 10-byte LEB128 fields.
const MAX_RECORD_BYTES: u64 = 31;
/// Best-case encoded record: tag + three 1-byte LEB128 fields.
const MIN_RECORD_BYTES: u64 = 4;
const TAG_KIND_MASK: u8 = 0x03;
const TAG_FLAGS_SHIFT: u32 = 4;
const TAG_KNOWN_MASK: u8 = 0x33;

/// FNV-1a 64-bit running checksum.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn value(self) -> u64 {
        self.0
    }
}

/// A bounded-memory source of trace chunks.
///
/// Implementors fill a caller-supplied buffer so the caller controls the
/// allocation and can reuse it across chunks; nothing proportional to the
/// whole trace is ever resident.
pub trait ChunkSource {
    /// Replaces `buf`'s contents with the next chunk of records. Returns
    /// `Ok(false)` (leaving `buf` empty) at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and reports corrupt input as `InvalidData`.
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>) -> io::Result<bool>;
}

impl<S: ChunkSource + ?Sized> ChunkSource for &mut S {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>) -> io::Result<bool> {
        (**self).next_chunk(buf)
    }
}

/// Streaming writer for the chunked v2 format.
///
/// Records are buffered and flushed a chunk at a time; [`finish`] writes
/// any partial final chunk plus the footer. An empty trace is valid.
///
/// [`finish`]: ChunkedWriter::finish
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    inner: W,
    header_written: bool,
    chunk: Vec<TraceRecord>,
    chunk_records: usize,
    payload: Vec<u8>,
    records: u64,
    chunks: u64,
    checksum: Fnv64,
}

impl<W: Write> ChunkedWriter<W> {
    /// Creates a writer with the default chunk size.
    pub fn new(inner: W) -> Self {
        ChunkedWriter::with_chunk_records(inner, DEFAULT_CHUNK_RECORDS)
    }

    /// Creates a writer flushing every `chunk_records` records.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is 0 or above [`MAX_CHUNK_RECORDS`].
    pub fn with_chunk_records(inner: W, chunk_records: usize) -> Self {
        assert!(
            (1..=MAX_CHUNK_RECORDS).contains(&chunk_records),
            "chunk size must be in 1..={MAX_CHUNK_RECORDS}"
        );
        ChunkedWriter {
            inner,
            header_written: false,
            chunk: Vec::new(),
            chunk_records,
            payload: Vec::new(),
            records: 0,
            chunks: 0,
            checksum: Fnv64::new(),
        }
    }

    fn ensure_header(&mut self) -> io::Result<()> {
        if !self.header_written {
            self.inner.write_all(&MAGIC)?;
            self.inner.write_all(&[VERSION_V2])?;
            self.header_written = true;
        }
        Ok(())
    }

    /// Appends one record (buffered; flushed on chunk boundaries).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, r: &TraceRecord) -> io::Result<()> {
        self.chunk.push(*r);
        self.records += 1;
        if self.chunk.len() >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every record from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_all<'a, I: IntoIterator<Item = &'a TraceRecord>>(
        &mut self,
        records: I,
    ) -> io::Result<()> {
        for r in records {
            self.write(r)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk.is_empty() {
            return Ok(());
        }
        self.ensure_header()?;
        let base = self.chunk.iter().map(|r| r.addr.raw()).min().unwrap_or(0);
        self.payload.clear();
        for r in &self.chunk {
            let tag = kind_to_byte(r.kind) | (r.flags.bits() << TAG_FLAGS_SHIFT);
            self.payload.push(tag);
            write_leb128(&mut self.payload, u64::from(r.cpu.raw()))?;
            write_leb128(&mut self.payload, u64::from(r.pid.raw()))?;
            write_leb128(&mut self.payload, r.addr.raw() - base)?;
        }
        let count = u32::try_from(self.chunk.len()).expect("chunk size bounded");
        let bytes = u32::try_from(self.payload.len()).expect("payload bounded by chunk size");
        let mut header = [0u8; 17];
        header[0] = CHUNK_MARKER;
        header[1..5].copy_from_slice(&count.to_le_bytes());
        header[5..9].copy_from_slice(&bytes.to_le_bytes());
        header[9..17].copy_from_slice(&base.to_le_bytes());
        self.checksum.update(&header);
        self.checksum.update(&self.payload);
        self.inner.write_all(&header)?;
        self.inner.write_all(&self.payload)?;
        self.chunk.clear();
        self.chunks += 1;
        Ok(())
    }

    /// Number of records written so far (including any still buffered).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Number of chunks flushed so far.
    pub fn chunks_written(&self) -> u64 {
        self.chunks
    }

    /// Flushes the final partial chunk, writes the footer, and returns the
    /// underlying writer. Must be called; dropping the writer without it
    /// leaves a truncated file the reader will reject.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_chunk()?;
        self.ensure_header()?;
        let mut footer = [0u8; 17];
        footer[0] = FOOTER_MARKER;
        footer[1..9].copy_from_slice(&self.records.to_le_bytes());
        footer[9..17].copy_from_slice(&self.checksum.value().to_le_bytes());
        self.inner.write_all(&footer)?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader for the chunked v2 format.
///
/// Decodes one chunk per [`ChunkSource::next_chunk`] call; verifies each
/// chunk's framing as it goes and the footer's record count and checksum
/// at the end.
#[derive(Debug)]
pub struct ChunkedReader<R: Read> {
    inner: R,
    payload: Vec<u8>,
    records_read: u64,
    checksum: Fnv64,
    done: bool,
}

impl<R: Read> ChunkedReader<R> {
    /// Creates a reader, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic or version is wrong (a flat v1
    /// trace gets a pointer to [`crate::codec::BinaryReader`]); propagates
    /// I/O errors.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let mut header = [0u8; 5];
        inner.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a dircc binary trace"));
        }
        if header[4] != VERSION_V2 {
            let hint = if header[4] == codec::VERSION {
                " (a flat v1 trace: read it with BinaryReader / `dircc stats`, \
                 or re-record it as v2 with `dircc record`)"
            } else {
                ""
            };
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}{hint}", header[4]),
            ));
        }
        Ok(ChunkedReader::from_body(inner))
    }

    /// Creates a reader positioned just past an already-consumed v2 header.
    pub(crate) fn from_body(inner: R) -> Self {
        ChunkedReader {
            inner,
            payload: Vec::new(),
            records_read: 0,
            checksum: Fnv64::new(),
            done: false,
        }
    }

    /// Adapts the reader into a record-at-a-time iterator.
    pub fn records(self) -> Records<Self> {
        Records::new(self)
    }

    fn read_footer(&mut self) -> io::Result<()> {
        let mut footer = [0u8; 16];
        self.inner.read_exact(&mut footer).map_err(truncated)?;
        let total = u64::from_le_bytes(footer[..8].try_into().unwrap());
        let checksum = u64::from_le_bytes(footer[8..].try_into().unwrap());
        if total != self.records_read {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("footer claims {total} records, stream held {}", self.records_read),
            ));
        }
        if checksum != self.checksum.value() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace checksum mismatch (corrupted file?)",
            ));
        }
        let mut trailing = [0u8; 1];
        if read_one(&mut self.inner, &mut trailing)?.is_some() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "trailing bytes after footer"));
        }
        self.done = true;
        Ok(())
    }

    fn decode_chunk(&mut self, buf: &mut Vec<TraceRecord>) -> io::Result<()> {
        let mut header = [0u8; 16];
        self.inner.read_exact(&mut header).map_err(truncated)?;
        let count = u32::from_le_bytes(header[..4].try_into().unwrap());
        let bytes = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let base = u64::from_le_bytes(header[8..].try_into().unwrap());
        if count == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty chunk"));
        }
        let (count64, bytes64) = (u64::from(count), u64::from(bytes));
        if bytes64 < count64 * MIN_RECORD_BYTES || bytes64 > count64 * MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk length {bytes} inconsistent with {count} records"),
            ));
        }
        self.checksum.update(&[CHUNK_MARKER]);
        self.checksum.update(&header);
        self.payload.clear();
        self.payload.resize(bytes as usize, 0);
        self.inner.read_exact(&mut self.payload).map_err(truncated)?;
        self.checksum.update(&self.payload);
        let mut cursor = &self.payload[..];
        buf.reserve(count as usize);
        for _ in 0..count {
            buf.push(decode_record(&mut cursor, base)?);
        }
        if !cursor.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "chunk payload longer than its records",
            ));
        }
        self.records_read += count64;
        Ok(())
    }
}

fn truncated(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        io::Error::new(io::ErrorKind::UnexpectedEof, "trace truncated mid-section (no footer)")
    } else {
        e
    }
}

/// Reads one byte, retrying `Interrupted`; `None` at EOF.
fn read_one<R: Read>(r: &mut R, buf: &mut [u8; 1]) -> io::Result<Option<u8>> {
    loop {
        match r.read(buf) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(buf[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn decode_record(cursor: &mut &[u8], base: u64) -> io::Result<TraceRecord> {
    let mut tag_buf = [0u8; 1];
    cursor.read_exact(&mut tag_buf).map_err(truncated)?;
    let tag = tag_buf[0];
    if tag & !TAG_KNOWN_MASK != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown bits in record tag {tag:#04x}"),
        ));
    }
    let kind = kind_from_byte(tag & TAG_KIND_MASK)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad access kind in tag"))?;
    // The flag bits are masked to exactly the defined set by TAG_KNOWN_MASK.
    let flags = RecordFlags::from_bits(tag >> TAG_FLAGS_SHIFT);
    let cpu = field_u16(cursor, "cpu")?;
    let pid = field_u16(cursor, "pid")?;
    let delta = read_leb128(cursor).map_err(truncated)?;
    let addr = base
        .checked_add(delta)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "address delta overflows u64"))?;
    Ok(TraceRecord {
        cpu: CpuId::new(cpu),
        pid: ProcessId::new(pid),
        kind,
        addr: Address::new(addr),
        flags,
    })
}

fn field_u16(cursor: &mut &[u8], name: &str) -> io::Result<u16> {
    let v = read_leb128(cursor).map_err(truncated)?;
    u16::try_from(v).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, format!("{name} id {v} overflows u16"))
    })
}

impl<R: Read> ChunkSource for ChunkedReader<R> {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>) -> io::Result<bool> {
        buf.clear();
        if self.done {
            return Ok(false);
        }
        let mut marker = [0u8; 1];
        match read_one(&mut self.inner, &mut marker)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "trace ends without a footer (truncated?)",
            )),
            Some(CHUNK_MARKER) => {
                self.decode_chunk(buf)?;
                Ok(true)
            }
            Some(FOOTER_MARKER) => {
                self.read_footer()?;
                Ok(false)
            }
            Some(m) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad section marker {m:#04x}"),
            )),
        }
    }
}

/// Adapts an in-memory record slice (or anything `AsRef<[TraceRecord]>`)
/// into a [`ChunkSource`], so in-memory and on-disk traces replay through
/// the same streaming entry points.
#[derive(Debug)]
pub struct SliceChunks<T> {
    records: T,
    pos: usize,
    chunk_records: usize,
}

impl<T: AsRef<[TraceRecord]>> SliceChunks<T> {
    /// Creates a source yielding `chunk_records` records per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is 0.
    pub fn new(records: T, chunk_records: usize) -> Self {
        assert!(chunk_records > 0, "chunk size must be positive");
        SliceChunks { records, pos: 0, chunk_records }
    }
}

impl<T: AsRef<[TraceRecord]>> ChunkSource for SliceChunks<T> {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>) -> io::Result<bool> {
        buf.clear();
        let records = self.records.as_ref();
        if self.pos >= records.len() {
            return Ok(false);
        }
        let end = (self.pos + self.chunk_records).min(records.len());
        buf.extend_from_slice(&records[self.pos..end]);
        self.pos = end;
        Ok(true)
    }
}

/// Batches a fallible record iterator (e.g. a v1
/// [`crate::codec::BinaryReader`]) into fixed-size chunks.
#[derive(Debug)]
pub struct IterChunks<I> {
    iter: I,
    chunk_records: usize,
    done: bool,
}

impl<I: Iterator<Item = io::Result<TraceRecord>>> IterChunks<I> {
    /// Creates a source yielding `chunk_records` records per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is 0.
    pub fn new(iter: I, chunk_records: usize) -> Self {
        assert!(chunk_records > 0, "chunk size must be positive");
        IterChunks { iter, chunk_records, done: false }
    }
}

impl<I: Iterator<Item = io::Result<TraceRecord>>> ChunkSource for IterChunks<I> {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>) -> io::Result<bool> {
        buf.clear();
        if self.done {
            return Ok(false);
        }
        while buf.len() < self.chunk_records {
            match self.iter.next() {
                Some(Ok(r)) => buf.push(r),
                Some(Err(e)) => {
                    self.done = true;
                    return Err(e);
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        Ok(!buf.is_empty())
    }
}

/// A trace reader for either on-disk format, chosen by sniffing the
/// version byte. Both variants stream through [`ChunkSource`].
#[derive(Debug)]
pub enum AnyTraceReader<R: Read> {
    /// A flat v1 trace, batched into chunks.
    V1(IterChunks<codec::BinaryReader<R>>),
    /// A chunked v2 trace.
    V2(ChunkedReader<R>),
}

impl<R: Read> AnyTraceReader<R> {
    /// The format version this reader is decoding (1 or 2).
    pub fn version(&self) -> u8 {
        match self {
            AnyTraceReader::V1(_) => codec::VERSION,
            AnyTraceReader::V2(_) => VERSION_V2,
        }
    }

    /// Adapts the reader into a record-at-a-time iterator.
    pub fn records(self) -> Records<Self> {
        Records::new(self)
    }
}

impl<R: Read> ChunkSource for AnyTraceReader<R> {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>) -> io::Result<bool> {
        match self {
            AnyTraceReader::V1(s) => s.next_chunk(buf),
            AnyTraceReader::V2(s) => s.next_chunk(buf),
        }
    }
}

/// Opens a binary trace of either version, validating the shared magic and
/// dispatching on the version byte.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic or an unknown version; propagates
/// I/O errors.
pub fn open_trace<R: Read>(mut inner: R) -> io::Result<AnyTraceReader<R>> {
    let mut header = [0u8; 5];
    inner.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a dircc binary trace"));
    }
    match header[4] {
        v if v == codec::VERSION => Ok(AnyTraceReader::V1(IterChunks::new(
            codec::BinaryReader::from_body(inner),
            DEFAULT_CHUNK_RECORDS,
        ))),
        VERSION_V2 => Ok(AnyTraceReader::V2(ChunkedReader::from_body(inner))),
        v => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {v} (known: 1 flat, 2 chunked)"),
        )),
    }
}

/// Record-at-a-time iterator over any [`ChunkSource`], buffering one chunk.
///
/// After an error the iterator fuses: the error is yielded once, then the
/// stream ends.
#[derive(Debug)]
pub struct Records<S> {
    source: S,
    buf: Vec<TraceRecord>,
    pos: usize,
    failed: bool,
}

impl<S: ChunkSource> Records<S> {
    /// Wraps a chunk source.
    pub fn new(source: S) -> Self {
        Records { source, buf: Vec::new(), pos: 0, failed: false }
    }
}

impl<S: ChunkSource> Iterator for Records<S> {
    type Item = io::Result<TraceRecord>;

    fn next(&mut self) -> Option<io::Result<TraceRecord>> {
        if self.failed {
            return None;
        }
        loop {
            if self.pos < self.buf.len() {
                let r = self.buf[self.pos];
                self.pos += 1;
                return Some(Ok(r));
            }
            self.pos = 0;
            match self.source.next_chunk(&mut self.buf) {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{BinaryReader, BinaryWriter};
    use crate::gen::{Generator, Profile};
    use dircc_types::AccessKind;

    fn trace(n: u64) -> Vec<TraceRecord> {
        Generator::new(Profile::pops().with_total_refs(n), 11).collect()
    }

    fn encode(records: &[TraceRecord], chunk: usize) -> Vec<u8> {
        let mut w = ChunkedWriter::with_chunk_records(Vec::new(), chunk);
        w.write_all(records).unwrap();
        w.finish().unwrap()
    }

    fn decode(bytes: &[u8]) -> io::Result<Vec<TraceRecord>> {
        ChunkedReader::new(bytes)?.records().collect()
    }

    #[test]
    fn v2_round_trips_across_chunk_sizes() {
        let records = trace(10_000);
        for chunk in [1, 7, 997, 4096, 100_000] {
            let bytes = encode(&records, chunk);
            assert_eq!(decode(&bytes).unwrap(), records, "chunk size {chunk}");
        }
    }

    #[test]
    fn v2_is_denser_than_v1() {
        let records = trace(50_000);
        let v2 = encode(&records, DEFAULT_CHUNK_RECORDS);
        let mut w = BinaryWriter::new(Vec::new());
        w.write_all(&records).unwrap();
        let v1 = w.finish().unwrap();
        assert!(
            v2.len() < v1.len(),
            "delta+varint should beat flat encoding: v2={} v1={}",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn empty_v2_trace_round_trips() {
        let bytes = encode(&[], 16);
        assert_eq!(bytes.len(), 5 + 17, "header + footer only");
        assert_eq!(decode(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn reader_memory_is_bounded_by_chunk_size() {
        let records = trace(20_000);
        let bytes = encode(&records, 512);
        let mut reader = ChunkedReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        let mut total = 0usize;
        while reader.next_chunk(&mut buf).unwrap() {
            total += buf.len();
            assert!(buf.len() <= 512, "chunk holds at most the chunk size");
        }
        assert_eq!(total, records.len());
        // The reusable buffer never grew past one chunk (plus Vec headroom).
        assert!(buf.capacity() < 2 * 512, "capacity {} not bounded", buf.capacity());
    }

    #[test]
    fn extreme_addresses_round_trip() {
        let mk = |addr: u64| {
            TraceRecord::new(CpuId::new(0), ProcessId::new(0), AccessKind::Read, Address::new(addr))
        };
        let records = vec![mk(u64::MAX), mk(0), mk(u64::MAX - 1), mk(1)];
        for chunk in [1, 2, 4] {
            let bytes = encode(&records, chunk);
            assert_eq!(decode(&bytes).unwrap(), records, "chunk size {chunk}");
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let records = trace(100);
        let bytes = encode(&records, 32);
        // Any strict prefix (past the 5-byte header) must fail: either
        // UnexpectedEof mid-section or a missing footer. Never a clean read.
        for cut in 5..bytes.len() {
            let result = decode(&bytes[..cut]);
            assert!(result.is_err(), "cut at {cut} of {} decoded cleanly", bytes.len());
        }
    }

    #[test]
    fn corruption_is_detected_by_the_checksum() {
        let records = trace(500);
        let bytes = encode(&records, 128);
        // Flip one payload bit in each chunk region; every flip must fail
        // decode (framing checks may fire first, checksum is the backstop).
        let mut corrupt = bytes.clone();
        let mid = bytes.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(decode(&corrupt).is_err(), "bit flip at {mid} undetected");
    }

    #[test]
    fn footer_record_count_mismatch_rejected() {
        let records = trace(50);
        let mut bytes = encode(&records, 16);
        let n = bytes.len();
        // The footer's total sits in the 8 bytes after the marker.
        bytes[n - 16] ^= 0x01;
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("footer claims"), "got {err}");
    }

    #[test]
    fn trailing_bytes_after_footer_rejected() {
        let mut bytes = encode(&trace(10), 4);
        bytes.push(0xaa);
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing bytes"), "got {err}");
    }

    #[test]
    fn v1_trace_rejected_by_v2_reader_with_hint() {
        let mut w = BinaryWriter::new(Vec::new());
        w.write_all(&trace(3)).unwrap();
        let bytes = w.finish().unwrap();
        let err = ChunkedReader::new(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("dircc record"), "hint should name the converter: {msg}");
    }

    #[test]
    fn bad_magic_and_unknown_version_rejected() {
        assert_eq!(
            ChunkedReader::new(&b"NOPE\x02"[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert_eq!(open_trace(&b"NOPE\x02"[..]).unwrap_err().kind(), io::ErrorKind::InvalidData);
        let err = open_trace(&b"DCCT\x63"[..]).unwrap_err();
        assert!(err.to_string().contains("known: 1 flat, 2 chunked"), "got {err}");
    }

    #[test]
    fn open_trace_reads_both_versions() {
        let records = trace(1_000);
        let mut w = BinaryWriter::new(Vec::new());
        w.write_all(&records).unwrap();
        let v1 = w.finish().unwrap();
        let v2 = encode(&records, 128);
        let r1 = open_trace(&v1[..]).unwrap();
        assert_eq!(r1.version(), 1);
        let got1: Vec<_> = r1.records().collect::<io::Result<_>>().unwrap();
        let r2 = open_trace(&v2[..]).unwrap();
        assert_eq!(r2.version(), 2);
        let got2: Vec<_> = r2.records().collect::<io::Result<_>>().unwrap();
        assert_eq!(got1, records);
        assert_eq!(got2, records);
    }

    #[test]
    fn slice_chunks_yield_everything_in_order() {
        let records = trace(1_000);
        let mut source = SliceChunks::new(&records[..], 64);
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while source.next_chunk(&mut buf).unwrap() {
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, records);
    }

    #[test]
    fn v1_reader_streams_through_iter_chunks() {
        let records = trace(1_000);
        let mut w = BinaryWriter::new(Vec::new());
        w.write_all(&records).unwrap();
        let bytes = w.finish().unwrap();
        let mut source = IterChunks::new(BinaryReader::new(&bytes[..]).unwrap(), 100);
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while source.next_chunk(&mut buf).unwrap() {
            assert!(buf.len() <= 100);
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, records);
    }

    #[test]
    fn unknown_tag_bits_rejected() {
        let mut bytes = encode(&trace(1), 1);
        // First record's tag byte sits right after the 5-byte file header
        // and 17-byte chunk header.
        bytes[22] |= 0x40;
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

//! # dircc-trace
//!
//! Multiprocessor address traces for the dircc coherence study.
//!
//! The original paper drove its simulations with ATUM traces of three
//! parallel applications (POPS, THOR, PERO) captured on a 4-CPU VAX 8350
//! running MACH. Those traces are not available, so this crate provides the
//! closest synthetic equivalent (see [`gen`]) together with everything a
//! trace-driven simulator needs:
//!
//! * [`TraceRecord`] — one memory reference: CPU, process, kind, address,
//!   plus flags marking lock accesses (needed by the paper's §5.2 spin-lock
//!   experiment) and operating-system references (Table 3 reports a user/sys
//!   split).
//! * [`codec`] — a compact binary format and a line-oriented text format,
//!   with streaming [`reader`](codec::BinaryReader)s and writers.
//! * [`chunk`] — the chunked v2 binary format for corpus-scale traces:
//!   per-chunk delta + LEB128 address compression, a checksummed footer,
//!   and [`ChunkSource`](chunk::ChunkSource) streaming with memory bounded
//!   by the chunk size rather than the trace length.
//! * [`spill`] — out-of-core shard partitioning: one streaming pass routes
//!   a [`ChunkSource`] into per-shard temp files that replay like
//!   [`ShardedStream`] shards, for traces larger than RAM.
//! * [`stats`] — reference-stream statistics reproducing Table 3.
//! * [`gen`] — the synthetic workload generator with calibrated profiles
//!   `pops`, `thor` and `pero`, plus primitive sharing kernels for tests.
//! * [`filter`] — stream adaptors, e.g. excluding lock-test reads (§5.2).
//! * [`store`] — generate-once shared storage: each (trace, filter) stream
//!   is materialized exactly once per process into an `Arc<[TraceRecord]>`
//!   and replayed by slice from any thread.
//! * [`intern`] — dense block ids: a [`BlockInterner`](intern::BlockInterner)
//!   renames a stream's sparse block addresses to first-appearance-order
//!   `u32` ids so replay state lives in flat vectors instead of hash maps.
//! * [`shard`] — block-sharded sub-streams: a
//!   [`ShardedStream`](shard::ShardedStream) partitions a dense-id stream
//!   into per-block shards (with shard-local renaming and global
//!   reference numbers) so one run can replay its shards in parallel and
//!   merge counters back bit-identically.
//! * [`soa`] — structure-of-arrays replay streams: a
//!   [`SoaStream`](soa::SoaStream) splits a dense-id stream into flat
//!   `kind`/`cache_idx`/`block_id`/`first_ref` arrays with the sharing
//!   model and address math precomputed, so the replay hot loop touches
//!   no [`TraceRecord`] at all.
//!
//! # Examples
//!
//! Generate a small POPS-like trace and count its references:
//!
//! ```
//! use dircc_trace::gen::{Generator, Profile};
//! use dircc_trace::stats::TraceStats;
//!
//! let mut g = Generator::new(Profile::pops().with_total_refs(10_000), 42);
//! let stats: TraceStats = g.by_ref().collect();
//! assert_eq!(stats.total(), 10_000);
//! assert!(stats.instr_fraction() > 0.4);
//! ```

pub mod chunk;
pub mod codec;
pub mod filter;
pub mod gen;
pub mod intern;
pub mod record;
pub mod shard;
pub mod sharing;
pub mod soa;
pub mod spill;
pub mod stats;
pub mod store;

pub use chunk::{
    open_trace, AnyTraceReader, ChunkSource, ChunkedReader, ChunkedWriter, Records, SliceChunks,
};
pub use intern::BlockInterner;
pub use record::{RecordFlags, TraceRecord};
pub use shard::{Shard, ShardedStream};
pub use soa::{ShardedSoa, SoaStream};
pub use spill::{SpilledShard, SpilledShards};
pub use store::{TraceFilter, TraceStore};

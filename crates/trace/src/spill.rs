//! Out-of-core shard partitioning: spilling per-shard sub-streams to disk.
//!
//! [`crate::shard::ShardedStream`] partitions an in-memory dense-id stream
//! for parallel replay. For traces larger than RAM that in-memory build is
//! exactly what streaming replay must avoid, so [`spill_shards`] performs
//! the same partition in one bounded-memory pass over a
//! [`ChunkSource`](crate::chunk::ChunkSource): every record is routed to
//! its shard and appended to that shard's temp file, carrying the same
//! three things a [`Shard`](crate::shard::Shard) row carries — the record,
//! its shard-local dense block id, and its 1-based global reference
//! number. The partition rules are identical by construction:
//!
//! * data records go to `route(record, global_id)`, which must be a pure
//!   function of the block;
//! * instruction fetches are dealt round-robin by global record index;
//! * shard-local ids are assigned in first-appearance order within the
//!   shard, and each shard keeps a `global_ids` inversion table;
//! * global reference numbers are strictly increasing within a shard, so
//!   they are stored as deltas (LEB128, always ≥ 1).
//!
//! Only the interner and the per-block `owner`/`local` tables are held in
//! memory — proportional to *distinct blocks*, not trace length. The spill
//! files are deleted when the [`SpilledShards`] value drops.
//!
//! # Spill-file entry format (internal, not a stable on-disk format)
//!
//! ```text
//! tag        u8      kind in bits 0-1, flags in bits 4-5
//! cpu        LEB128
//! pid        LEB128
//! addr       LEB128  raw address
//! local id   LEB128  shard-local dense block id (0 for instr fetches)
//! gref delta LEB128  this gref minus the previous entry's gref (≥ 1)
//! ```

use crate::chunk::ChunkSource;
use crate::codec::{kind_from_byte, kind_to_byte, read_leb128, write_leb128};
use crate::intern::BlockInterner;
use crate::record::{RecordFlags, TraceRecord};
use dircc_types::{Address, BlockGeometry, CpuId, ProcessId};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One spilled shard: a temp file of routed records plus the metadata
/// parallel replay needs to size and report on its protocol instance.
#[derive(Debug)]
pub struct SpilledShard {
    path: PathBuf,
    /// Distinct data blocks routed to this shard.
    pub num_blocks: usize,
    /// Maps each shard-local dense id back to the stream's global dense id.
    pub global_ids: Vec<u32>,
    /// Records routed to this shard.
    pub records: u64,
}

impl SpilledShard {
    /// Opens the shard's spill file for streaming replay.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening the file.
    pub fn entries(&self) -> io::Result<SpilledEntries> {
        Ok(SpilledEntries {
            inner: BufReader::new(File::open(&self.path)?),
            gref: 0,
            remaining: self.records,
        })
    }
}

/// A full out-of-core partition: per-shard spill files plus totals.
#[derive(Debug)]
pub struct SpilledShards {
    shards: Vec<SpilledShard>,
    total_records: u64,
    total_blocks: usize,
}

impl SpilledShards {
    /// The shards, in shard-index order.
    pub fn shards(&self) -> &[SpilledShard] {
        &self.shards
    }

    /// Number of shards (as requested at spill time).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total records across all shards (= the input stream's length).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Total distinct data blocks across all shards.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Per-shard distinct-block counts, in shard order (what sizes each
    /// shard's protocol instance).
    pub fn shard_blocks(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.num_blocks).collect()
    }
}

impl Drop for SpilledShards {
    fn drop(&mut self) {
        for s in &self.shards {
            let _ = std::fs::remove_file(&s.path);
        }
    }
}

/// Partitions a streamed trace into `shards` spill files under `dir`
/// (which must exist), interning blocks with `geometry` on the fly.
/// `route(record, global_id)` is called for every *data* record and must
/// return the same shard for every occurrence of a block; instruction
/// fetches are dealt round-robin by global record index — both exactly as
/// [`ShardedStream::build`](crate::shard::ShardedStream::build) does, so
/// spilled replay merges bit-identically with the in-memory path.
///
/// # Errors
///
/// Propagates I/O errors from the source and the spill files.
///
/// # Panics
///
/// Panics if `shards` is zero, the router returns an out-of-range shard,
/// or the router is not a pure function of the block.
pub fn spill_shards<S, F>(
    source: &mut S,
    geometry: BlockGeometry,
    shards: usize,
    dir: &Path,
    mut route: F,
) -> io::Result<SpilledShards>
where
    S: ChunkSource,
    F: FnMut(&TraceRecord, u32) -> usize,
{
    assert!(shards >= 1, "need at least one shard");
    struct Building {
        writer: BufWriter<File>,
        num_blocks: usize,
        global_ids: Vec<u32>,
        records: u64,
        last_gref: u64,
    }
    let paths: Vec<PathBuf> = (0..shards).map(|s| dir.join(format!("shard{s}.dccs"))).collect();
    let mut out: Vec<Building> = paths
        .iter()
        .map(|p| {
            Ok(Building {
                writer: BufWriter::new(File::create(p)?),
                num_blocks: 0,
                global_ids: Vec::new(),
                records: 0,
                last_gref: 0,
            })
        })
        .collect::<io::Result<_>>()?;
    // Cleanup guard: remove the files on any error path below.
    struct RemoveOnDrop<'a>(&'a [PathBuf], bool);
    impl Drop for RemoveOnDrop<'_> {
        fn drop(&mut self) {
            if self.1 {
                for p in self.0 {
                    let _ = std::fs::remove_file(p);
                }
            }
        }
    }
    let mut guard = RemoveOnDrop(&paths, true);

    const UNSEEN: u32 = u32::MAX;
    let mut interner = BlockInterner::new(geometry);
    let mut local: Vec<u32> = Vec::new();
    let mut owner: Vec<u32> = Vec::new();
    let mut buf: Vec<TraceRecord> = Vec::new();
    let mut index = 0u64;
    while source.next_chunk(&mut buf)? {
        for r in &buf {
            let gref = index + 1;
            let (s, lid) = if r.is_data() {
                let (gid, first) = interner.intern(geometry.block_of(r.addr));
                if first {
                    local.push(UNSEEN);
                    owner.push(UNSEEN);
                }
                let gid_us = gid as usize;
                let s = route(r, gid);
                assert!(s < shards, "router sent block {gid} to shard {s} of {shards}");
                if owner[gid_us] == UNSEEN {
                    owner[gid_us] = s as u32;
                    local[gid_us] =
                        u32::try_from(out[s].num_blocks).expect("more than u32::MAX shard blocks");
                    out[s].global_ids.push(gid);
                    out[s].num_blocks += 1;
                } else {
                    assert_eq!(
                        owner[gid_us], s as u32,
                        "router must be a pure function of the block (block {gid})"
                    );
                }
                (s, local[gid_us])
            } else {
                ((index % shards as u64) as usize, 0)
            };
            let b = &mut out[s];
            let tag = kind_to_byte(r.kind) | (r.flags.bits() << 4);
            b.writer.write_all(&[tag])?;
            write_leb128(&mut b.writer, u64::from(r.cpu.raw()))?;
            write_leb128(&mut b.writer, u64::from(r.pid.raw()))?;
            write_leb128(&mut b.writer, r.addr.raw())?;
            write_leb128(&mut b.writer, u64::from(lid))?;
            write_leb128(&mut b.writer, gref - b.last_gref)?;
            b.last_gref = gref;
            b.records += 1;
            index += 1;
        }
    }
    let mut shards_out = Vec::with_capacity(shards);
    for (b, p) in out.into_iter().zip(paths.iter()) {
        b.writer.into_inner().map_err(|e| e.into_error())?.sync_data().ok();
        shards_out.push(SpilledShard {
            path: p.clone(),
            num_blocks: b.num_blocks,
            global_ids: b.global_ids,
            records: b.records,
        });
    }
    guard.1 = false;
    Ok(SpilledShards {
        shards: shards_out,
        total_records: index,
        total_blocks: interner.num_blocks(),
    })
}

/// One decoded spill-file entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpilledEntry {
    /// The trace record, exactly as routed.
    pub record: TraceRecord,
    /// Shard-local dense block id (0 for instruction fetches).
    pub local_id: u32,
    /// 1-based global reference number.
    pub gref: u64,
}

/// Streaming iterator over one shard's spill file.
#[derive(Debug)]
pub struct SpilledEntries {
    inner: BufReader<File>,
    gref: u64,
    remaining: u64,
}

impl SpilledEntries {
    fn read_entry(&mut self) -> io::Result<Option<SpilledEntry>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        self.inner.read_exact(&mut tag)?;
        let tag = tag[0];
        let kind = kind_from_byte(tag & 0x03).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "bad access kind in spill entry")
        })?;
        let flags = RecordFlags::from_bits_checked(tag >> 4).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "bad flag bits in spill entry")
        })?;
        let cpu = read_leb128(&mut self.inner)?;
        let pid = read_leb128(&mut self.inner)?;
        let addr = read_leb128(&mut self.inner)?;
        let lid = read_leb128(&mut self.inner)?;
        let delta = read_leb128(&mut self.inner)?;
        let narrow = |v: u64, what: &str| {
            u16::try_from(v).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{what} overflows u16"))
            })
        };
        if delta == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "non-increasing gref in spill entry",
            ));
        }
        let lid = u32::try_from(lid)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "local id overflows u32"))?;
        self.gref += delta;
        self.remaining -= 1;
        Ok(Some(SpilledEntry {
            record: TraceRecord {
                cpu: CpuId::new(narrow(cpu, "cpu id")?),
                pid: ProcessId::new(narrow(pid, "pid")?),
                kind,
                addr: Address::new(addr),
                flags,
            },
            local_id: lid,
            gref: self.gref,
        }))
    }
}

impl Iterator for SpilledEntries {
    type Item = io::Result<SpilledEntry>;

    fn next(&mut self) -> Option<io::Result<SpilledEntry>> {
        self.read_entry().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::SliceChunks;
    use crate::gen::{Generator, Profile};
    use crate::shard::ShardedStream;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dircc_spill_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stream() -> Vec<TraceRecord> {
        Generator::new(Profile::pops().with_total_refs(4_000), 5).collect()
    }

    #[test]
    fn spilled_partition_matches_in_memory_sharding() {
        let records = stream();
        let geometry = BlockGeometry::PAPER;
        let interner = BlockInterner::from_records(&records, geometry);
        let dense = interner.dense_stream(&records);
        let dir = tmpdir("match");
        for shards in [1, 2, 3, 8] {
            let mem =
                ShardedStream::build(&records, &dense, interner.num_blocks(), shards, |_, gid| {
                    gid as usize % shards
                });
            let mut source = SliceChunks::new(&records[..], 257);
            let spilled =
                spill_shards(&mut source, geometry, shards, &dir, |_, gid| gid as usize % shards)
                    .unwrap();
            assert_eq!(spilled.num_shards(), shards);
            assert_eq!(spilled.total_records(), records.len() as u64);
            assert_eq!(spilled.total_blocks(), interner.num_blocks());
            assert_eq!(spilled.shard_blocks(), mem.shard_blocks());
            for (sp, sh) in spilled.shards().iter().zip(mem.shards()) {
                assert_eq!(sp.global_ids, sh.global_ids);
                assert_eq!(sp.records, sh.records.len() as u64);
                let entries: Vec<SpilledEntry> =
                    sp.entries().unwrap().collect::<io::Result<_>>().unwrap();
                assert_eq!(entries.len(), sh.records.len());
                for (e, ((r, &lid), &gref)) in
                    entries.iter().zip(sh.records.iter().zip(&sh.dense).zip(&sh.global_refs))
                {
                    assert_eq!(e.record, *r);
                    assert_eq!(e.gref, gref);
                    if r.is_data() {
                        assert_eq!(e.local_id, lid);
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_files_are_removed_on_drop() {
        let records = stream();
        let dir = tmpdir("drop");
        let mut source = SliceChunks::new(&records[..], 1024);
        let spilled =
            spill_shards(&mut source, BlockGeometry::PAPER, 3, &dir, |_, gid| gid as usize % 3)
                .unwrap();
        let paths: Vec<PathBuf> = spilled.shards().iter().map(|s| s.path.clone()).collect();
        assert!(paths.iter().all(|p| p.exists()));
        drop(spilled);
        assert!(paths.iter().all(|p| !p.exists()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "pure function")]
    fn inconsistent_router_is_rejected() {
        let records = stream();
        let dir = tmpdir("impure");
        let mut source = SliceChunks::new(&records[..], 1024);
        let mut flip = 0usize;
        let _ = spill_shards(&mut source, BlockGeometry::PAPER, 2, &dir, |_, _| {
            flip += 1;
            flip % 2
        });
    }
}

//! Per-block sharing analysis.
//!
//! The paper explains PERO's low coherence cost by "the fraction of
//! references to shared blocks in PERO is much smaller than in POPS and
//! THOR", and its Figure 1 argument rests on how many processes touch each
//! block. [`SharingProfile`] measures exactly those quantities from a raw
//! trace, independent of any protocol: which blocks are shared between
//! processes, how many processes touch each block, and what fraction of
//! data references target shared blocks.

use crate::record::TraceRecord;
use dircc_types::{BlockGeometry, ProcessId};
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct BlockInfo {
    /// Distinct processes that touched the block (small; kept sorted).
    processes: Vec<ProcessId>,
    reads: u64,
    writes: u64,
}

/// Accumulated per-block sharing statistics over a trace.
///
/// Sharing is classified *per process*, as the paper prescribes: "a block
/// is considered shared only if it is accessed by more than one process".
///
/// ```
/// use dircc_trace::sharing::SharingProfile;
/// use dircc_trace::TraceRecord;
/// use dircc_types::{AccessKind, Address, CpuId, ProcessId};
///
/// let mut s = SharingProfile::new();
/// let a = Address::new(0x100);
/// s.observe(&TraceRecord::new(CpuId::new(0), ProcessId::new(0), AccessKind::Read, a));
/// s.observe(&TraceRecord::new(CpuId::new(1), ProcessId::new(1), AccessKind::Read, a));
/// assert_eq!(s.shared_blocks(), 1);
/// assert_eq!(s.shared_ref_fraction(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SharingProfile {
    geometry: BlockGeometry,
    blocks: HashMap<u64, BlockInfo>,
    data_refs: u64,
}

impl SharingProfile {
    /// Creates an empty profile with the paper's block geometry.
    pub fn new() -> Self {
        Self::with_geometry(BlockGeometry::PAPER)
    }

    /// Creates an empty profile with an explicit geometry.
    pub fn with_geometry(geometry: BlockGeometry) -> Self {
        SharingProfile { geometry, blocks: HashMap::new(), data_refs: 0 }
    }

    /// Accounts for one record (instruction fetches are ignored).
    pub fn observe(&mut self, r: &TraceRecord) {
        if !r.is_data() {
            return;
        }
        self.data_refs += 1;
        let info = self.blocks.entry(self.geometry.block_of(r.addr).index()).or_default();
        if let Err(pos) = info.processes.binary_search(&r.pid) {
            info.processes.insert(pos, r.pid);
        }
        if r.kind.is_write() {
            info.writes += 1;
        } else {
            info.reads += 1;
        }
    }

    /// Total data references observed.
    pub fn data_refs(&self) -> u64 {
        self.data_refs
    }

    /// Number of distinct data blocks observed.
    pub fn total_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks touched by more than one process.
    pub fn shared_blocks(&self) -> usize {
        self.blocks.values().filter(|b| b.processes.len() > 1).count()
    }

    /// Fraction of data references that target shared blocks.
    pub fn shared_ref_fraction(&self) -> f64 {
        if self.data_refs == 0 {
            return 0.0;
        }
        let shared: u64 = self
            .blocks
            .values()
            .filter(|b| b.processes.len() > 1)
            .map(|b| b.reads + b.writes)
            .sum();
        shared as f64 / self.data_refs as f64
    }

    /// Fraction of data *writes* that target shared blocks (the refs that
    /// actually force coherence actions).
    pub fn shared_write_fraction(&self) -> f64 {
        let (shared, total) = self.blocks.values().fold((0u64, 0u64), |(s, t), b| {
            let is_shared = b.processes.len() > 1;
            (s + if is_shared { b.writes } else { 0 }, t + b.writes)
        });
        if total == 0 {
            0.0
        } else {
            shared as f64 / total as f64
        }
    }

    /// Histogram of blocks by sharer count: `histogram()[k]` = blocks
    /// touched by exactly `k+1` processes; the final bucket aggregates
    /// higher counts.
    pub fn sharer_histogram(&self, buckets: usize) -> Vec<u64> {
        let mut hist = vec![0u64; buckets.max(1)];
        for b in self.blocks.values() {
            let idx = (b.processes.len() - 1).min(hist.len() - 1);
            hist[idx] += 1;
        }
        hist
    }

    /// Mean number of processes touching a shared block.
    pub fn mean_sharers_of_shared(&self) -> f64 {
        let shared: Vec<usize> = self
            .blocks
            .values()
            .filter(|b| b.processes.len() > 1)
            .map(|b| b.processes.len())
            .collect();
        if shared.is_empty() {
            return 0.0;
        }
        shared.iter().sum::<usize>() as f64 / shared.len() as f64
    }
}

impl Default for SharingProfile {
    fn default() -> Self {
        SharingProfile::new()
    }
}

impl Extend<TraceRecord> for SharingProfile {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        for r in iter {
            self.observe(&r);
        }
    }
}

impl FromIterator<TraceRecord> for SharingProfile {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        let mut s = SharingProfile::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_types::{AccessKind, Address, CpuId};

    fn rec(pid: u16, kind: AccessKind, addr: u64) -> TraceRecord {
        TraceRecord::new(CpuId::new(pid), ProcessId::new(pid), kind, Address::new(addr))
    }

    #[test]
    fn classifies_private_and_shared() {
        let recs = vec![
            rec(0, AccessKind::Read, 0x100), // private to pid 0
            rec(0, AccessKind::Write, 0x100),
            rec(0, AccessKind::Read, 0x200), // shared
            rec(1, AccessKind::Write, 0x200),
            rec(1, AccessKind::Read, 0x300), // private to pid 1
        ];
        let s: SharingProfile = recs.into_iter().collect();
        assert_eq!(s.total_blocks(), 3);
        assert_eq!(s.shared_blocks(), 1);
        assert_eq!(s.data_refs(), 5);
        assert!((s.shared_ref_fraction() - 2.0 / 5.0).abs() < 1e-12);
        assert!((s.shared_write_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn instruction_fetches_ignored() {
        let mut s = SharingProfile::new();
        s.observe(&rec(0, AccessKind::InstrFetch, 0x100));
        assert_eq!(s.data_refs(), 0);
        assert_eq!(s.total_blocks(), 0);
    }

    #[test]
    fn sharer_histogram_buckets() {
        let recs = vec![
            rec(0, AccessKind::Read, 0x100),
            rec(0, AccessKind::Read, 0x200),
            rec(1, AccessKind::Read, 0x200),
            rec(0, AccessKind::Read, 0x300),
            rec(1, AccessKind::Read, 0x300),
            rec(2, AccessKind::Read, 0x300),
            rec(3, AccessKind::Read, 0x300),
        ];
        let s: SharingProfile = recs.into_iter().collect();
        let h = s.sharer_histogram(3);
        assert_eq!(h, vec![1, 1, 1], "1-sharer, 2-sharer and 4-sharer (capped) blocks");
        assert!((s.mean_sharers_of_shared() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn same_process_on_two_cpus_is_not_sharing() {
        // Migration: same pid from two CPUs — per-process sharing says no.
        let recs = vec![
            TraceRecord::new(CpuId::new(0), ProcessId::new(7), AccessKind::Read, Address::new(0)),
            TraceRecord::new(CpuId::new(1), ProcessId::new(7), AccessKind::Write, Address::new(0)),
        ];
        let s: SharingProfile = recs.into_iter().collect();
        assert_eq!(s.shared_blocks(), 0);
    }

    #[test]
    fn empty_profile_is_safe() {
        let s = SharingProfile::new();
        assert_eq!(s.shared_ref_fraction(), 0.0);
        assert_eq!(s.shared_write_fraction(), 0.0);
        assert_eq!(s.mean_sharers_of_shared(), 0.0);
        assert_eq!(s.sharer_histogram(4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn pero_shares_less_than_pops() {
        use crate::gen::{Generator, Profile};
        let frac = |p: Profile| -> f64 {
            let s: SharingProfile = Generator::new(p.with_total_refs(150_000), 3).collect();
            s.shared_ref_fraction()
        };
        let pops = frac(Profile::pops());
        let pero = frac(Profile::pero());
        assert!(
            pero < 0.5 * pops,
            "paper: PERO's shared-reference fraction is much smaller ({pero} vs {pops})"
        );
    }
}

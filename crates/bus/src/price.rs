//! Pricing event frequencies into bus cycles (the paper's §4.1 method).
//!
//! "The event frequencies are now weighted by their respective costs in bus
//! cycles to give the aggregate number of bus cycles used per reference. ...
//! Since the choice of the hardware model (i.e., cost per event) is
//! independent of the event frequencies, we need just one simulation run per
//! protocol to compute the event frequencies, and we can then vary costs for
//! different hardware models."
//!
//! [`price`] maps an [`EventCounters`] (one simulation run) plus a
//! [`CostModel`] and [`CostConfig`] (one hardware model) to a cycle
//! [`Breakdown`] — Table 5's rows. The per-protocol schemas reproduce four
//! internal identities of the paper exactly, which the tests assert:
//!
//! * Dir1NB's Table 5 cumulative cost is `6·(rm+wm)` cycles (0.3210/ref at
//!   Table 4 frequencies);
//! * Dir0B's non-overlapped directory cost equals `wh-blk-cln × 1` (0.0041);
//! * Dragon's cost is linear with transactions `rm+wm+wh-distrib` (the
//!   §5.1 `0.0336 + 0.0206·q` line);
//! * Dir0B's transactions are `rm+wm+wh-blk-cln` (the `0.0491 + 0.0114·q`
//!   line).

use crate::timing::CostModel;
use dircc_core::{EventCounters, ProtocolKind};

/// Hardware-model knobs beyond the bus cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Cycles a broadcast invalidation/write-back request occupies the bus
    /// (`b` in §6). The paper's base assumption: "broadcast invalidates,
    /// like a single invalidate, take 1 cycle".
    pub broadcast_cycles: f64,
    /// Fixed additional cycles per bus transaction (`q` in §5.1): "initial
    /// cache access, propagation delay through the bus controller, and bus
    /// arbitration".
    pub fixed_overhead_q: f64,
    /// Charge first-reference misses as memory accesses instead of
    /// excluding them (the paper excludes them; this knob supports
    /// ablations).
    pub charge_first_ref: bool,
}

impl CostConfig {
    /// The paper's base configuration: `b = 1`, `q = 0`, first references
    /// excluded.
    pub const PAPER: CostConfig =
        CostConfig { broadcast_cycles: 1.0, fixed_overhead_q: 0.0, charge_first_ref: false };

    /// Returns a copy with a different broadcast cost `b`.
    #[must_use]
    pub fn with_broadcast_cycles(mut self, b: f64) -> Self {
        self.broadcast_cycles = b;
        self
    }

    /// Returns a copy with a different fixed overhead `q`.
    #[must_use]
    pub fn with_overhead_q(mut self, q: f64) -> Self {
        self.fixed_overhead_q = q;
        self
    }
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig::PAPER
    }
}

/// Bus cycles by operation category — the rows of Table 5.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Memory (or non-local cache) block fetches, including the bare
    /// address sends that precede dirty write-backs.
    pub mem_access: f64,
    /// Dirty-block write-backs.
    pub write_back: f64,
    /// Invalidation and write-back-request delivery (directed messages and
    /// broadcasts).
    pub invalidate: f64,
    /// Write-throughs (WTI) or write updates (Dragon) — Table 5's
    /// "wt or wup" row.
    pub write_update: f64,
    /// Directory accesses that cannot be overlapped with memory accesses.
    pub dir_access: f64,
    /// Protocol maintenance traffic (Yen & Fu single-bit updates).
    pub aux: f64,
    /// Fixed per-transaction overhead (`q` cycles × transactions).
    pub overhead: f64,
}

impl Breakdown {
    /// Total bus cycles across every category.
    pub fn total(&self) -> f64 {
        self.mem_access
            + self.write_back
            + self.invalidate
            + self.write_update
            + self.dir_access
            + self.aux
            + self.overhead
    }

    /// Scales every category by `1 / refs` to express cycles per reference.
    #[must_use]
    pub fn per_ref(&self, refs: u64) -> Breakdown {
        if refs == 0 {
            return Breakdown::default();
        }
        let d = refs as f64;
        Breakdown {
            mem_access: self.mem_access / d,
            write_back: self.write_back / d,
            invalidate: self.invalidate / d,
            write_update: self.write_update / d,
            dir_access: self.dir_access / d,
            aux: self.aux / d,
            overhead: self.overhead / d,
        }
    }

    /// Category rows as `(label, cycles)` pairs in Table 5 order.
    pub fn rows(&self) -> [(&'static str, f64); 7] {
        [
            ("mem access", self.mem_access),
            ("write-back", self.write_back),
            ("invalidate", self.invalidate),
            ("wt or wup", self.write_update),
            ("dir access", self.dir_access),
            ("aux", self.aux),
            ("overhead q", self.overhead),
        ]
    }
}

/// Counts the bus transactions a protocol's events generate (for the §5.1
/// fixed-overhead model and Figure 5's cycles-per-transaction metric).
///
/// Dragon's transactions are `rm + wm + wh-distrib` and Dir0B's are
/// `rm + wm + wh-blk-cln`, matching the coefficients of the paper's §5.1
/// sensitivity lines.
pub fn transactions(kind: ProtocolKind, c: &EventCounters) -> u64 {
    let misses = c.rm() + c.wm();
    match kind {
        ProtocolKind::Wti => misses + c.wh(),
        ProtocolKind::Dragon | ProtocolKind::Firefly => misses + c.wh_distrib(),
        ProtocolKind::WriteOnce => misses + c.wh_blk_cln(),
        ProtocolKind::Berkeley => misses + c.wh_blk_cln(),
        // MESI: exclusive upgrades are silent; only shared upgrades and
        // misses touch the bus.
        ProtocolKind::Mesi => misses + c.wh_distrib(),
        ProtocolKind::DirNb { pointers: 1 } => misses,
        ProtocolKind::YenFu => misses + c.wh_distrib() + c.aux_messages(),
        // Remaining directory schemes: a write hit to a clean block is a
        // directory transaction.
        _ => misses + c.wh_blk_cln(),
    }
}

/// Prices one protocol's event frequencies under one hardware model.
///
/// Returns total cycles over the whole trace; divide with
/// [`Breakdown::per_ref`] for the paper's bus-cycles-per-reference metric.
pub fn price(
    kind: ProtocolKind,
    n_caches: usize,
    c: &EventCounters,
    m: &CostModel,
    cfg: &CostConfig,
) -> Breakdown {
    let mut b = Breakdown::default();
    let first_refs = c.rm_first_ref() + c.wm_first_ref();
    if cfg.charge_first_ref {
        b.mem_access += (first_refs * u64::from(m.mem_access)) as f64;
    }
    let clean_or_mem_misses = c.rm_blk_cln() + c.rm_blk_mem() + c.wm_blk_cln() + c.wm_blk_mem();
    let dirty_misses = c.rm_blk_drty() + c.wm_blk_drty();

    match kind {
        ProtocolKind::Wti => {
            // Every write is transmitted to main memory; misses fetch from
            // memory (which is never stale); snooped invalidations are free.
            b.mem_access += (clean_or_mem_misses * u64::from(m.mem_access)) as f64;
            b.write_update += (c.writes() * u64::from(m.write_word)) as f64;
        }
        ProtocolKind::Dragon | ProtocolKind::Firefly => {
            // Holders supply the block cache-to-cache; memory supplies
            // otherwise. Writes to shared blocks broadcast one-word updates.
            let cache_supplied =
                c.rm_blk_cln() + c.rm_blk_drty() + c.wm_blk_cln() + c.wm_blk_drty();
            let memory_supplied = c.rm_blk_mem() + c.wm_blk_mem();
            b.mem_access += (cache_supplied * u64::from(m.cache_access)
                + memory_supplied * u64::from(m.mem_access)) as f64;
            b.write_update += (c.updates() * u64::from(m.write_word)) as f64;
        }
        ProtocolKind::WriteOnce => {
            // Misses fetch from memory or the dirty owner (whose transfer
            // doubles as the write-back); first writes to clean blocks are
            // one-word write-throughs; snooped invalidations are free.
            b.mem_access += (clean_or_mem_misses * u64::from(m.mem_access)) as f64;
            b.write_back += (c.write_backs() * u64::from(m.write_back)) as f64;
            b.mem_access += (dirty_misses * u64::from(m.addr_send)) as f64;
            b.write_update += (c.wh_blk_cln() * u64::from(m.write_word)) as f64;
        }
        ProtocolKind::Mesi => {
            // Misses are supplied cache-to-cache when any copy exists
            // (Illinois), from memory otherwise. A Modified supplier's
            // write-back *rides the same transfer* (memory snarfs it), so
            // no separate write-back is charged. Shared write hits cost
            // one upgrade transaction; exclusive upgrades are free.
            let cache_supplied =
                c.rm_blk_cln() + c.rm_blk_drty() + c.wm_blk_cln() + c.wm_blk_drty();
            let memory_supplied = c.rm_blk_mem() + c.wm_blk_mem();
            b.mem_access += (cache_supplied * u64::from(m.cache_access)
                + memory_supplied * u64::from(m.mem_access)) as f64;
            b.invalidate += (c.control_messages() * u64::from(m.invalidate)) as f64;
        }
        ProtocolKind::Berkeley => {
            // The owner supplies dirty blocks with no write-back; a write
            // hit to any clean/shared block is one bus invalidation.
            let memory_supplied = clean_or_mem_misses;
            b.mem_access += (memory_supplied * u64::from(m.mem_access)
                + dirty_misses * u64::from(m.cache_access)) as f64;
            b.write_back += (c.write_backs() * u64::from(m.write_back)) as f64;
            b.invalidate += (c.wh_blk_cln() * u64::from(m.invalidate)) as f64;
        }
        // The directory family: DirNb (any i), Dir0B, DirB, CodedSet,
        // Tang, YenFu.
        _ => {
            b.mem_access += (clean_or_mem_misses * u64::from(m.mem_access)) as f64;
            // A dirty miss starts with a bare address send to the
            // directory before the flush request and write-back.
            b.mem_access += (dirty_misses * u64::from(m.addr_send)) as f64;
            b.write_back += (c.write_backs() * u64::from(m.write_back)) as f64;
            b.invalidate += (c.control_messages() * u64::from(m.invalidate)) as f64
                + c.broadcasts() as f64 * cfg.broadcast_cycles;
            b.dir_access += dir_check_cycles(kind, n_caches, c, m);
            b.aux += (c.aux_messages() * u64::from(m.invalidate)) as f64;
        }
    }
    b.overhead = cfg.fixed_overhead_q * transactions(kind, c) as f64;
    b
}

/// Non-overlapped directory-check cycles for the directory family.
fn dir_check_cycles(kind: ProtocolKind, n_caches: usize, c: &EventCounters, m: &CostModel) -> f64 {
    match kind {
        // Dir1NB: the sole copy means a write hit to a clean block needs no
        // directory consultation ("directory accesses can always be
        // overlapped with memory accesses in Dir1NB").
        ProtocolKind::DirNb { pointers: 1 } => 0.0,
        // Yen & Fu: the single bit answers the exclusive case locally; only
        // genuinely shared write hits consult the directory.
        ProtocolKind::YenFu => (c.wh_distrib() * u64::from(m.dir_check)) as f64,
        // Tang: a lookup must search all n duplicate cache directories
        // (modelled as a sequential search — pessimistic for Tang).
        ProtocolKind::Tang => (c.wh_blk_cln() * u64::from(m.dir_check)) as f64 * n_caches as f64,
        // Everyone else pays one check per write hit to a clean block.
        _ => (c.wh_blk_cln() * u64::from(m.dir_check)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_core::{Event, MissContext, Outcome, WriteHitContext};

    /// Builds counters by observing `n` copies of an outcome.
    fn bulk(c: &mut EventCounters, n: u64, o: Outcome) {
        for _ in 0..n {
            c.observe(&o);
        }
    }

    /// Reconstructs Table 4's Dir1NB event frequencies (per 10 000
    /// references) and checks the paper's cumulative pipelined cost of
    /// 0.3210 bus cycles per reference.
    #[test]
    fn dir1nb_reproduces_paper_cumulative() {
        let mut c = EventCounters::new();
        bulk(&mut c, 4972, Outcome::quiet(Event::Instr));
        bulk(&mut c, 3432, Outcome::quiet(Event::ReadHit));
        bulk(
            &mut c,
            478,
            Outcome::quiet(Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }))
                .with_control(1),
        );
        bulk(
            &mut c,
            40,
            Outcome::quiet(Event::ReadMiss(MissContext::DirtyElsewhere))
                .with_control(1)
                .with_write_back(),
        );
        bulk(&mut c, 32, Outcome::quiet(Event::ReadMiss(MissContext::FirstRef)));
        bulk(&mut c, 1019, Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)));
        bulk(
            &mut c,
            8,
            Outcome::quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 1 }))
                .with_control(1),
        );
        bulk(
            &mut c,
            9,
            Outcome::quiet(Event::WriteMiss(MissContext::DirtyElsewhere))
                .with_control(1)
                .with_write_back(),
        );
        bulk(&mut c, 8, Outcome::quiet(Event::WriteMiss(MissContext::FirstRef)));
        let kind = ProtocolKind::DirNb { pointers: 1 };
        let b = price(kind, 4, &c, &CostModel::pipelined(), &CostConfig::PAPER);
        let per_ref = b.total() / c.total() as f64;
        assert!(
            (per_ref - 0.3210).abs() < 0.0015,
            "Dir1NB pipelined cycles/ref {per_ref} vs paper 0.3210"
        );
        // First refs contribute nothing by default.
        assert_eq!(b.dir_access, 0.0);
    }

    /// Dragon at Table 4 frequencies should price near the paper's 0.0336,
    /// and its q-line slope must be the transaction rate rm+wm+wh-distrib.
    #[test]
    fn dragon_reproduces_paper_line() {
        let mut c = EventCounters::new();
        bulk(&mut c, 49_720, Outcome::quiet(Event::Instr));
        bulk(&mut c, 39_200, Outcome::quiet(Event::ReadHit));
        bulk(
            &mut c,
            140,
            Outcome {
                cache_supplied: true,
                ..Outcome::quiet(Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }))
            },
        );
        bulk(
            &mut c,
            170,
            Outcome {
                cache_supplied: true,
                ..Outcome::quiet(Event::ReadMiss(MissContext::DirtyElsewhere))
            },
        );
        bulk(&mut c, 320, Outcome::quiet(Event::ReadMiss(MissContext::FirstRef)));
        bulk(&mut c, 8620, Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)));
        bulk(
            &mut c,
            1740,
            Outcome {
                updates: 1,
                ..Outcome::quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 }))
            },
        );
        bulk(
            &mut c,
            10,
            Outcome {
                updates: 1,
                cache_supplied: true,
                ..Outcome::quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 1 }))
            },
        );
        bulk(
            &mut c,
            10,
            Outcome {
                updates: 1,
                cache_supplied: true,
                ..Outcome::quiet(Event::WriteMiss(MissContext::DirtyElsewhere))
            },
        );
        bulk(&mut c, 80, Outcome::quiet(Event::WriteMiss(MissContext::FirstRef)));
        let b = price(ProtocolKind::Dragon, 4, &c, &CostModel::pipelined(), &CostConfig::PAPER);
        let per_ref = b.total() / c.total() as f64;
        assert!(
            (per_ref - 0.0336).abs() < 0.002,
            "Dragon pipelined cycles/ref {per_ref} vs paper 0.0336"
        );
        // §5.1: transactions per reference ≈ 0.0206.
        let t = transactions(ProtocolKind::Dragon, &c) as f64 / c.total() as f64;
        assert!((t - 0.0206).abs() < 0.0005, "Dragon transactions/ref {t}");
    }

    #[test]
    fn q_overhead_is_linear_in_transactions() {
        let mut c = EventCounters::new();
        bulk(
            &mut c,
            100,
            Outcome::quiet(Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 })),
        );
        let m = CostModel::pipelined();
        let base = price(ProtocolKind::Dir0B, 4, &c, &m, &CostConfig::PAPER);
        let with_q = price(ProtocolKind::Dir0B, 4, &c, &m, &CostConfig::PAPER.with_overhead_q(2.0));
        assert!((with_q.total() - base.total() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_cost_parameterizes_dir0b() {
        let mut c = EventCounters::new();
        bulk(
            &mut c,
            10,
            Outcome {
                used_broadcast: true,
                ..Outcome::quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 2 }))
            },
        );
        let m = CostModel::pipelined();
        let b1 = price(ProtocolKind::Dir0B, 4, &c, &m, &CostConfig::PAPER);
        let b5 =
            price(ProtocolKind::Dir0B, 4, &c, &m, &CostConfig::PAPER.with_broadcast_cycles(5.0));
        assert!((b5.invalidate - b1.invalidate - 40.0).abs() < 1e-9);
        assert!((b1.dir_access - 10.0).abs() < 1e-9, "one dir check per wh-blk-cln");
    }

    #[test]
    fn yenfu_skips_exclusive_dir_checks_but_pays_aux() {
        let mut c = EventCounters::new();
        bulk(&mut c, 7, Outcome::quiet(Event::WriteHit(WriteHitContext::CleanExclusive)));
        bulk(
            &mut c,
            3,
            Outcome::quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 }))
                .with_control(1),
        );
        let mut o = Outcome::quiet(Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
        o.aux_messages = 1;
        bulk(&mut c, 4, o);
        let m = CostModel::pipelined();
        let yf = price(ProtocolKind::YenFu, 4, &c, &m, &CostConfig::PAPER);
        let fm = price(ProtocolKind::DirNb { pointers: 4 }, 4, &c, &m, &CostConfig::PAPER);
        assert!((yf.dir_access - 3.0).abs() < 1e-9, "only shared write hits pay");
        assert!((fm.dir_access - 10.0).abs() < 1e-9, "full map pays for all clean hits");
        assert!((yf.aux - 4.0).abs() < 1e-9);
        assert!((fm.aux - 4.0).abs() < 1e-9, "aux priced whenever reported");
    }

    #[test]
    fn tang_pays_n_fold_directory_search() {
        let mut c = EventCounters::new();
        bulk(&mut c, 5, Outcome::quiet(Event::WriteHit(WriteHitContext::CleanExclusive)));
        let m = CostModel::pipelined();
        let tang = price(ProtocolKind::Tang, 8, &c, &m, &CostConfig::PAPER);
        assert!((tang.dir_access - 40.0).abs() < 1e-9);
    }

    #[test]
    fn berkeley_has_no_dir_cost_and_cache_supplies_dirty() {
        let mut c = EventCounters::new();
        bulk(
            &mut c,
            10,
            Outcome {
                cache_supplied: true,
                ..Outcome::quiet(Event::ReadMiss(MissContext::DirtyElsewhere))
            },
        );
        bulk(&mut c, 4, Outcome::quiet(Event::WriteHit(WriteHitContext::CleanExclusive)));
        let m = CostModel::pipelined();
        let b = price(ProtocolKind::Berkeley, 4, &c, &m, &CostConfig::PAPER);
        assert_eq!(b.dir_access, 0.0);
        assert!((b.mem_access - 50.0).abs() < 1e-9, "dirty misses at cache-access cost");
        assert_eq!(b.write_back, 0.0);
        assert!((b.invalidate - 4.0).abs() < 1e-9, "write hits pay one bus invalidation");
    }

    #[test]
    fn first_refs_excluded_by_default_chargeable_on_request() {
        let mut c = EventCounters::new();
        bulk(&mut c, 10, Outcome::quiet(Event::ReadMiss(MissContext::FirstRef)));
        let m = CostModel::pipelined();
        let excl = price(ProtocolKind::Dir0B, 4, &c, &m, &CostConfig::PAPER);
        assert_eq!(excl.total(), 0.0);
        let cfg = CostConfig { charge_first_ref: true, ..CostConfig::PAPER };
        let incl = price(ProtocolKind::Dir0B, 4, &c, &m, &cfg);
        assert!((incl.mem_access - 50.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_rows_and_per_ref() {
        let b = Breakdown { mem_access: 10.0, write_back: 4.0, ..Breakdown::default() };
        assert!((b.total() - 14.0).abs() < 1e-12);
        let pr = b.per_ref(100);
        assert!((pr.mem_access - 0.1).abs() < 1e-12);
        assert!((pr.total() - 0.14).abs() < 1e-12);
        assert_eq!(b.rows()[0].0, "mem access");
        assert_eq!(Breakdown::default().per_ref(0).total(), 0.0);
    }

    #[test]
    fn wti_prices_every_write() {
        let mut c = EventCounters::new();
        bulk(&mut c, 6, Outcome::quiet(Event::WriteHit(WriteHitContext::CleanExclusive)));
        bulk(&mut c, 2, Outcome::quiet(Event::WriteMiss(MissContext::FirstRef)));
        bulk(
            &mut c,
            2,
            Outcome::quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 1 })),
        );
        let m = CostModel::pipelined();
        let b = price(ProtocolKind::Wti, 4, &c, &m, &CostConfig::PAPER);
        assert!((b.write_update - 10.0).abs() < 1e-9, "all 10 writes write through");
        assert!((b.mem_access - 10.0).abs() < 1e-9, "2 non-first write misses fetch");
    }
}

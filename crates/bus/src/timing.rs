//! Fundamental bus-operation timings (Table 1) and the derived
//! per-operation cost models (Table 2).

use core::fmt;

/// Table 1: "Timing for fundamental bus operations", in bus cycles.
///
/// | Operation | Cycles |
/// |---|---|
/// | Transfer 1 data word | 1 |
/// | Invalidate | 1 |
/// | Wait for Directory | 2 |
/// | Wait for Memory | 2 |
/// | Wait for Cache | 1 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusTiming {
    /// Cycles to transfer one data word.
    pub transfer_word: u32,
    /// Cycles for an invalidation message.
    pub invalidate: u32,
    /// Cycles waiting for a directory access.
    pub wait_directory: u32,
    /// Cycles waiting for a memory access.
    pub wait_memory: u32,
    /// Cycles waiting for a non-local cache access.
    pub wait_cache: u32,
    /// Words per block (the paper uses 4-word blocks throughout).
    pub block_words: u32,
}

impl BusTiming {
    /// The paper's Table 1 values.
    pub const PAPER: BusTiming = BusTiming {
        transfer_word: 1,
        invalidate: 1,
        wait_directory: 2,
        wait_memory: 2,
        wait_cache: 1,
        block_words: 4,
    };
}

impl Default for BusTiming {
    fn default() -> Self {
        BusTiming::PAPER
    }
}

/// Which of the paper's two bus organizations is modelled (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// "A pipelined bus model that has separate data and address paths";
    /// the bus is not held during memory access.
    Pipelined,
    /// "A non-pipelined bus that has to multiplex the address and data on
    /// the same bus lines"; the bus is held during the access.
    NonPipelined,
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Pipelined => f.write_str("pipelined"),
            BusKind::NonPipelined => f.write_str("non-pipelined"),
        }
    }
}

/// Table 2: per-access-type bus-cycle costs, derived from a [`BusTiming`]
/// and a [`BusKind`].
///
/// ```
/// use dircc_bus::{BusKind, BusTiming, CostModel};
///
/// let p = CostModel::new(BusKind::Pipelined, BusTiming::PAPER);
/// assert_eq!(p.mem_access, 5); // 1 addr + 4 data
/// let np = CostModel::new(BusKind::NonPipelined, BusTiming::PAPER);
/// assert_eq!(np.mem_access, 7); // addr + 2 wait + 4 data
/// assert_eq!(np.cache_access, 6); // cache wait is one cycle shorter
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Which bus this model describes.
    pub kind: BusKind,
    /// Memory access (read a block from main memory).
    pub mem_access: u32,
    /// Non-local cache access (read a block from another cache).
    pub cache_access: u32,
    /// Write-back of a dirty block ("the requesting cache also receives
    /// it": data counted here, not under memory access).
    pub write_back: u32,
    /// One-word write-through or write-update.
    pub write_word: u32,
    /// A directory check that cannot be overlapped with a memory access.
    pub dir_check: u32,
    /// Sending an address alone (the miss request that precedes a
    /// write-back when a directory finds the block dirty elsewhere).
    pub addr_send: u32,
    /// One invalidation message.
    pub invalidate: u32,
}

impl CostModel {
    /// Derives the Table 2 cost model for `kind` from fundamental timings.
    pub fn new(kind: BusKind, t: BusTiming) -> Self {
        let data = t.block_words * t.transfer_word;
        match kind {
            BusKind::Pipelined => CostModel {
                kind,
                // 1 cycle to send the address, block_words to get the data;
                // the bus is not held during the access.
                mem_access: t.transfer_word + data,
                cache_access: t.transfer_word + data,
                // First cycle sends address + first word; the rest follow.
                write_back: data,
                write_word: t.transfer_word,
                dir_check: t.transfer_word,
                addr_send: t.transfer_word,
                invalidate: t.invalidate,
            },
            BusKind::NonPipelined => CostModel {
                kind,
                // The bus is held during the access.
                mem_access: t.transfer_word + t.wait_memory + data,
                cache_access: t.transfer_word + t.wait_cache + data,
                write_back: data,
                // 1 cycle address + 1 cycle data word.
                write_word: 2 * t.transfer_word,
                // 1 cycle address + directory wait.
                dir_check: t.transfer_word + t.wait_directory,
                addr_send: t.transfer_word,
                invalidate: t.invalidate,
            },
        }
    }

    /// The paper's pipelined bus (Table 2 left column).
    pub fn pipelined() -> Self {
        Self::new(BusKind::Pipelined, BusTiming::PAPER)
    }

    /// The paper's non-pipelined bus (Table 2 right column).
    pub fn non_pipelined() -> Self {
        Self::new(BusKind::NonPipelined, BusTiming::PAPER)
    }

    /// Both paper bus models, pipelined first (the order of Figures 2-3's
    /// bar endpoints).
    pub fn paper_pair() -> [CostModel; 2] {
        [Self::pipelined(), Self::non_pipelined()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_pipelined_column() {
        let m = CostModel::pipelined();
        assert_eq!(m.mem_access, 5);
        assert_eq!(m.cache_access, 5);
        assert_eq!(m.write_back, 4);
        assert_eq!(m.write_word, 1);
        assert_eq!(m.dir_check, 1);
        assert_eq!(m.addr_send, 1);
        assert_eq!(m.invalidate, 1);
    }

    #[test]
    fn table2_non_pipelined_column() {
        let m = CostModel::non_pipelined();
        assert_eq!(m.mem_access, 7);
        assert_eq!(m.cache_access, 6);
        assert_eq!(m.write_back, 4);
        assert_eq!(m.write_word, 2);
        assert_eq!(m.dir_check, 3);
        assert_eq!(m.invalidate, 1);
    }

    #[test]
    fn wider_blocks_raise_transfer_costs() {
        let t = BusTiming { block_words: 8, ..BusTiming::PAPER };
        let m = CostModel::new(BusKind::Pipelined, t);
        assert_eq!(m.mem_access, 9);
        assert_eq!(m.write_back, 8);
    }

    #[test]
    fn paper_pair_order() {
        let [p, np] = CostModel::paper_pair();
        assert_eq!(p.kind, BusKind::Pipelined);
        assert_eq!(np.kind, BusKind::NonPipelined);
        assert!(p.mem_access < np.mem_access);
    }

    #[test]
    fn bus_kind_display() {
        assert_eq!(BusKind::Pipelined.to_string(), "pipelined");
        assert_eq!(BusKind::NonPipelined.to_string(), "non-pipelined");
    }
}

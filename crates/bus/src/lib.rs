//! # dircc-bus
//!
//! Bus timing and cost models from *"An Evaluation of Directory Schemes
//! for Cache Coherence"* (ISCA 1988), §4.3.
//!
//! The paper's performance metric is *bus cycles per memory reference*: a
//! protocol's event frequencies (measured once by `dircc-sim`) weighted by
//! per-event costs from a hardware model. This crate holds the hardware
//! half:
//!
//! * [`BusTiming`] — Table 1's fundamental operation timings;
//! * [`CostModel`] — Table 2's derived per-access costs for the
//!   [`BusKind::Pipelined`] and [`BusKind::NonPipelined`] buses;
//! * [`CostConfig`] — the `b` (broadcast cost, §6) and `q` (fixed
//!   per-transaction overhead, §5.1) knobs;
//! * [`price`] — the per-protocol cost schemas producing a Table 5
//!   [`Breakdown`];
//! * [`transactions`] — bus-transaction counting for Figure 5 and the
//!   §5.1 sensitivity lines.
//!
//! # Examples
//!
//! ```
//! use dircc_bus::{price, CostConfig, CostModel};
//! use dircc_core::{EventCounters, Event, MissContext, Outcome, ProtocolKind};
//!
//! let mut c = EventCounters::new();
//! c.observe(&Outcome::quiet(Event::ReadMiss(MissContext::MemoryOnly)));
//! let b = price(ProtocolKind::Dir0B, 4, &c, &CostModel::pipelined(), &CostConfig::PAPER);
//! assert_eq!(b.total(), 5.0); // one 5-cycle memory access
//! ```

pub mod network;
mod price;
mod timing;

pub use network::{network_cost_per_ref, MeshModel};
pub use price::{price, transactions, Breakdown, CostConfig};
pub use timing::{BusKind, BusTiming, CostModel};

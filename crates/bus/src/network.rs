//! A point-to-point interconnection-network cost model.
//!
//! The paper's scaling thesis: "Since these messages are directed (i.e.,
//! not broadcast), they can be easily sent over any arbitrary
//! interconnection network, as opposed to just a bus. The absence of
//! broadcasts eliminates the major limitation on scaling." This module
//! makes that argument quantitative: it prices the same measured event
//! frequencies on a 2-D mesh, where a directed message costs hops but a
//! broadcast must visit every node.
//!
//! Units are *flit-cycles of network capacity consumed per reference* —
//! the network analogue of the paper's bus-cycles metric. Because a mesh's
//! aggregate capacity grows with the node count while a bus's does not,
//! comparing this number against the bisection capacity shows why
//! directory schemes scale where snoopy schemes cannot.

use crate::price::CostConfig;
use dircc_core::{EventCounters, ProtocolKind};

/// A square 2-D mesh of `side × side` nodes with memory and directory
/// distributed per node (the organization §2 and §7 advocate:
/// "memory is distributed together with individual processors").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshModel {
    /// Nodes per side (total nodes = side²).
    pub side: u32,
    /// Flits per control message (request, invalidate, ack).
    pub control_flits: u32,
    /// Flits per data-block transfer (header + the paper's 4 words).
    pub data_flits: u32,
}

impl MeshModel {
    /// Creates a mesh for at least `nodes` processors (rounds the side up).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn for_nodes(nodes: u32) -> Self {
        assert!(nodes > 0, "need at least one node");
        let mut side = 1;
        while side * side < nodes {
            side += 1;
        }
        MeshModel { side, control_flits: 1, data_flits: 5 }
    }

    /// Total nodes.
    pub fn nodes(self) -> u32 {
        self.side * self.side
    }

    /// Mean Manhattan distance between two uniformly random nodes on the
    /// mesh: `2·(side² − 1) / (3·side)` hops (exact for a square mesh).
    pub fn mean_hops(self) -> f64 {
        let s = f64::from(self.side);
        2.0 * (s * s - 1.0) / (3.0 * s)
    }

    /// Network capacity consumed by one directed control message
    /// (flit-hops).
    pub fn control_cost(self) -> f64 {
        f64::from(self.control_flits) * self.mean_hops()
    }

    /// Capacity consumed by one block transfer.
    pub fn data_cost(self) -> f64 {
        f64::from(self.data_flits) * self.mean_hops()
    }

    /// Capacity consumed by a broadcast: the message must reach every
    /// node — at least one flit crossing into each of them (a spanning
    /// tree of `nodes − 1` links).
    pub fn broadcast_cost(self) -> f64 {
        f64::from(self.control_flits) * f64::from(self.nodes() - 1)
    }
}

/// Prices one protocol's measured events on the mesh, in flit-hops per
/// reference.
///
/// The mapping mirrors the bus schemas: block fetches and write-backs are
/// data transfers, directed invalidations/flush requests are control
/// messages, broadcasts span the machine, word updates are control-sized.
/// First references are excluded unless `cfg.charge_first_ref` is set.
pub fn network_cost_per_ref(
    kind: ProtocolKind,
    mesh: MeshModel,
    c: &EventCounters,
    cfg: &CostConfig,
) -> f64 {
    if c.total() == 0 {
        return 0.0;
    }
    let misses = (c.rm() + c.wm()) as f64
        + if cfg.charge_first_ref { (c.rm_first_ref() + c.wm_first_ref()) as f64 } else { 0.0 };
    let mut flit_hops = misses * mesh.data_cost();
    flit_hops += c.write_backs() as f64 * mesh.data_cost();
    flit_hops += c.control_messages() as f64 * mesh.control_cost();
    flit_hops += c.aux_messages() as f64 * mesh.control_cost();
    flit_hops += c.broadcasts() as f64 * mesh.broadcast_cost();
    flit_hops += c.updates() as f64 * mesh.control_cost();
    if kind == ProtocolKind::Wti {
        flit_hops += c.writes() as f64 * mesh.control_cost();
    }
    flit_hops / c.total() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_core::{Event, MissContext, Outcome};

    #[test]
    fn mesh_geometry() {
        let m = MeshModel::for_nodes(16);
        assert_eq!(m.side, 4);
        assert_eq!(m.nodes(), 16);
        // 2(16-1)/(3*4) = 2.5 mean hops.
        assert!((m.mean_hops() - 2.5).abs() < 1e-12);
        let m = MeshModel::for_nodes(17);
        assert_eq!(m.side, 5, "rounds up");
    }

    #[test]
    fn broadcast_dwarfs_directed_messages_at_scale() {
        let m = MeshModel::for_nodes(64);
        assert!(m.broadcast_cost() > 10.0 * m.control_cost());
        let small = MeshModel::for_nodes(4);
        assert!(small.broadcast_cost() < 2.0 * small.data_cost());
    }

    #[test]
    fn directed_schemes_beat_broadcast_schemes_on_big_meshes() {
        // Same abstract workload: 100 invalidation situations, delivered
        // as one broadcast each (Dir0B) vs 1.2 directed messages each
        // (DirnNB, Figure 1's distribution).
        let mut bcast = EventCounters::new();
        let mut seq = EventCounters::new();
        for _ in 0..100 {
            let mut b = Outcome::quiet(Event::ReadMiss(MissContext::MemoryOnly));
            b.used_broadcast = true;
            bcast.observe(&b);
            let s = Outcome::quiet(Event::ReadMiss(MissContext::MemoryOnly)).with_control(1);
            seq.observe(&s);
        }
        for nodes in [16u32, 64] {
            let m = MeshModel::for_nodes(nodes);
            let b = network_cost_per_ref(ProtocolKind::Dir0B, m, &bcast, &CostConfig::PAPER);
            let s = network_cost_per_ref(
                ProtocolKind::DirNb { pointers: nodes },
                m,
                &seq,
                &CostConfig::PAPER,
            );
            assert!(s < b, "{nodes} nodes: directed {s} < broadcast {b}");
        }
    }

    #[test]
    fn empty_counters_cost_nothing() {
        let m = MeshModel::for_nodes(4);
        assert_eq!(
            network_cost_per_ref(ProtocolKind::Dir0B, m, &EventCounters::new(), &CostConfig::PAPER),
            0.0
        );
    }

    #[test]
    fn first_refs_excluded_by_default() {
        let mut c = EventCounters::new();
        c.observe(&Outcome::quiet(Event::ReadMiss(MissContext::FirstRef)));
        let m = MeshModel::for_nodes(16);
        assert_eq!(network_cost_per_ref(ProtocolKind::Dir0B, m, &c, &CostConfig::PAPER), 0.0);
        let cfg = CostConfig { charge_first_ref: true, ..CostConfig::PAPER };
        assert!(network_cost_per_ref(ProtocolKind::Dir0B, m, &c, &cfg) > 0.0);
    }
}

//! The paper's in-text studies: §5.1 fixed-overhead sensitivity, §5.2 spin
//! locks, the Berkeley aside, and §6 scalable directory alternatives.

use crate::metrics::mean;
use crate::report::{cycles, Table};
use crate::workbench::{TraceFilter, Workbench};
use core::fmt;
use dircc_bus::{CostConfig, CostModel};
use dircc_core::ProtocolKind;

/// §5.1: the `base + slope·q` cost lines for Dragon and Dir0B.
///
/// The paper: "the performance for Dragon is given by 0.0336 + 0.0206q and
/// the performance for Dir0B is given by 0.0491 + 0.0114q bus cycles per
/// reference. For example, with q = 1 Dir0B needs only 12% more bus cycles
/// than Dragon."
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// `(scheme, base cycles/ref at q = 0, transactions/ref slope)`.
    pub lines: Vec<(String, f64, f64)>,
    /// Sampled q values.
    pub q_values: Vec<f64>,
    /// `samples[scheme][q]` cycles/ref.
    pub samples: Vec<Vec<f64>>,
}

impl Sensitivity {
    /// `(base, slope)` for a scheme.
    pub fn line(&self, scheme: &str) -> Option<(f64, f64)> {
        self.lines.iter().find(|(s, _, _)| s == scheme).map(|(_, b, m)| (*b, *m))
    }

    /// Ratio of Dir0B to Dragon cycles/ref at a given q.
    pub fn dir0b_over_dragon(&self, q: f64) -> Option<f64> {
        let (b0, m0) = self.line("Dir0B")?;
        let (bd, md) = self.line("Dragon")?;
        Some((b0 + m0 * q) / (bd + md * q))
    }
}

/// Runs the §5.1 sensitivity study on the pipelined bus.
pub fn sensitivity(wb: &Workbench) -> Sensitivity {
    let m = CostModel::pipelined();
    let q_values = vec![0.0, 0.5, 1.0, 2.0, 4.0];
    let mut lines = Vec::new();
    let mut samples = Vec::new();
    for kind in [ProtocolKind::Dragon, ProtocolKind::Dir0B] {
        let evals = wb.evaluations(kind, TraceFilter::Full);
        let base = mean(
            &evals.iter().map(|e| e.cycles_per_ref(&m, &CostConfig::PAPER)).collect::<Vec<_>>(),
        );
        let slope = mean(&evals.iter().map(|e| e.transactions_per_ref()).collect::<Vec<_>>());
        let row = q_values
            .iter()
            .map(|q| {
                let cfg = CostConfig::PAPER.with_overhead_q(*q);
                mean(&evals.iter().map(|e| e.cycles_per_ref(&m, &cfg)).collect::<Vec<_>>())
            })
            .collect();
        lines.push((kind.display_name(wb.n_caches()), base, slope));
        samples.push(row);
    }
    Sensitivity { lines, q_values, samples }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 5.1: Fixed per-transaction overhead sensitivity (pipelined bus)")?;
        for (scheme, base, slope) in &self.lines {
            writeln!(f, "  {scheme}: cycles/ref = {} + {}*q", cycles(*base), cycles(*slope))?;
        }
        let mut t = Table::new("  samples", vec!["q", "Dragon", "Dir0B", "Dir0B/Dragon"]);
        for (i, q) in self.q_values.iter().enumerate() {
            t.row(vec![
                format!("{q}"),
                cycles(self.samples[0][i]),
                cycles(self.samples[1][i]),
                format!("{:.2}", self.samples[1][i] / self.samples[0][i]),
            ]);
        }
        write!(f, "{t}")
    }
}

/// §5.2: impact of spin locks on `Dir1NB` vs `Dir0B`.
///
/// The paper: "we ran a set of experiments excluding all the tests on locks
/// ... Dir0B gave the same performance as before, while the performance of
/// Dir1NB improved significantly (from 0.32 to 0.12 bus cycles per
/// reference)."
#[derive(Debug, Clone)]
pub struct Spinlock {
    /// Dir1NB cycles/ref with the full trace.
    pub dir1nb_full: f64,
    /// Dir1NB cycles/ref with lock-test reads excluded.
    pub dir1nb_no_spins: f64,
    /// Dir0B cycles/ref with the full trace.
    pub dir0b_full: f64,
    /// Dir0B cycles/ref with lock-test reads excluded.
    pub dir0b_no_spins: f64,
}

impl Spinlock {
    /// Improvement factor for Dir1NB (paper: ≈ 0.32/0.12 ≈ 2.7×).
    pub fn dir1nb_improvement(&self) -> f64 {
        if self.dir1nb_no_spins == 0.0 {
            return f64::INFINITY;
        }
        self.dir1nb_full / self.dir1nb_no_spins
    }
}

/// Runs the §5.2 spin-lock exclusion study (pipelined bus, trace average;
/// POPS and THOR carry the spins).
pub fn spinlock(wb: &Workbench) -> Spinlock {
    let m = CostModel::pipelined();
    let cfg = CostConfig::PAPER;
    let avg = |kind: ProtocolKind, filter: TraceFilter| {
        let evals = wb.evaluations(kind, filter);
        mean(&evals.iter().map(|e| e.cycles_per_ref(&m, &cfg)).collect::<Vec<_>>())
    };
    let dir1 = ProtocolKind::DirNb { pointers: 1 };
    Spinlock {
        dir1nb_full: avg(dir1, TraceFilter::Full),
        dir1nb_no_spins: avg(dir1, TraceFilter::ExcludeLockSpins),
        dir0b_full: avg(ProtocolKind::Dir0B, TraceFilter::Full),
        dir0b_no_spins: avg(ProtocolKind::Dir0B, TraceFilter::ExcludeLockSpins),
    }
}

impl fmt::Display for Spinlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 5.2: Impact of spin locks (pipelined bus, cycles/ref)")?;
        writeln!(
            f,
            "  Dir1NB: full trace {}  -> spins excluded {}   ({:.1}x better)",
            cycles(self.dir1nb_full),
            cycles(self.dir1nb_no_spins),
            self.dir1nb_improvement()
        )?;
        writeln!(
            f,
            "  Dir0B : full trace {}  -> spins excluded {}",
            cycles(self.dir0b_full),
            cycles(self.dir0b_no_spins)
        )
    }
}

/// The §5 Berkeley aside: the paper's derived estimate next to a real
/// Berkeley protocol run.
#[derive(Debug, Clone)]
pub struct BerkeleyStudy {
    /// Dir0B cycles/ref (pipelined).
    pub dir0b: f64,
    /// The paper's estimate: Dir0B event frequencies with the directory
    /// access cost "trivially set to 0 bus cycles".
    pub estimate: f64,
    /// A full Berkeley protocol simulation priced with its own schema.
    pub simulated: f64,
    /// Dragon cycles/ref for the "roughly midway" comparison.
    pub dragon: f64,
}

/// Runs the Berkeley comparison (pipelined bus, trace average).
pub fn berkeley(wb: &Workbench) -> BerkeleyStudy {
    let cfg = CostConfig::PAPER;
    let m = CostModel::pipelined();
    let zero_dir = CostModel { dir_check: 0, ..m };
    let avg = |kind: ProtocolKind, model: &CostModel| {
        let evals = wb.evaluations(kind, TraceFilter::Full);
        mean(&evals.iter().map(|e| e.cycles_per_ref(model, &cfg)).collect::<Vec<_>>())
    };
    BerkeleyStudy {
        dir0b: avg(ProtocolKind::Dir0B, &m),
        estimate: avg(ProtocolKind::Dir0B, &zero_dir),
        simulated: avg(ProtocolKind::Berkeley, &m),
        dragon: avg(ProtocolKind::Dragon, &m),
    }
}

impl fmt::Display for BerkeleyStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 5 aside: Berkeley Ownership estimate (pipelined bus, cycles/ref)")?;
        writeln!(f, "  Dir0B                      : {}", cycles(self.dir0b))?;
        writeln!(f, "  Berkeley (paper's estimate): {}", cycles(self.estimate))?;
        writeln!(f, "  Berkeley (full simulation) : {}", cycles(self.simulated))?;
        writeln!(f, "  Dragon                     : {}", cycles(self.dragon))
    }
}

/// §6: scalable directory alternatives.
#[derive(Debug, Clone)]
pub struct Scalability {
    /// Dir0B cycles/ref (full broadcast baseline).
    pub dir0b: f64,
    /// DirnNB cycles/ref (sequential invalidates; paper: 0.0491 → 0.0499).
    pub dirnnb: f64,
    /// Dir1B cycles/ref sampled at each broadcast cost `b`.
    pub dir1b_by_b: Vec<(f64, f64)>,
    /// `(i, cycles/ref, rm+wm percent)` for the DiriNB sweep.
    pub dirinb_sweep: Vec<(u32, f64, f64)>,
    /// `(i, cycles/ref, broadcasts per 1000 refs)` for the DiriB sweep.
    pub dirib_sweep: Vec<(u32, f64, f64)>,
    /// Coded-set cycles/ref and its invalidation messages relative to the
    /// full map's exact count.
    pub coded_cycles: f64,
    /// Coded-set invalidation messages ÷ full-map invalidation messages.
    pub coded_message_overhead: f64,
}

/// Runs the §6 study (pipelined bus, trace average).
pub fn scalability(wb: &Workbench) -> Scalability {
    let cfg = CostConfig::PAPER;
    let m = CostModel::pipelined();
    let n = wb.n_caches();
    let avg_cycles = |kind: ProtocolKind, cfg: &CostConfig| {
        let evals = wb.evaluations(kind, TraceFilter::Full);
        mean(&evals.iter().map(|e| e.cycles_per_ref(&m, cfg)).collect::<Vec<_>>())
    };

    let dir1b_by_b = [1.0, 2.0, 4.0, 8.0, 16.0]
        .into_iter()
        .map(|b| {
            (
                b,
                avg_cycles(
                    ProtocolKind::DirB { pointers: 1 },
                    &CostConfig::PAPER.with_broadcast_cycles(b),
                ),
            )
        })
        .collect();

    let mut dirinb_sweep = Vec::new();
    for i in 1..=n as u32 {
        let kind = ProtocolKind::DirNb { pointers: i };
        let evals = wb.evaluations(kind, TraceFilter::Full);
        let c = avg_cycles(kind, &cfg);
        let miss = mean(
            &evals
                .iter()
                .map(|e| e.counters.pct(e.counters.rm() + e.counters.wm()))
                .collect::<Vec<_>>(),
        );
        dirinb_sweep.push((i, c, miss));
    }

    let mut dirib_sweep = Vec::new();
    for i in 1..n as u32 {
        let kind = ProtocolKind::DirB { pointers: i };
        let evals = wb.evaluations(kind, TraceFilter::Full);
        let c = avg_cycles(kind, &cfg);
        let bc = mean(
            &evals
                .iter()
                .map(|e| 1000.0 * e.counters.broadcasts() as f64 / e.counters.total() as f64)
                .collect::<Vec<_>>(),
        );
        dirib_sweep.push((i, c, bc));
    }

    let coded = wb.merged_counters(ProtocolKind::CodedSet, TraceFilter::Full);
    let full = wb.merged_counters(ProtocolKind::DirNb { pointers: n as u32 }, TraceFilter::Full);
    let coded_message_overhead = if full.control_messages() > 0 {
        coded.control_messages() as f64 / full.control_messages() as f64
    } else {
        1.0
    };

    Scalability {
        dir0b: avg_cycles(ProtocolKind::Dir0B, &cfg),
        dirnnb: avg_cycles(ProtocolKind::DirNb { pointers: n as u32 }, &cfg),
        dir1b_by_b,
        dirinb_sweep,
        dirib_sweep,
        coded_cycles: avg_cycles(ProtocolKind::CodedSet, &cfg),
        coded_message_overhead,
    }
}

impl fmt::Display for Scalability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 6: Directory scheme alternatives for scalability")?;
        writeln!(f, "  (pipelined bus, cycles/ref, averaged over traces)")?;
        writeln!(f, "  Dir0B  (full broadcast)        : {}", cycles(self.dir0b))?;
        writeln!(f, "  DirnNB (sequential invalidates): {}", cycles(self.dirnnb))?;
        writeln!(f, "  Dir1B as a function of broadcast cost b:")?;
        for (b, c) in &self.dir1b_by_b {
            writeln!(f, "    b = {b:>4}: {}", cycles(*c))?;
        }
        let mut t = Table::new("  DiriNB sweep", vec!["i", "cycles/ref", "rm+wm %"]);
        for (i, c, miss) in &self.dirinb_sweep {
            t.row(vec![i.to_string(), cycles(*c), format!("{miss:.2}")]);
        }
        write!(f, "{t}")?;
        let mut t = Table::new("  DiriB sweep", vec!["i", "cycles/ref", "bcasts/1000 refs"]);
        for (i, c, bc) in &self.dirib_sweep {
            t.row(vec![i.to_string(), cycles(*c), format!("{bc:.2}")]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "  Coded set: {} cycles/ref; {:.2}x the full map's invalidation messages",
            cycles(self.coded_cycles),
            self.coded_message_overhead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb() -> Workbench {
        Workbench::paper_scaled(60_000, 3)
    }

    #[test]
    fn sensitivity_lines_match_direct_samples() {
        let s = sensitivity(&wb());
        let (base, slope) = s.line("Dragon").unwrap();
        // Sampled value at q=2 equals base + slope*2 (linearity).
        let sampled = s.samples[0][3];
        assert!((sampled - (base + 2.0 * slope)).abs() < 1e-9);
        // Dir0B's q-penalty is smaller than Dragon's (fewer transactions):
        let (_, slope0) = s.line("Dir0B").unwrap();
        assert!(slope0 < slope, "Dir0B slope {slope0} < Dragon slope {slope}");
        // The gap narrows with q (the paper's 46% -> 12% observation).
        let r0 = s.dir0b_over_dragon(0.0).unwrap();
        let r1 = s.dir0b_over_dragon(1.0).unwrap();
        assert!(r1 < r0, "overhead narrows the Dir0B/Dragon gap: {r0} -> {r1}");
        assert!(s.to_string().contains("q"));
    }

    #[test]
    fn spinlock_exclusion_rescues_dir1nb_only() {
        let s = spinlock(&wb());
        assert!(
            s.dir1nb_improvement() > 1.5,
            "Dir1NB improves a lot: {} -> {}",
            s.dir1nb_full,
            s.dir1nb_no_spins
        );
        let dir0b_change = (s.dir0b_full - s.dir0b_no_spins).abs() / s.dir0b_full;
        assert!(dir0b_change < 0.25, "Dir0B roughly unchanged ({dir0b_change})");
        // And the effect is much stronger for Dir1NB than Dir0B.
        let dir0b_ratio = s.dir0b_full / s.dir0b_no_spins.max(1e-12);
        assert!(s.dir1nb_improvement() > dir0b_ratio);
    }

    #[test]
    fn berkeley_sits_between_dragon_and_dir0b() {
        let b = berkeley(&wb());
        assert!(b.estimate < b.dir0b, "dropping directory cost must help");
        assert!(b.estimate > b.dragon, "but not beat Dragon");
        assert!(b.simulated < b.dir0b, "the real protocol also beats Dir0B");
        assert!(b.to_string().contains("Berkeley"));
    }

    #[test]
    fn scalability_matches_section6_shapes() {
        let s = scalability(&wb());
        // Sequential invalidation costs almost nothing extra (paper:
        // 0.0491 -> 0.0499, under 2%).
        let ratio = s.dirnnb / s.dir0b;
        assert!((0.98..=1.06).contains(&ratio), "DirnNB/Dir0B = {ratio} (paper: +1.6%)");
        // Dir1B grows slowly with b: the slope is the broadcast frequency,
        // which must stay a small fraction of references (paper: 0.0006;
        // the synthetic traces' spinner accumulation makes it a few times
        // larger but still well under 1%).
        let c1 = s.dir1b_by_b[0].1;
        let c16 = s.dir1b_by_b.last().unwrap().1;
        assert!(c16 > c1);
        let slope = (c16 - c1) / 15.0;
        assert!(slope < 0.005, "broadcasts per reference must be rare: slope {slope}");
        // More pointers monotonically (weakly) reduce the DiriNB miss rate.
        for w in s.dirinb_sweep.windows(2) {
            assert!(w[1].2 <= w[0].2 + 0.05, "miss rate should fall with i: {:?}", s.dirinb_sweep);
        }
        // The coded set sends at least as many messages as the full map.
        assert!(s.coded_message_overhead >= 1.0);
        assert!(s.to_string().contains("Coded set"));
    }
}

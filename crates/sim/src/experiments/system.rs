//! §5's system-performance estimate, made measurable.
//!
//! "A 10-MIPS processor will therefore require a bus cycle every 1500ns,
//! and a bus with a cycle time of 100ns will only yield a maximum
//! performance of 15 effective processors. This limit is an optimistic
//! upper bound because we have not included ... the effects of bus
//! contention."
//!
//! This runner takes each scheme's *measured* transaction rate and cycles
//! per transaction, computes the paper's analytic processor bound, and
//! then runs the discrete-event bus simulation to show where contention
//! actually flattens the speedup curve.

use crate::busqueue::{saturation_bound, simulate, BusLoad};
use crate::metrics::mean;
use crate::report::Table;
use crate::workbench::{TraceFilter, Workbench};
use core::fmt;
use dircc_bus::{CostConfig, CostModel};

/// One scheme's system-performance characterization.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// Scheme name.
    pub scheme: String,
    /// Measured bus transactions per reference.
    pub transactions_per_ref: f64,
    /// Measured bus cycles per transaction (pipelined).
    pub cycles_per_transaction: f64,
    /// The paper's analytic effective-processor bound.
    pub analytic_bound: f64,
    /// Simulated effective processors at each machine size.
    pub simulated: Vec<(u32, f64)>,
}

/// The §5 system-performance study.
#[derive(Debug, Clone)]
pub struct SystemStudy {
    /// Machine sizes simulated.
    pub sizes: Vec<u32>,
    /// One row per scheme, paper order.
    pub rows: Vec<SystemRow>,
}

impl SystemStudy {
    /// The analytic bound for a scheme.
    pub fn bound(&self, scheme: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.scheme == scheme).map(|r| r.analytic_bound)
    }

    /// The simulated effective processors for `(scheme, size)`.
    pub fn effective(&self, scheme: &str, size: u32) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.scheme == scheme)?
            .simulated
            .iter()
            .find(|(n, _)| *n == size)
            .map(|(_, e)| *e)
    }
}

/// Runs the system-performance study from the workbench's measured rates.
pub fn system(wb: &Workbench) -> SystemStudy {
    let m = CostModel::pipelined();
    let cfg = CostConfig::PAPER;
    let sizes = vec![2u32, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for kind in wb.paper_kinds() {
        let evals = wb.evaluations(kind, TraceFilter::Full);
        let tpr = mean(&evals.iter().map(|e| e.transactions_per_ref()).collect::<Vec<_>>());
        let cpt =
            mean(&evals.iter().map(|e| e.cycles_per_transaction(&m, &cfg)).collect::<Vec<_>>());
        if tpr <= 0.0 {
            continue;
        }
        let base = BusLoad::paper_platform(1).with_protocol(tpr, cpt.max(0.1));
        let simulated = sizes
            .iter()
            .map(|&n| {
                let load = BusLoad { processors: n, ..base };
                (n, simulate(&load, 1988).effective_processors)
            })
            .collect();
        rows.push(SystemRow {
            scheme: kind.display_name(wb.n_caches()),
            transactions_per_ref: tpr,
            cycles_per_transaction: cpt,
            analytic_bound: saturation_bound(&base),
            simulated,
        });
    }
    SystemStudy { sizes, rows }
}

impl fmt::Display for SystemStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section 5: system performance on a shared bus\n\
             (10-MIPS processors, 100ns bus cycle, measured transaction rates)"
        )?;
        let mut headers = vec![
            "scheme".to_string(),
            "txn/ref".to_string(),
            "cyc/txn".to_string(),
            "bound".to_string(),
        ];
        headers.extend(self.sizes.iter().map(|n| format!("n={n}")));
        let mut t =
            Table::new("  effective processors", headers.iter().map(String::as_str).collect());
        for r in &self.rows {
            let mut row = vec![
                r.scheme.clone(),
                format!("{:.4}", r.transactions_per_ref),
                format!("{:.2}", r.cycles_per_transaction),
                format!("{:.1}", r.analytic_bound),
            ];
            row.extend(r.simulated.iter().map(|(_, e)| format!("{e:.1}")));
            t.row(row);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_processors_saturate_near_the_bound() {
        let wb = Workbench::paper_scaled(60_000, 3);
        let s = system(&wb);
        assert_eq!(s.rows.len(), 4);
        for r in &s.rows {
            let at_64 = s.effective(&r.scheme, 64).unwrap();
            // Simulated speedup at 64 processors never exceeds the
            // analytic bound by more than noise and comes within 40% of it
            // when the bound itself is below 64.
            assert!(at_64 <= r.analytic_bound * 1.15 + 1.0, "{}: {at_64}", r.scheme);
            if r.analytic_bound < 40.0 {
                assert!(
                    at_64 > 0.5 * r.analytic_bound,
                    "{}: {at_64} vs bound {}",
                    r.scheme,
                    r.analytic_bound
                );
            }
        }
        // Dir1NB saturates far earlier than Dir0B (its transactions are
        // both more frequent per sharing miss and 6 cycles long).
        let dir1 = s.bound("Dir1NB").unwrap();
        let dir0 = s.bound("Dir0B").unwrap();
        assert!(dir1 < dir0, "Dir1NB bound {dir1} < Dir0B bound {dir0}");
        assert!(s.to_string().contains("effective processors"));
    }

    #[test]
    fn small_machines_are_unconstrained() {
        let wb = Workbench::paper_scaled(60_000, 3);
        let s = system(&wb);
        // At n=2 the light-traffic schemes achieve near-linear speedup;
        // WTI already pays noticeably for its write-through traffic.
        for scheme in ["Dir0B", "Dragon"] {
            let e = s.effective(scheme, 2).unwrap();
            assert!(e > 1.7, "{scheme}: {e}");
        }
        let wti = s.effective("WTI", 2).unwrap();
        assert!(wti > 1.3, "WTI: {wti}");
        assert!(wti < s.effective("Dragon", 2).unwrap());
    }
}

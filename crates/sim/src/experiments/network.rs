//! Directory storage and interconnection-network studies: the two §6/§7
//! scaling arguments made quantitative.

use crate::engine::{run, RunConfig};
use crate::par::par_map_indexed;
use crate::report::Table;
use core::fmt;
use dircc_bus::{network_cost_per_ref, CostConfig, MeshModel};
use dircc_core::{build, directory_bits_per_block, EventCounters, ProtocolKind};
use dircc_trace::gen::Profile;
use dircc_trace::store::{TraceFilter, TraceStore};

/// Tag bits assumed for Tang's duplicated tag stores.
const TAG_BITS: u32 = 20;
/// Data bits per block (the paper's 16-byte blocks).
const BLOCK_BITS: u64 = 128;

/// Directory storage per block for every directory scheme at several
/// machine sizes.
#[derive(Debug, Clone)]
pub struct StorageTable {
    /// Machine sizes tabulated.
    pub sizes: Vec<usize>,
    /// `(scheme name, bits per block at each size)` rows.
    pub rows: Vec<(String, Vec<u64>)>,
}

impl StorageTable {
    /// Bits per block for `(scheme, size)`.
    pub fn bits(&self, scheme: &str, size: usize) -> Option<u64> {
        let col = self.sizes.iter().position(|s| *s == size)?;
        self.rows.iter().find(|(s, _)| s == scheme).map(|(_, v)| v[col])
    }
}

/// A scheme's kind as a function of machine size (full-map pointers grow
/// with `n`).
type KindForSize = Box<dyn Fn(usize) -> ProtocolKind>;

/// Builds the storage table for the §6 schemes.
pub fn storage_table() -> StorageTable {
    let sizes = vec![4usize, 16, 64];
    let kinds: Vec<(String, KindForSize)> = vec![
        ("Dir0B".into(), Box::new(|_| ProtocolKind::Dir0B)),
        ("Dir1B".into(), Box::new(|_| ProtocolKind::DirB { pointers: 1 })),
        ("Dir2NB".into(), Box::new(|_| ProtocolKind::DirNb { pointers: 2 })),
        ("DirCodedNB".into(), Box::new(|_| ProtocolKind::CodedSet)),
        ("DirnNB".into(), Box::new(|n| ProtocolKind::DirNb { pointers: n as u32 })),
        ("Tang".into(), Box::new(|_| ProtocolKind::Tang)),
    ];
    let rows = kinds
        .into_iter()
        .map(|(name, kind_for)| {
            let bits =
                sizes.iter().map(|&n| directory_bits_per_block(kind_for(n), n, TAG_BITS)).collect();
            (name, bits)
        })
        .collect();
    StorageTable { sizes, rows }
}

impl fmt::Display for StorageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = std::iter::once("scheme".to_string())
            .chain(self.sizes.iter().map(|n| format!("bits/blk @n={n}")))
            .chain(std::iter::once(format!("overhead @n={}", self.sizes.last().unwrap())))
            .collect();
        let mut t = Table::new(
            "Directory storage per memory block (section 6 motivation)",
            headers.iter().map(String::as_str).collect(),
        );
        for (name, bits) in &self.rows {
            let mut row = vec![name.clone()];
            row.extend(bits.iter().map(|b| b.to_string()));
            row.push(format!("{:.1}%", 100.0 * *bits.last().unwrap() as f64 / BLOCK_BITS as f64));
            t.row(row);
        }
        write!(f, "{t}")
    }
}

/// One (scheme, machine size) network measurement.
#[derive(Debug, Clone)]
pub struct NetworkRow {
    /// Scheme name at this size.
    pub scheme: String,
    /// Flit-hops of network capacity consumed per reference.
    pub flit_hops_per_ref: f64,
}

/// The mesh-network study: the §2 claim that directed coherence messages
/// suit arbitrary interconnects, priced on 2-D meshes.
#[derive(Debug, Clone)]
pub struct NetworkStudy {
    /// Mesh node counts.
    pub sizes: Vec<u32>,
    /// Rows per size.
    pub rows: Vec<Vec<NetworkRow>>,
}

impl NetworkStudy {
    /// Flit-hops/ref for `(scheme, size)`.
    pub fn cost(&self, scheme: &str, size: u32) -> Option<f64> {
        let i = self.sizes.iter().position(|s| *s == size)?;
        self.rows[i].iter().find(|r| r.scheme == scheme).map(|r| r.flit_hops_per_ref)
    }
}

fn measure(store: &TraceStore, kind: ProtocolKind, cpus: u16) -> EventCounters {
    let mut protocol = build(kind, usize::from(cpus));
    let cfg = RunConfig::default().with_process_sharing();
    let records = store.records(0, TraceFilter::Full);
    let result = run(protocol.as_mut(), records.iter().copied(), &cfg).expect("network replay");
    result.counters
}

/// Runs the network study on 16/36/64-node meshes, fanning the
/// (mesh size × scheme) runs out over `jobs` threads. Each mesh size's
/// trace is generated once into a shared [`TraceStore`], so results are
/// deterministic and independent of `jobs`.
pub fn network_study(refs: u64, seed: u64, jobs: usize) -> NetworkStudy {
    let sizes = vec![16u32, 36, 64];
    let cfg = CostConfig::PAPER;
    let kinds_at = |nodes: u32| {
        [
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::DirNb { pointers: 2 },
            ProtocolKind::DirNb { pointers: nodes },
            ProtocolKind::CodedSet,
        ]
    };
    let stores: Vec<TraceStore> = sizes
        .iter()
        .map(|&nodes| {
            TraceStore::new(
                vec![Profile::custom().with_cpus(nodes as u16).with_total_refs(refs)],
                seed,
            )
        })
        .collect();
    let work: Vec<(usize, ProtocolKind)> = sizes
        .iter()
        .enumerate()
        .flat_map(|(si, &nodes)| kinds_at(nodes).into_iter().map(move |k| (si, k)))
        .collect();
    let flat = par_map_indexed(work.len(), jobs, |i| {
        let (si, kind) = work[i];
        let nodes = sizes[si];
        let counters = measure(&stores[si], kind, nodes as u16);
        NetworkRow {
            scheme: kind.display_name(nodes as usize),
            flit_hops_per_ref: network_cost_per_ref(
                kind,
                MeshModel::for_nodes(nodes),
                &counters,
                &cfg,
            ),
        }
    });
    let per_size = work.len() / sizes.len();
    let rows = flat.chunks(per_size).map(<[NetworkRow]>::to_vec).collect();
    NetworkStudy { sizes, rows }
}

impl fmt::Display for NetworkStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: coherence traffic on 2-D meshes (flit-hops per reference)\n\
             (directed messages pay hops; broadcasts must reach every node)"
        )?;
        for (i, nodes) in self.sizes.iter().enumerate() {
            let mut t = Table::new(format!("  {nodes} nodes"), vec!["scheme", "flit-hops/ref"]);
            for r in &self.rows[i] {
                t.row(vec![r.scheme.clone(), format!("{:.4}", r.flit_hops_per_ref)]);
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_table_shapes() {
        let s = storage_table();
        // Dir0B is flat; the full map grows linearly; coded grows as log.
        assert_eq!(s.bits("Dir0B", 4), Some(2));
        assert_eq!(s.bits("Dir0B", 64), Some(2));
        assert_eq!(s.bits("DirnNB", 4), Some(5));
        assert_eq!(s.bits("DirnNB", 64), Some(65));
        assert_eq!(s.bits("DirCodedNB", 64), Some(13));
        assert!(s.bits("Tang", 64).unwrap() > s.bits("DirnNB", 64).unwrap());
        assert!(s.to_string().contains("Directory storage"));
    }

    #[test]
    fn broadcast_schemes_lose_on_big_meshes() {
        let n = network_study(40_000, 9, 2);
        // On 64 nodes, Dir0B's broadcasts make it costlier per reference
        // than the full map's directed invalidations — reversing the bus
        // result and confirming the paper's scaling thesis.
        let dir0b = n.cost("Dir0B", 64).unwrap();
        let full = n.cost("DirnNB", 64).unwrap();
        assert!(dir0b > full, "64-node mesh: Dir0B ({dir0b}) must exceed DirnNB ({full})");
        // Dir1B stays close to the full map (broadcasts rare).
        let dir1b = n.cost("Dir1B", 64).unwrap();
        assert!(dir1b < dir0b);
        assert!(n.to_string().contains("64 nodes"));
    }

    #[test]
    fn network_study_is_deterministic_across_job_counts() {
        let a = network_study(8_000, 7, 1);
        let b = network_study(8_000, 7, 4);
        for (ra, rb) in a.rows.iter().flatten().zip(b.rows.iter().flatten()) {
            assert_eq!(ra.scheme, rb.scheme);
            assert_eq!(ra.flit_hops_per_ref.to_bits(), rb.flit_hops_per_ref.to_bits());
        }
    }

    #[test]
    fn costs_grow_with_mesh_size() {
        let n = network_study(30_000, 4, 2);
        for scheme in ["DirnNB", "Dir1B"] {
            let small = n.cost(scheme, 16).unwrap();
            let big = n.cost(scheme, 64).unwrap();
            assert!(big > small, "{scheme}: hops grow with distance ({small} -> {big})");
        }
    }
}

//! Experiment runners: one per paper table, figure and in-text study.
//!
//! Every runner takes a shared [`Workbench`](crate::workbench::Workbench)
//! (so event frequencies are measured once per protocol and trace, exactly
//! as the paper's methodology prescribes), returns a structured result with
//! the quantities the paper reports, and implements `Display` to print the
//! table/figure in a form comparable with the original.
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`tables::table1`] | Table 1 — fundamental bus timings |
//! | [`tables::table2`] | Table 2 — bus cycle costs |
//! | [`tables::table3`] | Table 3 — trace characteristics |
//! | [`tables::table4`] | Table 4 — event frequencies |
//! | [`tables::table5`] | Table 5 — bus-cycle breakdown |
//! | [`figures::figure1`] | Figure 1 — invalidation histogram |
//! | [`figures::figure2`] | Figure 2 — cycles/ref ranges (average) |
//! | [`figures::figure3`] | Figure 3 — cycles/ref ranges per trace |
//! | [`figures::figure4`] | Figure 4 — cycle breakdown fractions |
//! | [`figures::figure5`] | Figure 5 — cycles per transaction |
//! | [`studies::sensitivity`] | §5.1 — fixed overhead q lines |
//! | [`studies::spinlock`] | §5.2 — spin-lock exclusion |
//! | [`studies::berkeley`] | §5 aside — Berkeley estimate |
//! | [`studies::scalability`] | §6 — scalable alternatives |
//! | [`extensions::finite_cache`] | §4 extension — finite-cache first-order costs |
//! | [`extensions::scaling`] | §6/§7 extension — 4-32 CPU sweep |
//! | [`extensions::block_size`] | ablation — block-size sweep |
//! | [`system::system`] | §5 — shared-bus effective processors (analytic + queueing) |
//! | [`network::storage_table`] | §6 — directory storage per block |
//! | [`network::network_study`] | §2/§7 — coherence traffic on 2-D meshes |

pub mod extensions;
pub mod figures;
pub mod network;
pub mod studies;
pub mod system;
pub mod tables;

//! Extension experiments the paper sketches but could not run.
//!
//! * [`finite_cache`] — §4: "the performance of a system with smaller
//!   caches can be estimated to first order by adding the costs due to the
//!   finite cache size." This study measures those costs: replacement
//!   misses of finite set-associative caches, added to each scheme's
//!   infinite-cache cycles/ref.
//! * [`scaling`] — §6/§7: "an accurate evaluation of the tradeoffs will
//!   require traces from a much larger number of processors." The
//!   synthetic generator provides them, so the §6 schemes are swept from
//!   4 to 32 CPUs.
//! * [`block_size`] — the paper fixes 4-word blocks; this ablation sweeps
//!   the block size, which moves both the event frequencies (larger blocks
//!   capture more spatial locality but invite more false sharing) and the
//!   transfer costs.

use crate::engine::{run, RunConfig};
use crate::metrics::{mean, Evaluation};
use crate::par::par_map_indexed;
use crate::report::{cycles, Table};
use crate::workbench::{TraceFilter, Workbench};
use core::fmt;
use dircc_bus::{BusKind, BusTiming, CostConfig, CostModel};
#[allow(unused_imports)]
use dircc_cache as _;
use dircc_cache::{FiniteCacheConfig, SetAssocCache};
use dircc_core::{build, ProtocolKind};
use dircc_trace::gen::Profile;
use dircc_trace::store::TraceStore;
use dircc_types::BlockGeometry;

/// One cache-capacity point of the finite-cache study.
#[derive(Debug, Clone)]
pub struct FiniteCachePoint {
    /// Cache capacity in blocks (per cache).
    pub capacity_blocks: usize,
    /// Replacement (capacity/conflict) misses per reference, beyond the
    /// infinite-cache misses, averaged over traces.
    pub replacement_miss_rate: f64,
    /// First-order corrected cycles/ref for Dir0B: infinite-cache cost +
    /// replacement misses × memory-access cost.
    pub dir0b_cycles_corrected: f64,
}

/// The §4 finite-cache first-order estimation study.
#[derive(Debug, Clone)]
pub struct FiniteCacheStudy {
    /// Dir0B infinite-cache cycles/ref (the paper's headline number).
    pub dir0b_infinite: f64,
    /// One row per simulated cache capacity, ascending.
    pub points: Vec<FiniteCachePoint>,
}

/// Measures replacement-miss rates for 4-way set-associative caches of
/// several capacities and applies the paper's first-order correction.
pub fn finite_cache(wb: &Workbench) -> FiniteCacheStudy {
    let m = CostModel::pipelined();
    let cfg = CostConfig::PAPER;
    let evals = wb.evaluations(ProtocolKind::Dir0B, TraceFilter::Full);
    let dir0b_infinite =
        mean(&evals.iter().map(|e| e.cycles_per_ref(&m, &cfg)).collect::<Vec<_>>());

    let geometry = BlockGeometry::PAPER;
    let mut points = Vec::new();
    for capacity in [256usize, 1024, 4096, 16384] {
        let mut rates = Vec::new();
        for t in 0..wb.num_traces() {
            let mut caches: Vec<SetAssocCache<()>> = (0..wb.n_caches())
                .map(|_| SetAssocCache::new(FiniteCacheConfig::with_capacity(capacity, 4)))
                .collect();
            let mut total = 0u64;
            let mut replacement_misses = 0u64;
            let mut seen = std::collections::HashSet::new();
            // Replays the workbench's shared stream (generated once per
            // process) rather than re-running the generator.
            for r in wb.records(t, TraceFilter::Full).iter().copied() {
                total += 1;
                if !r.is_data() {
                    continue;
                }
                let cache = &mut caches[usize::from(r.pid.raw()) % wb.n_caches()];
                let block = geometry.block_of(r.addr);
                if cache.get(block).is_none() {
                    cache.insert(block, ());
                    // A miss that an infinite cache would NOT have had
                    // (the block was seen by this cache before) is a
                    // replacement miss.
                    if !seen.insert((r.pid.raw(), block)) {
                        replacement_misses += 1;
                    }
                }
            }
            rates.push(replacement_misses as f64 / total as f64);
        }
        let replacement_miss_rate = mean(&rates);
        points.push(FiniteCachePoint {
            capacity_blocks: capacity,
            replacement_miss_rate,
            dir0b_cycles_corrected: dir0b_infinite
                + replacement_miss_rate * f64::from(m.mem_access),
        });
    }
    FiniteCacheStudy { dir0b_infinite, points }
}

impl fmt::Display for FiniteCacheStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Extension: finite-cache first-order estimation (section 4)")?;
        writeln!(f, "  Dir0B infinite-cache cost: {} cycles/ref", cycles(self.dir0b_infinite))?;
        let mut t = Table::new(
            "  4-way set-associative caches",
            vec!["capacity (KB)", "repl misses/ref", "Dir0B corrected"],
        );
        for p in &self.points {
            t.row(vec![
                format!("{}", p.capacity_blocks * 16 / 1024),
                cycles(p.replacement_miss_rate),
                cycles(p.dir0b_cycles_corrected),
            ]);
        }
        write!(f, "{t}")
    }
}

/// One machine-size × scheme measurement of the scaling study.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Scheme name at this machine size.
    pub scheme: String,
    /// Bus cycles per reference (pipelined).
    pub cycles_per_ref: f64,
    /// Invalidation/control messages per 1000 references.
    pub messages_per_kref: f64,
    /// Broadcasts per 1000 references.
    pub broadcasts_per_kref: f64,
}

/// The beyond-paper scaling study: §6 schemes on 4-32 CPU machines.
#[derive(Debug, Clone)]
pub struct ScalingStudy {
    /// Machine sizes swept.
    pub cpu_counts: Vec<u16>,
    /// `rows[i]` holds every scheme's measurements at `cpu_counts[i]`.
    pub rows: Vec<Vec<ScalingRow>>,
}

impl ScalingStudy {
    /// Looks up a scheme's cycles/ref at a machine size.
    pub fn cycles(&self, cpus: u16, scheme: &str) -> Option<f64> {
        let i = self.cpu_counts.iter().position(|c| *c == cpus)?;
        self.rows[i].iter().find(|r| r.scheme == scheme).map(|r| r.cycles_per_ref)
    }

    /// Looks up a scheme's broadcast rate at a machine size.
    pub fn broadcasts(&self, cpus: u16, scheme: &str) -> Option<f64> {
        let i = self.cpu_counts.iter().position(|c| *c == cpus)?;
        self.rows[i].iter().find(|r| r.scheme == scheme).map(|r| r.broadcasts_per_kref)
    }
}

/// Runs the scaling study on a neutral workload (`refs` references per
/// machine size; modest sizes keep it fast).
///
/// Fans the (machine size × scheme) matrix out over `jobs` threads; each
/// machine size's trace is generated once into a shared [`TraceStore`] and
/// replayed by slice, so results are deterministic and independent of
/// `jobs`.
pub fn scaling(refs: u64, seed: u64, jobs: usize) -> ScalingStudy {
    let m = CostModel::pipelined();
    let cost_cfg = CostConfig::PAPER;
    let cpu_counts = vec![4u16, 8, 16, 32];
    let kinds_at = |cpus: u16| {
        [
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::DirNb { pointers: 2 },
            ProtocolKind::DirNb { pointers: u32::from(cpus) },
            ProtocolKind::CodedSet,
        ]
    };
    // One generate-once store per machine size (the trace shape depends on
    // the CPU count).
    let stores: Vec<TraceStore> = cpu_counts
        .iter()
        .map(|&cpus| {
            TraceStore::new(vec![Profile::custom().with_cpus(cpus).with_total_refs(refs)], seed)
        })
        .collect();
    let work: Vec<(usize, ProtocolKind)> = cpu_counts
        .iter()
        .enumerate()
        .flat_map(|(si, &cpus)| kinds_at(cpus).into_iter().map(move |k| (si, k)))
        .collect();
    let flat = par_map_indexed(work.len(), jobs, |i| {
        let (si, kind) = work[i];
        let cpus = usize::from(cpu_counts[si]);
        let records = stores[si].records(0, TraceFilter::Full);
        let mut protocol = build(kind, cpus);
        let cfg = RunConfig::default().with_process_sharing();
        let result = run(protocol.as_mut(), records.iter().copied(), &cfg).expect("scaling replay");
        let c = result.counters;
        let per_kref = |n: u64| 1000.0 * n as f64 / c.total() as f64;
        let messages_per_kref = per_kref(c.control_messages());
        let broadcasts_per_kref = per_kref(c.broadcasts());
        let eval = Evaluation::new(protocol.name(), kind, cpus, c);
        ScalingRow {
            scheme: kind.display_name(cpus),
            cycles_per_ref: eval.cycles_per_ref(&m, &cost_cfg),
            messages_per_kref,
            broadcasts_per_kref,
        }
    });
    let per_size = work.len() / cpu_counts.len();
    let rows = flat.chunks(per_size).map(<[ScalingRow]>::to_vec).collect();
    ScalingStudy { cpu_counts, rows }
}

impl fmt::Display for ScalingStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Extension: section 6 schemes at larger machine sizes")?;
        for (i, cpus) in self.cpu_counts.iter().enumerate() {
            let mut t = Table::new(
                format!("  {cpus} CPUs"),
                vec!["scheme", "cycles/ref", "invals/kref", "bcasts/kref"],
            );
            for r in &self.rows[i] {
                t.row(vec![
                    r.scheme.clone(),
                    cycles(r.cycles_per_ref),
                    format!("{:.2}", r.messages_per_kref),
                    format!("{:.2}", r.broadcasts_per_kref),
                ]);
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// One block-size point of the block-size ablation.
#[derive(Debug, Clone)]
pub struct BlockSizePoint {
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Dir0B cycles/ref (pipelined) at this block size.
    pub dir0b: f64,
    /// Dragon cycles/ref at this block size.
    pub dragon: f64,
}

/// The block-size ablation.
#[derive(Debug, Clone)]
pub struct BlockSizeStudy {
    /// Ascending block sizes.
    pub points: Vec<BlockSizePoint>,
}

/// Sweeps the block size for Dir0B and Dragon on a POPS-like trace,
/// adjusting both the event measurement (block geometry) and the cost
/// model (words per block).
///
/// The trace is identical across every point (same profile and seed), so
/// it is generated once into a [`TraceStore`] and all
/// (block size × scheme) runs — fanned out over `jobs` threads — replay
/// the same shared slice.
pub fn block_size(refs: u64, seed: u64, jobs: usize) -> BlockSizeStudy {
    const OFFSET_BITS: [u32; 4] = [3, 4, 5, 6];
    const KINDS: [ProtocolKind; 2] = [ProtocolKind::Dir0B, ProtocolKind::Dragon];
    let store = TraceStore::new(vec![Profile::pops().with_total_refs(refs)], seed);
    let flat = par_map_indexed(OFFSET_BITS.len() * KINDS.len(), jobs, |i| {
        let geometry = BlockGeometry::new(OFFSET_BITS[i / KINDS.len()]);
        let kind = KINDS[i % KINDS.len()];
        let timing = BusTiming {
            block_words: (geometry.block_bytes() / 4).max(1) as u32,
            ..BusTiming::PAPER
        };
        let m = CostModel::new(BusKind::Pipelined, timing);
        let records = store.records(0, TraceFilter::Full);
        let mut protocol = build(kind, 4);
        let cfg = RunConfig { geometry, ..RunConfig::default().with_process_sharing() };
        let result =
            run(protocol.as_mut(), records.iter().copied(), &cfg).expect("block-size replay");
        let eval = Evaluation::new(protocol.name(), kind, 4, result.counters);
        eval.cycles_per_ref(&m, &CostConfig::PAPER)
    });
    let points = OFFSET_BITS
        .iter()
        .enumerate()
        .map(|(pi, &bits)| BlockSizePoint {
            block_bytes: BlockGeometry::new(bits).block_bytes(),
            dir0b: flat[pi * KINDS.len()],
            dragon: flat[pi * KINDS.len() + 1],
        })
        .collect();
    BlockSizeStudy { points }
}

impl fmt::Display for BlockSizeStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Extension: block-size ablation (pipelined bus, POPS-like trace)",
            vec!["block bytes", "Dir0B", "Dragon"],
        );
        for p in &self.points {
            t.row(vec![p.block_bytes.to_string(), cycles(p.dir0b), cycles(p.dragon)]);
        }
        write!(f, "{t}")
    }
}

/// One finite-cache protocol measurement (the footnote-2 study).
#[derive(Debug, Clone)]
pub struct Footnote2Point {
    /// Cache capacity in blocks (`None` = infinite, the paper's model).
    pub capacity_blocks: Option<usize>,
    /// Coherence-related misses: Dir0B's rm+wm minus Dragon's native
    /// rm+wm under the *same* cache configuration (the paper §5 derives
    /// the infinite-cache value this way: 1.13 − 0.72 = 0.41%).
    pub coherence_miss_pct: f64,
    /// Dir0B total rm+wm percent of references.
    pub total_miss_pct: f64,
    /// Evictions per 1000 references.
    pub eviction_wb_per_kref: f64,
}

/// The paper's footnote 2, simulated: "The coherency-related misses will
/// be fewer in a finite-sized cache because some of the blocks that would
/// be invalidated to enforce consistency in an infinite cache have already
/// been purged in a finite cache due to cache interference."
#[derive(Debug, Clone)]
pub struct Footnote2Study {
    /// Ascending capacities, ending with the infinite reference point.
    pub points: Vec<Footnote2Point>,
}

/// Runs Dir0B through genuinely finite caches (protocol evictions and
/// all), not just the first-order miss-count correction.
pub fn footnote2(wb: &Workbench) -> Footnote2Study {
    use dircc_cache::FiniteCacheConfig;
    let mut points = Vec::new();
    let mut capacities: Vec<Option<usize>> = vec![Some(256), Some(1024), Some(4096), None];
    capacities.reverse(); // run infinite first (no reason, just stable output order after re-reverse)
    capacities.reverse();
    for cap in capacities {
        let mut coherence = Vec::new();
        let mut total = Vec::new();
        let mut wbs = Vec::new();
        for t in 0..wb.num_traces() {
            let miss_pct = |kind: ProtocolKind| -> (f64, f64) {
                let mut protocol = build(kind, wb.n_caches());
                let mut cfg = RunConfig::default().with_process_sharing();
                if let Some(capacity) = cap {
                    cfg = cfg.with_finite_caches(FiniteCacheConfig::with_capacity(capacity, 4));
                }
                let records = wb.records(t, TraceFilter::Full);
                let result = run(protocol.as_mut(), records.iter().copied(), &cfg)
                    .expect("footnote2 replay");
                let c = result.counters;
                (c.pct(c.rm() + c.wm()), 1000.0 * c.cache_evictions() as f64 / c.total() as f64)
            };
            let (dir0b_miss, evictions) = miss_pct(ProtocolKind::Dir0B);
            // Dragon never invalidates: its miss rate is the native
            // (non-coherence) rate under the same cache shape.
            let (dragon_miss, _) = miss_pct(ProtocolKind::Dragon);
            coherence.push((dir0b_miss - dragon_miss).max(0.0));
            total.push(dir0b_miss);
            wbs.push(evictions);
        }
        points.push(Footnote2Point {
            capacity_blocks: cap,
            coherence_miss_pct: mean(&coherence),
            total_miss_pct: mean(&total),
            eviction_wb_per_kref: mean(&wbs),
        });
    }
    Footnote2Study { points }
}

impl fmt::Display for Footnote2Study {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Extension: footnote 2 — coherence misses shrink in finite caches (Dir0B)",
            vec!["capacity (blocks)", "coherence-miss %", "total rm+wm %", "evictions/kref"],
        );
        for p in &self.points {
            t.row(vec![
                p.capacity_blocks.map_or("infinite".to_string(), |c| c.to_string()),
                format!("{:.3}", p.coherence_miss_pct),
                format!("{:.3}", p.total_miss_pct),
                format!("{:.2}", p.eviction_wb_per_kref),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote2_sharing_misses_shrink_in_finite_caches() {
        let wb = Workbench::paper_scaled(60_000, 3);
        let s = footnote2(&wb);
        let infinite = s.points.iter().find(|p| p.capacity_blocks.is_none()).unwrap();
        let smallest = &s.points[0];
        assert!(
            smallest.coherence_miss_pct <= infinite.coherence_miss_pct + 0.02,
            "footnote 2: coherence misses must not grow in a finite cache              ({} vs {})",
            smallest.coherence_miss_pct,
            infinite.coherence_miss_pct
        );
        assert!(smallest.total_miss_pct > infinite.total_miss_pct, "replacement misses add up");
        assert!(smallest.eviction_wb_per_kref > 0.0);
        assert_eq!(infinite.eviction_wb_per_kref, 0.0);
        assert!(s.to_string().contains("footnote 2"));
    }

    #[test]
    fn finite_cache_misses_shrink_with_capacity() {
        let wb = Workbench::paper_scaled(60_000, 3);
        let s = finite_cache(&wb);
        assert_eq!(s.points.len(), 4);
        for w in s.points.windows(2) {
            assert!(
                w[1].replacement_miss_rate <= w[0].replacement_miss_rate + 1e-9,
                "bigger caches can't miss more: {:?}",
                s.points
            );
        }
        // Corrections only ever add cost.
        for p in &s.points {
            assert!(p.dir0b_cycles_corrected >= s.dir0b_infinite);
        }
        assert!(s.to_string().contains("finite-cache"));
    }

    #[test]
    fn scaling_broadcast_schemes_keep_broadcasting() {
        let s = scaling(40_000, 9, 2);
        assert_eq!(s.cpu_counts, vec![4, 8, 16, 32]);
        for &cpus in &s.cpu_counts {
            // The full map never broadcasts; Dir0B always does.
            assert_eq!(s.broadcasts(cpus, "DirnNB").unwrap(), 0.0);
            assert!(s.broadcasts(cpus, "Dir0B").unwrap() > 0.0);
        }
        // Dir1B broadcasts stay below Dir0B's at every size.
        for &cpus in &s.cpu_counts {
            assert!(s.broadcasts(cpus, "Dir1B").unwrap() <= s.broadcasts(cpus, "Dir0B").unwrap());
        }
        assert!(s.to_string().contains("32 CPUs"));
    }

    #[test]
    fn sweeps_are_deterministic_across_job_counts() {
        let a = scaling(10_000, 9, 1);
        let b = scaling(10_000, 9, 4);
        for (ra, rb) in a.rows.iter().flatten().zip(b.rows.iter().flatten()) {
            assert_eq!(ra.scheme, rb.scheme);
            assert_eq!(ra.cycles_per_ref.to_bits(), rb.cycles_per_ref.to_bits());
            assert_eq!(ra.broadcasts_per_kref.to_bits(), rb.broadcasts_per_kref.to_bits());
        }
        let a = block_size(10_000, 5, 1);
        let b = block_size(10_000, 5, 4);
        for (pa, pb) in a.points.iter().zip(b.points.iter()) {
            assert_eq!(pa.block_bytes, pb.block_bytes);
            assert_eq!(pa.dir0b.to_bits(), pb.dir0b.to_bits());
            assert_eq!(pa.dragon.to_bits(), pb.dragon.to_bits());
        }
    }

    #[test]
    fn block_size_sweep_runs_and_orders_schemes() {
        let s = block_size(40_000, 5, 2);
        assert_eq!(s.points.len(), 4);
        for p in &s.points {
            assert!(p.dir0b > 0.0 && p.dragon > 0.0);
            assert!(p.dragon < p.dir0b, "Dragon stays cheaper at {} -byte blocks", p.block_bytes);
        }
        assert!(s.to_string().contains("block bytes"));
    }
}

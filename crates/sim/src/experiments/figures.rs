//! Reproductions of the paper's Figures 1-5.

use crate::metrics::mean;
use crate::report::{bar, cycles, Table};
use crate::workbench::{TraceFilter, Workbench};
use core::fmt;
use dircc_bus::{CostConfig, CostModel};
use dircc_core::ProtocolKind;

/// Figure 1: histogram of the number of caches in which a block must be
/// invalidated on a write to a previously-clean block.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// Percentage of invalidation situations with exactly `i` other caches
    /// (index 0..=3), with index 4 aggregating 4 or more.
    pub percent: [f64; 5],
    /// Fraction of situations needing invalidations in ≤ 1 cache (the
    /// paper's ">85%" headline).
    pub at_most_one: f64,
}

/// Builds Figure 1 from the `Dir0B` runs (the paper computes it for the
/// invalidation state model shared by `Dir0B`/`WTI`).
pub fn figure1(wb: &Workbench) -> Figure1 {
    let merged = wb.merged_counters(ProtocolKind::Dir0B, TraceFilter::Full);
    let hist = merged.inval_histogram();
    let total: u64 = hist.iter().sum();
    let mut percent = [0.0; 5];
    if total > 0 {
        for (i, v) in hist.iter().enumerate() {
            let bucket = i.min(4);
            percent[bucket] += 100.0 * *v as f64 / total as f64;
        }
    }
    Figure1 { percent, at_most_one: merged.inval_at_most(1) }
}

impl fmt::Display for Figure1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: Number of caches in which a block must be invalidated\n\
             on a write to a previously-clean block"
        )?;
        for (i, p) in self.percent.iter().enumerate() {
            let label = if i < 4 { format!("{i}") } else { "4+".to_string() };
            writeln!(f, "  {label:>2}: {p:6.2}%  {}", bar(*p, 100.0, 50))?;
        }
        writeln!(f, "  invalidations in <=1 cache: {:.1}%", self.at_most_one * 100.0)
    }
}

/// One scheme's bus-cycle range in Figures 2/3: the bar's low end is the
/// pipelined bus, the high end the non-pipelined bus.
#[derive(Debug, Clone)]
pub struct CycleRange {
    /// Scheme name.
    pub scheme: String,
    /// Cycles/ref on the pipelined bus.
    pub pipelined: f64,
    /// Cycles/ref on the non-pipelined bus.
    pub non_pipelined: f64,
}

/// Figure 2: range of bus cycles per reference, averaged over the traces.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// One range bar per scheme, paper order.
    pub ranges: Vec<CycleRange>,
}

impl Figure2 {
    /// Looks up a scheme's range.
    pub fn range(&self, scheme: &str) -> Option<&CycleRange> {
        self.ranges.iter().find(|r| r.scheme == scheme)
    }
}

/// Builds Figure 2.
pub fn figure2(wb: &Workbench) -> Figure2 {
    let cfg = CostConfig::PAPER;
    let [p, np] = CostModel::paper_pair();
    let ranges = wb
        .paper_kinds()
        .into_iter()
        .map(|kind| {
            let evals = wb.evaluations(kind, TraceFilter::Full);
            let pipe: Vec<f64> = evals.iter().map(|e| e.cycles_per_ref(&p, &cfg)).collect();
            let nonp: Vec<f64> = evals.iter().map(|e| e.cycles_per_ref(&np, &cfg)).collect();
            CycleRange {
                scheme: kind.display_name(wb.n_caches()),
                pipelined: mean(&pipe),
                non_pipelined: mean(&nonp),
            }
        })
        .collect();
    Figure2 { ranges }
}

impl fmt::Display for Figure2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 2: Range of bus cycle requirements (average over traces)")?;
        writeln!(f, "(low end = pipelined bus, high end = non-pipelined bus)")?;
        let max = self.ranges.iter().map(|r| r.non_pipelined).fold(0.0, f64::max);
        for r in &self.ranges {
            writeln!(
                f,
                "  {:>7}: {} - {}  {}",
                r.scheme,
                cycles(r.pipelined),
                cycles(r.non_pipelined),
                bar(r.non_pipelined, max, 40)
            )?;
        }
        Ok(())
    }
}

/// Figure 3: per-trace bus-cycle ranges.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// Trace names.
    pub traces: Vec<String>,
    /// `per_trace[t]` holds Figure 2-style ranges for trace `t`.
    pub per_trace: Vec<Vec<CycleRange>>,
}

/// Builds Figure 3.
pub fn figure3(wb: &Workbench) -> Figure3 {
    let cfg = CostConfig::PAPER;
    let [p, np] = CostModel::paper_pair();
    let mut per_trace = Vec::new();
    for t in 0..wb.num_traces() {
        let ranges = wb
            .paper_kinds()
            .into_iter()
            .map(|kind| {
                let e = wb.evaluation(kind, t, TraceFilter::Full);
                CycleRange {
                    scheme: kind.display_name(wb.n_caches()),
                    pipelined: e.cycles_per_ref(&p, &cfg),
                    non_pipelined: e.cycles_per_ref(&np, &cfg),
                }
            })
            .collect();
        per_trace.push(ranges);
    }
    Figure3 { traces: wb.trace_names(), per_trace }
}

impl Figure3 {
    /// Pipelined cycles/ref for `(trace, scheme)`.
    pub fn pipelined(&self, trace: &str, scheme: &str) -> Option<f64> {
        let t = self.traces.iter().position(|n| n == trace)?;
        self.per_trace[t].iter().find(|r| r.scheme == scheme).map(|r| r.pipelined)
    }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: Range of bus cycle requirements per trace")?;
        for (t, name) in self.traces.iter().enumerate() {
            writeln!(f, "  {name}:")?;
            for r in &self.per_trace[t] {
                writeln!(
                    f,
                    "    {:>7}: {} - {}",
                    r.scheme,
                    cycles(r.pipelined),
                    cycles(r.non_pipelined)
                )?;
            }
        }
        Ok(())
    }
}

/// Figure 4: breakdown of each scheme's bus cycles as a fraction of its
/// own total (pipelined bus).
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Scheme names, paper order.
    pub schemes: Vec<String>,
    /// `(category, fraction)` rows per scheme; fractions sum to ~1.
    pub fractions: Vec<Vec<(&'static str, f64)>>,
}

impl Figure4 {
    /// The fraction of a scheme's cycles spent in `category`.
    pub fn fraction(&self, scheme: &str, category: &str) -> Option<f64> {
        let i = self.schemes.iter().position(|s| s == scheme)?;
        self.fractions[i].iter().find(|(c, _)| *c == category).map(|(_, v)| *v)
    }
}

/// Builds Figure 4 from the Table 5 breakdowns.
pub fn figure4(wb: &Workbench) -> Figure4 {
    let t5 = super::tables::table5(wb);
    let mut fractions = Vec::new();
    for b in &t5.breakdowns {
        let total = b.total();
        let rows = b.rows();
        let fracs = rows
            .into_iter()
            .map(|(label, v)| (label, if total > 0.0 { v / total } else { 0.0 }))
            .collect();
        fractions.push(fracs);
    }
    Figure4 { schemes: t5.schemes, fractions }
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: Bus cycle breakdown as a fraction of each scheme's total")?;
        for (i, scheme) in self.schemes.iter().enumerate() {
            writeln!(f, "  {scheme}:")?;
            for (label, frac) in &self.fractions[i] {
                if *frac > 0.0005 {
                    writeln!(f, "    {label:>10}: {:5.1}%  {}", frac * 100.0, bar(*frac, 1.0, 40))?;
                }
            }
        }
        Ok(())
    }
}

/// Figure 5: average bus cycles per bus transaction.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// `(scheme, pipelined cycles/transaction)` in paper order.
    pub per_transaction: Vec<(String, f64)>,
}

impl Figure5 {
    /// Cycles per transaction for a scheme.
    pub fn value(&self, scheme: &str) -> Option<f64> {
        self.per_transaction.iter().find(|(s, _)| s == scheme).map(|(_, v)| *v)
    }
}

/// Builds Figure 5 (pipelined bus, averaged over traces).
pub fn figure5(wb: &Workbench) -> Figure5 {
    let cfg = CostConfig::PAPER;
    let m = CostModel::pipelined();
    let per_transaction = wb
        .paper_kinds()
        .into_iter()
        .map(|kind| {
            let evals = wb.evaluations(kind, TraceFilter::Full);
            let vals: Vec<f64> = evals.iter().map(|e| e.cycles_per_transaction(&m, &cfg)).collect();
            (kind.display_name(wb.n_caches()), mean(&vals))
        })
        .collect();
    Figure5 { per_transaction }
}

impl fmt::Display for Figure5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Figure 5: Average bus cycles per bus transaction (pipelined bus)",
            vec!["Scheme", "Cycles/transaction"],
        );
        for (scheme, v) in &self.per_transaction {
            t.row(vec![scheme.clone(), format!("{v:.2}")]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb() -> Workbench {
        Workbench::paper_scaled(60_000, 3)
    }

    #[test]
    fn figure1_mostly_single_invalidations() {
        let f1 = figure1(&wb());
        assert!(
            f1.at_most_one > 0.85,
            "paper: over 85% of invalidation situations touch <=1 cache, got {}",
            f1.at_most_one
        );
        let sum: f64 = f1.percent.iter().sum();
        assert!((sum - 100.0).abs() < 0.01, "histogram sums to 100%, got {sum}");
        assert!(f1.to_string().contains("<=1 cache"));
    }

    #[test]
    fn figure2_ranges_and_ordering() {
        let f2 = figure2(&wb());
        assert_eq!(f2.ranges.len(), 4);
        for r in &f2.ranges {
            assert!(r.non_pipelined > r.pipelined, "{}: non-pipelined must cost more", r.scheme);
        }
        let dir1 = f2.range("Dir1NB").unwrap().pipelined;
        let dragon = f2.range("Dragon").unwrap().pipelined;
        assert!(dir1 > 3.0 * dragon, "Dir1NB ({dir1}) far above Dragon ({dragon})");
    }

    #[test]
    fn figure3_pero_is_cheapest_trace() {
        let f3 = figure3(&wb());
        // WTI is omitted: its cost tracks total write volume, and PERO's
        // write fraction is the highest of the three traces (r/w ~= 3.1).
        // The "PERO much smaller" observation is about sharing-driven cost.
        for scheme in ["Dir0B", "Dragon", "Dir1NB"] {
            let pero = f3.pipelined("PERO", scheme).unwrap();
            let pops = f3.pipelined("POPS", scheme).unwrap();
            assert!(pero < pops, "{scheme}: PERO ({pero}) should be cheaper than POPS ({pops})");
        }
        assert!(f3.to_string().contains("PERO"));
    }

    #[test]
    fn figure4_fractions_sum_to_one() {
        let f4 = figure4(&wb());
        for (i, scheme) in f4.schemes.iter().enumerate() {
            let sum: f64 = f4.fractions[i].iter().map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{scheme}: fractions sum to {sum}");
        }
        // WTI is dominated by write-throughs.
        let wt = f4.fraction("WTI", "wt or wup").unwrap();
        assert!(wt > 0.5, "WTI write-through share {wt}");
        // Dir0B's directory share is small (the paper's bottleneck result).
        let dir = f4.fraction("Dir0B", "dir access").unwrap();
        assert!(dir < 0.2, "Dir0B directory share {dir}");
    }

    #[test]
    fn figure5_dir1nb_has_heaviest_transactions() {
        let f5 = figure5(&wb());
        let dir1 = f5.value("Dir1NB").unwrap();
        let wti = f5.value("WTI").unwrap();
        let dir0 = f5.value("Dir0B").unwrap();
        assert!(dir1 > dir0, "Dir1NB {dir1} > Dir0B {dir0}");
        assert!(dir0 > wti, "Dir0B {dir0} > WTI {wti}");
        assert!((1.0..=7.0).contains(&dir1));
    }
}

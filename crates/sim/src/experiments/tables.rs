//! Reproductions of the paper's Tables 1-5.

use crate::metrics::mean;
use crate::report::{cycles, pct, Table};
use crate::workbench::{TraceFilter, Workbench};
use core::fmt;
use dircc_bus::{Breakdown, BusTiming, CostConfig, CostModel};
use dircc_core::EventCounters;

/// Table 1: timing for fundamental bus operations.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The fundamental timings.
    pub timing: BusTiming,
}

/// Builds Table 1 (pure configuration; no simulation needed).
pub fn table1() -> Table1 {
    Table1 { timing: BusTiming::PAPER }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Table 1: Timing for fundamental bus operations",
            vec!["Operation", "Cycles"],
        );
        let rows = [
            ("Transfer 1 data word", self.timing.transfer_word),
            ("Invalidate", self.timing.invalidate),
            ("Wait for Directory", self.timing.wait_directory),
            ("Wait for Memory", self.timing.wait_memory),
            ("Wait for Cache", self.timing.wait_cache),
        ];
        for (name, v) in rows {
            t.row(vec![name.to_string(), v.to_string()]);
        }
        write!(f, "{t}")
    }
}

/// Table 2: summary of bus cycle costs for both bus models.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The pipelined-bus cost model.
    pub pipelined: CostModel,
    /// The non-pipelined-bus cost model.
    pub non_pipelined: CostModel,
}

/// Builds Table 2 by deriving both cost models from Table 1.
pub fn table2() -> Table2 {
    Table2 { pipelined: CostModel::pipelined(), non_pipelined: CostModel::non_pipelined() }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Table 2: Summary of bus cycle costs",
            vec!["Access type", "Pipelined Bus", "Non-Pipelined Bus"],
        );
        let rows: [(&str, u32, u32); 6] = [
            ("memory access", self.pipelined.mem_access, self.non_pipelined.mem_access),
            ("cache access", self.pipelined.cache_access, self.non_pipelined.cache_access),
            ("write-back", self.pipelined.write_back, self.non_pipelined.write_back),
            ("write-through / update", self.pipelined.write_word, self.non_pipelined.write_word),
            ("directory check", self.pipelined.dir_check, self.non_pipelined.dir_check),
            ("invalidate", self.pipelined.invalidate, self.non_pipelined.invalidate),
        ];
        for (name, p, np) in rows {
            t.row(vec![name.to_string(), p.to_string(), np.to_string()]);
        }
        write!(f, "{t}")
    }
}

/// One trace's Table 3 row (counts, like the paper, reported in thousands
/// by the display).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Trace name.
    pub name: String,
    /// Total references.
    pub refs: u64,
    /// Instruction fetches.
    pub instr: u64,
    /// Data reads.
    pub data_reads: u64,
    /// Data writes.
    pub data_writes: u64,
    /// User-mode references.
    pub user: u64,
    /// System-mode references.
    pub sys: u64,
    /// Fraction of data reads that are lock spins (§4.4 commentary).
    pub spin_fraction: f64,
}

/// Table 3: summary of trace characteristics.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One row per trace, paper order.
    pub rows: Vec<Table3Row>,
}

/// Builds Table 3 from the workbench's synthetic traces.
pub fn table3(wb: &Workbench) -> Table3 {
    let rows = (0..wb.num_traces())
        .map(|i| {
            let s = wb.trace_stats(i);
            Table3Row {
                name: wb.trace_names()[i].clone(),
                refs: s.total(),
                instr: s.instr(),
                data_reads: s.reads(),
                data_writes: s.writes(),
                user: s.user(),
                sys: s.system(),
                spin_fraction: s.spin_fraction_of_reads(),
            }
        })
        .collect();
    Table3 { rows }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Table 3: Summary of trace characteristics (thousands of references)",
            vec!["Trace", "Refs", "Instr", "DRd", "DWrt", "User", "Sys", "spin/rd"],
        );
        let k = |v: u64| format!("{}", v / 1000);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                k(r.refs),
                k(r.instr),
                k(r.data_reads),
                k(r.data_writes),
                k(r.user),
                k(r.sys),
                format!("{:.2}", r.spin_fraction),
            ]);
        }
        write!(f, "{t}")
    }
}

/// The Table 4 event-frequency rows for one scheme, as percentages of all
/// references averaged over the traces.
#[derive(Debug, Clone)]
pub struct Table4Column {
    /// Scheme name (paper order: Dir1NB, WTI, Dir0B, Dragon).
    pub scheme: String,
    /// `(row label, mean percent)` pairs in Table 4 row order.
    pub rows: Vec<(&'static str, f64)>,
}

/// Table 4: event frequencies as a percentage of all references.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// One column per scheme.
    pub columns: Vec<Table4Column>,
}

impl Table4 {
    /// Looks up one cell by scheme and row label.
    pub fn cell(&self, scheme: &str, label: &str) -> Option<f64> {
        let col = self.columns.iter().find(|c| c.scheme == scheme)?;
        col.rows.iter().find(|(l, _)| *l == label).map(|(_, v)| *v)
    }
}

/// Table 4 row labels, in paper order.
pub const TABLE4_ROWS: [&str; 17] = [
    "instr",
    "read",
    "rd-hit",
    "rd-miss(rm)",
    "rm-blk-cln",
    "rm-blk-drty",
    "rm-first-ref",
    "write",
    "wrt-hit(wh)",
    "wh-blk-cln",
    "wh-blk-drty",
    "wh-distrib",
    "wh-local",
    "wrt-miss(wm)",
    "wm-blk-cln",
    "wm-blk-drty",
    "wm-first-ref",
];

fn table4_value(c: &EventCounters, label: &str) -> f64 {
    let v = match label {
        "instr" => c.instr(),
        "read" => c.reads(),
        "rd-hit" => c.read_hits(),
        "rd-miss(rm)" => c.rm(),
        "rm-blk-cln" => c.rm_blk_cln() + c.rm_blk_mem(),
        "rm-blk-drty" => c.rm_blk_drty(),
        "rm-first-ref" => c.rm_first_ref(),
        "write" => c.writes(),
        "wrt-hit(wh)" => c.wh(),
        "wh-blk-cln" => c.wh_blk_cln(),
        "wh-blk-drty" => c.wh_blk_drty(),
        "wh-distrib" => c.wh_distrib(),
        "wh-local" => c.wh_local(),
        "wrt-miss(wm)" => c.wm(),
        "wm-blk-cln" => c.wm_blk_cln() + c.wm_blk_mem(),
        "wm-blk-drty" => c.wm_blk_drty(),
        "wm-first-ref" => c.wm_first_ref(),
        _ => unreachable!("unknown Table 4 row {label}"),
    };
    c.pct(v)
}

/// Builds Table 4 by measuring each scheme's event frequencies on every
/// trace and averaging the percentages.
pub fn table4(wb: &Workbench) -> Table4 {
    let columns = wb
        .paper_kinds()
        .into_iter()
        .map(|kind| {
            let evals = wb.evaluations(kind, TraceFilter::Full);
            let rows = TABLE4_ROWS
                .into_iter()
                .map(|label| {
                    let vals: Vec<f64> =
                        evals.iter().map(|e| table4_value(&e.counters, label)).collect();
                    (label, mean(&vals))
                })
                .collect();
            Table4Column { scheme: kind.display_name(wb.n_caches()), rows }
        })
        .collect();
    Table4 { columns }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Event"];
        let names: Vec<&str> = self.columns.iter().map(|c| c.scheme.as_str()).collect();
        headers.extend(names);
        let mut t = Table::new("Table 4: Event frequencies (percent of all references)", headers);
        for (i, label) in TABLE4_ROWS.iter().enumerate() {
            let mut row = vec![label.to_string()];
            for col in &self.columns {
                row.push(pct(col.rows[i].1));
            }
            t.row(row);
        }
        write!(f, "{t}")
    }
}

/// Table 5: breakdown of bus cycles per reference (pipelined bus).
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Scheme names in paper order.
    pub schemes: Vec<String>,
    /// Per-scheme per-reference breakdowns, averaged over the traces.
    pub breakdowns: Vec<Breakdown>,
}

impl Table5 {
    /// Cumulative cycles/reference for a scheme by name.
    pub fn cumulative(&self, scheme: &str) -> Option<f64> {
        let i = self.schemes.iter().position(|s| s == scheme)?;
        Some(self.breakdowns[i].total())
    }
}

/// Builds Table 5 on the pipelined bus at the paper's base cost config.
pub fn table5(wb: &Workbench) -> Table5 {
    let m = CostModel::pipelined();
    let cfg = CostConfig::PAPER;
    let mut schemes = Vec::new();
    let mut breakdowns = Vec::new();
    for kind in wb.paper_kinds() {
        let evals = wb.evaluations(kind, TraceFilter::Full);
        let per_trace: Vec<Breakdown> =
            evals.iter().map(|e| e.breakdown_per_ref(&m, &cfg)).collect();
        let avg = Breakdown {
            mem_access: mean(&per_trace.iter().map(|b| b.mem_access).collect::<Vec<_>>()),
            write_back: mean(&per_trace.iter().map(|b| b.write_back).collect::<Vec<_>>()),
            invalidate: mean(&per_trace.iter().map(|b| b.invalidate).collect::<Vec<_>>()),
            write_update: mean(&per_trace.iter().map(|b| b.write_update).collect::<Vec<_>>()),
            dir_access: mean(&per_trace.iter().map(|b| b.dir_access).collect::<Vec<_>>()),
            aux: mean(&per_trace.iter().map(|b| b.aux).collect::<Vec<_>>()),
            overhead: mean(&per_trace.iter().map(|b| b.overhead).collect::<Vec<_>>()),
        };
        schemes.push(kind.display_name(wb.n_caches()));
        breakdowns.push(avg);
    }
    Table5 { schemes, breakdowns }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Access type"];
        headers.extend(self.schemes.iter().map(String::as_str));
        let mut t =
            Table::new("Table 5: Breakdown of bus cycles per reference (pipelined bus)", headers);
        type Category = (&'static str, fn(&Breakdown) -> f64);
        let categories: [Category; 5] = [
            ("mem access", |b| b.mem_access),
            ("write-back", |b| b.write_back),
            ("invalidate", |b| b.invalidate),
            ("wt or wup", |b| b.write_update),
            ("dir access", |b| b.dir_access),
        ];
        for (label, get) in categories {
            let mut row = vec![label.to_string()];
            row.extend(self.breakdowns.iter().map(|b| cycles(get(b))));
            t.row(row);
        }
        let mut row = vec!["cumulative".to_string()];
        row.extend(self.breakdowns.iter().map(|b| cycles(b.total())));
        t.row(row);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb() -> Workbench {
        Workbench::paper_scaled(60_000, 3)
    }

    #[test]
    fn table1_and_2_match_paper_constants() {
        let t1 = table1();
        assert_eq!(t1.timing.wait_memory, 2);
        assert!(t1.to_string().contains("Wait for Memory"));
        let t2 = table2();
        assert_eq!(t2.pipelined.mem_access, 5);
        assert_eq!(t2.non_pipelined.mem_access, 7);
        assert!(t2.to_string().contains("memory access"));
    }

    #[test]
    fn table3_reports_every_trace() {
        let wb = wb();
        let t3 = table3(&wb);
        assert_eq!(t3.rows.len(), 3);
        assert!(t3.rows.iter().all(|r| r.refs == 60_000));
        // POPS/THOR spin heavily; PERO does not.
        assert!(t3.rows[0].spin_fraction > 0.15);
        assert!(t3.rows[2].spin_fraction < 0.10);
        assert!(t3.to_string().contains("POPS"));
    }

    #[test]
    fn table4_shapes_match_paper() {
        let wb = wb();
        let t4 = table4(&wb);
        assert_eq!(t4.columns.len(), 4);
        // Dir1NB's read-miss rate dwarfs Dir0B's (paper: 5.18% vs 0.62%).
        let dir1 = t4.cell("Dir1NB", "rd-miss(rm)").unwrap();
        let dir0 = t4.cell("Dir0B", "rd-miss(rm)").unwrap();
        let dragon = t4.cell("Dragon", "rd-miss(rm)").unwrap();
        assert!(dir1 > 4.0 * dir0, "Dir1NB rm {dir1} vs Dir0B rm {dir0}");
        assert!(dragon <= dir0 + 1e-9, "Dragon has the native miss rate");
        // WTI and Dir0B share the state-change model.
        let wti = t4.cell("WTI", "rd-miss(rm)").unwrap();
        assert!((wti - dir0).abs() < 1e-9, "WTI rm {wti} == Dir0B rm {dir0}");
        // Instruction share ≈ half of references for every scheme.
        for col in &t4.columns {
            let instr = t4.cell(&col.scheme, "instr").unwrap();
            assert!((45.0..=55.0).contains(&instr), "{}: instr {instr}", col.scheme);
        }
        assert!(t4.to_string().contains("rm-blk-cln"));
    }

    #[test]
    fn table5_orders_schemes_like_the_paper() {
        let wb = wb();
        let t5 = table5(&wb);
        let dir1 = t5.cumulative("Dir1NB").unwrap();
        let wti = t5.cumulative("WTI").unwrap();
        let dir0 = t5.cumulative("Dir0B").unwrap();
        let dragon = t5.cumulative("Dragon").unwrap();
        assert!(dir1 > wti, "Dir1NB {dir1} > WTI {wti}");
        assert!(wti > dir0, "WTI {wti} > Dir0B {dir0}");
        assert!(dir0 > dragon, "Dir0B {dir0} > Dragon {dragon}");
        assert!(t5.to_string().contains("cumulative"));
    }
}

//! The workbench: generates the three synthetic traces and memoizes one
//! simulation run per (protocol, trace, filter) triple.
//!
//! Every experiment shares a workbench so that, exactly as in the paper,
//! each protocol's event frequencies are measured once and then re-priced
//! under as many hardware models as needed.

use crate::engine::{run, RunConfig};
use crate::metrics::Evaluation;
use dircc_core::{build, EventCounters, ProtocolKind};
use dircc_trace::filter::exclude_lock_spins;
use dircc_trace::gen::{Generator, Profile};
use dircc_trace::stats::TraceStats;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Trace preprocessing applied before replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFilter {
    /// The full trace.
    Full,
    /// Lock-test reads removed (the §5.2 experiment).
    ExcludeLockSpins,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    kind: ProtocolKind,
    trace: usize,
    filter: TraceFilter,
}

/// Shared experiment state: profiles, seed, and memoized runs.
#[derive(Debug)]
pub struct Workbench {
    profiles: Vec<Profile>,
    seed: u64,
    memo: RefCell<HashMap<MemoKey, Rc<EventCounters>>>,
    stats_memo: RefCell<HashMap<usize, Rc<TraceStats>>>,
}

impl Workbench {
    /// Creates the paper's workbench: POPS, THOR and PERO profiles at their
    /// full scale (~3.2-3.5M references each).
    pub fn paper(seed: u64) -> Self {
        Self::with_profiles(Profile::paper_suite(), seed)
    }

    /// Creates the paper's workbench with every trace truncated to
    /// `total_refs` references (for fast tests and smoke runs).
    pub fn paper_scaled(total_refs: u64, seed: u64) -> Self {
        let profiles =
            Profile::paper_suite().into_iter().map(|p| p.with_total_refs(total_refs)).collect();
        Self::with_profiles(profiles, seed)
    }

    /// Creates a workbench over arbitrary profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or the profiles disagree on CPU count.
    pub fn with_profiles(profiles: Vec<Profile>, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "need at least one trace profile");
        assert!(
            profiles.windows(2).all(|w| w[0].cpus == w[1].cpus),
            "profiles must agree on CPU count"
        );
        Workbench {
            profiles,
            seed,
            memo: RefCell::new(HashMap::new()),
            stats_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Number of caches (= CPUs) in the simulated machine.
    pub fn n_caches(&self) -> usize {
        usize::from(self.profiles[0].cpus)
    }

    /// Trace names in order (e.g. `POPS`, `THOR`, `PERO`).
    pub fn trace_names(&self) -> Vec<String> {
        self.profiles.iter().map(|p| p.name.to_string()).collect()
    }

    /// Number of traces.
    pub fn num_traces(&self) -> usize {
        self.profiles.len()
    }

    /// The trace profiles.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    fn records(&self, trace: usize, filter: TraceFilter) -> Box<dyn Iterator<Item = dircc_trace::TraceRecord>> {
        let generator = Generator::new(self.profiles[trace].clone(), self.seed);
        match filter {
            TraceFilter::Full => Box::new(generator),
            TraceFilter::ExcludeLockSpins => Box::new(exclude_lock_spins(generator)),
        }
    }

    /// Reference-stream statistics of one trace (memoized).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn trace_stats(&self, trace: usize) -> Rc<TraceStats> {
        if let Some(s) = self.stats_memo.borrow().get(&trace) {
            return Rc::clone(s);
        }
        let stats: TraceStats = self.records(trace, TraceFilter::Full).collect();
        let rc = Rc::new(stats);
        self.stats_memo.borrow_mut().insert(trace, Rc::clone(&rc));
        rc
    }

    /// Event frequencies for one protocol on one trace (memoized; this is
    /// the paper's "one simulation run per protocol").
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range or the replay itself fails (a
    /// protocol invariant bug — not an expected runtime condition).
    pub fn counters(
        &self,
        kind: ProtocolKind,
        trace: usize,
        filter: TraceFilter,
    ) -> Rc<EventCounters> {
        let key = MemoKey { kind, trace, filter };
        if let Some(c) = self.memo.borrow().get(&key) {
            return Rc::clone(c);
        }
        let mut protocol = build(kind, self.n_caches());
        // The paper classifies sharing per process ("a block is considered
        // shared only if it is accessed by more than one process"), which
        // excludes migration-induced sharing from the study.
        let cfg = RunConfig::default().with_process_sharing();
        let result = run(protocol.as_mut(), self.records(trace, filter), &cfg)
            .expect("trace replay failed");
        let rc = Rc::new(result.counters);
        self.memo.borrow_mut().insert(key, Rc::clone(&rc));
        rc
    }

    /// An [`Evaluation`] for one protocol on one trace.
    pub fn evaluation(&self, kind: ProtocolKind, trace: usize, filter: TraceFilter) -> Evaluation {
        let counters = self.counters(kind, trace, filter);
        Evaluation::new(
            kind.display_name(self.n_caches()),
            kind,
            self.n_caches(),
            (*counters).clone(),
        )
    }

    /// Evaluations of one protocol across every trace (paper order).
    pub fn evaluations(&self, kind: ProtocolKind, filter: TraceFilter) -> Vec<Evaluation> {
        (0..self.num_traces()).map(|t| self.evaluation(kind, t, filter)).collect()
    }

    /// Merged counters of one protocol across all traces (for quantities
    /// like Figure 1's histogram that the paper aggregates).
    pub fn merged_counters(&self, kind: ProtocolKind, filter: TraceFilter) -> EventCounters {
        let mut merged = EventCounters::new();
        for t in 0..self.num_traces() {
            merged.merge(&self.counters(kind, t, filter));
        }
        merged
    }

    /// The four schemes of the paper's main evaluation.
    pub fn paper_kinds(&self) -> [ProtocolKind; 4] {
        [
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::Wti,
            ProtocolKind::Dir0B,
            ProtocolKind::Dragon,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workbench {
        Workbench::paper_scaled(20_000, 7)
    }

    #[test]
    fn paper_workbench_has_three_traces() {
        let wb = small();
        assert_eq!(wb.trace_names(), vec!["POPS", "THOR", "PERO"]);
        assert_eq!(wb.n_caches(), 4);
        assert_eq!(wb.num_traces(), 3);
    }

    #[test]
    fn memoization_returns_same_counters() {
        let wb = small();
        let a = wb.counters(ProtocolKind::Dir0B, 0, TraceFilter::Full);
        let b = wb.counters(ProtocolKind::Dir0B, 0, TraceFilter::Full);
        assert!(Rc::ptr_eq(&a, &b), "second call must hit the memo");
    }

    #[test]
    fn filtered_runs_differ_from_full_runs() {
        let wb = small();
        let full = wb.counters(ProtocolKind::DirNb { pointers: 1 }, 0, TraceFilter::Full);
        let filt =
            wb.counters(ProtocolKind::DirNb { pointers: 1 }, 0, TraceFilter::ExcludeLockSpins);
        assert!(filt.total() < full.total(), "lock spins removed");
        assert!(filt.rm() < full.rm(), "Dir1NB loses its lock ping-pong misses");
    }

    #[test]
    fn evaluation_names_follow_paper() {
        let wb = small();
        let e = wb.evaluation(ProtocolKind::DirNb { pointers: 4 }, 0, TraceFilter::Full);
        assert_eq!(e.name, "DirnNB");
    }

    #[test]
    fn merged_counters_sum_traces() {
        let wb = small();
        let merged = wb.merged_counters(ProtocolKind::Wti, TraceFilter::Full);
        assert_eq!(merged.total(), 60_000);
    }

    #[test]
    fn trace_stats_are_memoized_and_sized() {
        let wb = small();
        let s1 = wb.trace_stats(1);
        let s2 = wb.trace_stats(1);
        assert!(Rc::ptr_eq(&s1, &s2));
        assert_eq!(s1.total(), 20_000);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_profiles_rejected() {
        let _ = Workbench::with_profiles(vec![], 0);
    }
}

//! The workbench: generates the three synthetic traces and memoizes one
//! simulation run per (protocol, trace, filter) triple.
//!
//! Every experiment shares a workbench so that, exactly as in the paper,
//! each protocol's event frequencies are measured once and then re-priced
//! under as many hardware models as needed.
//!
//! The workbench is `Send + Sync`: traces are materialized once into a
//! shared [`TraceStore`] and every memoized run sits behind a per-key
//! [`OnceLock`], so the (protocol × trace × filter) matrix can be fanned
//! out over threads with [`Workbench::warm`] while later lookups stay
//! lock-free reads of the same `Arc`s. Results are deterministic: a run's
//! counters depend only on (profile, seed, protocol, filter), never on
//! which thread computed them or in what order.
//!
//! # Observability
//!
//! Every actually-executed run records its internal phases (`generate`,
//! `filter`, `intern`, `replay`) into a shared [`SpanLog`] — the single
//! timing path: the per-run wall-clock summary ([`Workbench::timings`],
//! [`Workbench::timing_summary`]) is derived from the `replay` spans, and
//! the whole log exports as Chrome trace-event JSON via `dircc profile`.
//! With [`Workbench::with_window`], each run additionally samples counter
//! deltas every K references into a [`RunSeries`]; the replay itself then
//! uses a [`WindowedRecorder`], but counters stay bit-identical (pinned
//! by tests and the `benchcmp` gate). With [`Workbench::with_shards`],
//! each replay is block-sharded across worker threads and the log gains
//! one `replay-shard` span per shard (shard-id tagged) nested under the
//! run's `replay` span; windowed runs pin shards to 1 (a window is a
//! slice of the global reference stream).

use crate::engine::{run_indexed, run_indexed_with, RunConfig};
use crate::metrics::Evaluation;
use crate::mono::{run_indexed_mono, run_indexed_mono_with, run_sharded_mono_with};
use dircc_core::{build_sized, EventCounters, ProtocolKind};
use dircc_obs::{RunMeta, SpanLog, WindowSample, WindowedRecorder};
use dircc_trace::gen::Profile;
use dircc_trace::stats::TraceStats;
use dircc_trace::store::TraceStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

pub use dircc_trace::store::TraceFilter;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    kind: ProtocolKind,
    trace: usize,
    filter: TraceFilter,
}

/// Which replay loop [`Workbench::counters`] drives.
///
/// Both engines produce **bit-identical** counters for every scheme,
/// trace, filter and shard count (pinned by the `mono` test suite and the
/// `benchcmp` digest gate); they differ only in speed. [`Mono`] is the
/// default.
///
/// [`Mono`]: ReplayEngine::Mono
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplayEngine {
    /// The reference path: `Box<dyn Protocol>` replaying the AoS record
    /// stream through [`crate::engine`], one vtable call per reference.
    Dyn,
    /// The fast path: a per-scheme monomorphized loop over the store's
    /// memoized structure-of-arrays stream ([`crate::mono`]).
    #[default]
    Mono,
}

impl ReplayEngine {
    /// The label this engine carries in bench reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            ReplayEngine::Dyn => "dyn",
            ReplayEngine::Mono => "mono",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "dyn" => Some(ReplayEngine::Dyn),
            "mono" => Some(ReplayEngine::Mono),
            _ => None,
        }
    }
}

/// The stable label a [`TraceFilter`] carries in reports, span metadata
/// and JSONL output.
pub fn filter_label(filter: TraceFilter) -> &'static str {
    match filter {
        TraceFilter::Full => "full",
        TraceFilter::ExcludeLockSpins => "no-spins",
    }
}

/// Inverse of [`filter_label`].
pub fn filter_from_label(label: &str) -> Option<TraceFilter> {
    TraceFilter::ALL.into_iter().find(|f| filter_label(*f) == label)
}

/// Wall-clock record of one actually-executed simulation run, derived
/// from its `replay` span.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Protocol display name.
    pub scheme: String,
    /// Trace name (e.g. `POPS`).
    pub trace: String,
    /// Filter the run used.
    pub filter: TraceFilter,
    /// References replayed.
    pub refs: u64,
    /// Wall-clock duration of the replay.
    pub wall: Duration,
}

/// The windowed time series of one actually-executed run.
#[derive(Debug, Clone)]
pub struct RunSeries {
    /// Taxonomy point of the run.
    pub kind: ProtocolKind,
    /// Protocol display name.
    pub scheme: String,
    /// Trace index.
    pub trace: usize,
    /// Trace name.
    pub trace_name: String,
    /// Filter the run used.
    pub filter: TraceFilter,
    /// Total references replayed.
    pub refs: u64,
    /// Counter deltas per window; they partition the run, so merging
    /// them reconstructs the run's final [`EventCounters`] exactly.
    pub windows: Vec<WindowSample>,
}

impl RunTiming {
    /// Replay throughput in references per second.
    ///
    /// Returns `0.0` when the measured wall time is zero (a sub-tick
    /// replay) — never `inf`/`NaN`, so the value is always representable
    /// in JSON bench reports.
    pub fn refs_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.refs as f64 / self.wall.as_secs_f64()
    }
}

/// Shared experiment state: profiles, the generate-once trace store, and
/// memoized runs.
#[derive(Debug)]
pub struct Workbench {
    store: Arc<TraceStore>,
    memo: Mutex<HashMap<MemoKey, Arc<OnceLock<Arc<EventCounters>>>>>,
    stats_memo: Mutex<HashMap<usize, Arc<OnceLock<Arc<TraceStats>>>>>,
    spans: SpanLog,
    window: Option<u64>,
    shards: usize,
    engine: ReplayEngine,
    series: Mutex<Vec<RunSeries>>,
}

impl Workbench {
    /// Creates the paper's workbench: POPS, THOR and PERO profiles at their
    /// full scale (~3.2-3.5M references each).
    pub fn paper(seed: u64) -> Self {
        Self::with_profiles(Profile::paper_suite(), seed)
    }

    /// Creates the paper's workbench with every trace truncated to
    /// `total_refs` references (for fast tests and smoke runs).
    pub fn paper_scaled(total_refs: u64, seed: u64) -> Self {
        let profiles =
            Profile::paper_suite().into_iter().map(|p| p.with_total_refs(total_refs)).collect();
        Self::with_profiles(profiles, seed)
    }

    /// Creates a workbench over arbitrary profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or the profiles disagree on CPU count.
    pub fn with_profiles(profiles: Vec<Profile>, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "need at least one trace profile");
        assert!(
            profiles.windows(2).all(|w| w[0].cpus == w[1].cpus),
            "profiles must agree on CPU count"
        );
        Self::with_store(Arc::new(TraceStore::new(profiles, seed)))
    }

    /// Creates a workbench over an already-built (possibly shared)
    /// [`TraceStore`]. Repeated bench runs hand each fresh workbench the
    /// same store, so trace generation, interning and SoA splits are paid
    /// once while the run memo — and thus the measured replay — starts
    /// cold every repeat.
    pub fn with_store(store: Arc<TraceStore>) -> Self {
        assert!(store.num_traces() > 0, "need at least one trace profile");
        Workbench {
            store,
            memo: Mutex::new(HashMap::new()),
            stats_memo: Mutex::new(HashMap::new()),
            spans: SpanLog::new(),
            window: None,
            shards: 1,
            engine: ReplayEngine::default(),
            series: Mutex::new(Vec::new()),
        }
    }

    /// Enables windowed time-series recording: every subsequently executed
    /// run samples its counter delta each `window` references (plus a
    /// partial tail window) into a [`RunSeries`].
    ///
    /// Counters are unaffected — the windowed replay is bit-identical to
    /// the plain one.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: u64) -> Self {
        assert!(window > 0, "window size must be at least 1 reference");
        self.window = Some(window);
        self
    }

    /// Splits every subsequently executed replay into `shards` block
    /// shards replayed on worker threads ([`crate::engine::run_sharded_with`]),
    /// with per-shard `replay-shard` spans in the log. Counters are
    /// **bit-identical** to the unsharded replay (pinned by tests); only
    /// wall-clock changes.
    ///
    /// Windowed recording ([`Self::with_window`]) pins the replay to one
    /// shard: a window is a contiguous slice of the *global* reference
    /// stream, which a per-shard replay cannot observe, so windowed runs
    /// stay on the serial path regardless of this setting.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// The shard count replays use (1 = serial replay).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Selects the replay engine for subsequently executed runs. Counters
    /// are bit-identical across engines; only wall-clock changes.
    pub fn with_engine(mut self, engine: ReplayEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The replay engine runs use ([`ReplayEngine::Mono`] by default).
    pub fn engine(&self) -> ReplayEngine {
        self.engine
    }

    /// Number of caches (= CPUs) in the simulated machine.
    pub fn n_caches(&self) -> usize {
        usize::from(self.store.profiles()[0].cpus)
    }

    /// Trace names in order (e.g. `POPS`, `THOR`, `PERO`).
    pub fn trace_names(&self) -> Vec<String> {
        self.store.profiles().iter().map(|p| p.name.to_string()).collect()
    }

    /// Number of traces.
    pub fn num_traces(&self) -> usize {
        self.store.num_traces()
    }

    /// The trace profiles.
    pub fn profiles(&self) -> &[Profile] {
        self.store.profiles()
    }

    /// The shared trace store (generate-once record streams).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The materialized record stream of one (trace, filter) pair.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn records(&self, trace: usize, filter: TraceFilter) -> Arc<[dircc_trace::TraceRecord]> {
        self.store.records(trace, filter)
    }

    /// Reference-stream statistics of one trace (memoized).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range.
    pub fn trace_stats(&self, trace: usize) -> Arc<TraceStats> {
        let cell = {
            let mut memo = self.stats_memo.lock().expect("stats memo poisoned");
            Arc::clone(memo.entry(trace).or_default())
        };
        cell.get_or_init(|| {
            let records = self.store.records(trace, TraceFilter::Full);
            Arc::new(records.iter().collect::<TraceStats>())
        })
        .clone()
    }

    /// Event frequencies for one protocol on one trace (memoized; this is
    /// the paper's "one simulation run per protocol").
    ///
    /// Thread-safe and exactly-once per key: concurrent callers of the same
    /// (protocol, trace, filter) triple block on one [`OnceLock`] while a
    /// single replay runs.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is out of range or the replay itself fails (a
    /// protocol invariant bug — not an expected runtime condition).
    pub fn counters(
        &self,
        kind: ProtocolKind,
        trace: usize,
        filter: TraceFilter,
    ) -> Arc<EventCounters> {
        let key = MemoKey { kind, trace, filter };
        let cell = {
            let mut memo = self.memo.lock().expect("memo poisoned");
            Arc::clone(memo.entry(key).or_default())
        };
        cell.get_or_init(|| {
            // The paper classifies sharing per process ("a block is
            // considered shared only if it is accessed by more than one
            // process"), which excludes migration-induced sharing from the
            // study.
            let cfg = RunConfig::default().with_process_sharing();
            let scheme = kind.display_name(self.n_caches());
            let trace_name = self.store.profiles()[trace].name.to_string();
            let meta = |refs: u64| RunMeta {
                scheme: scheme.clone(),
                trace: trace_name.clone(),
                filter: filter_label(filter).to_string(),
                refs,
                shard: None,
                request: None,
            };
            // Phase spans wrap the store calls even when they hit warm
            // memos (duration ~0 then), so every executed run contributes
            // all four phases to the exported trace.
            let _ = self
                .spans
                .time("generate", Some(meta(0)), || self.store.records(trace, TraceFilter::Full));
            let records =
                self.spans.time("filter", Some(meta(0)), || self.store.records(trace, filter));
            // Dense replay: the store's interner renames blocks to dense
            // u32 ids once per trace; the replay loop then runs with zero
            // hashing and every per-block table pre-sized. Bit-identical
            // to un-interned replay (renaming is a bijection; pinned by
            // the engine's equality tests). The mono engine additionally
            // pulls the memoized structure-of-arrays split here — SoA
            // construction is intern-phase work, so replay spans compare
            // replay work only across engines.
            let mono = self.engine == ReplayEngine::Mono;
            let sharding = self.shards > 1 && self.window.is_none();
            let (dense, num_blocks, soa) = self.spans.time("intern", Some(meta(0)), || {
                let dense = self.store.dense_blocks(trace, filter, cfg.geometry);
                let num_blocks = self.store.interner(trace, cfg.geometry).num_blocks();
                let soa = (mono && !sharding)
                    .then(|| self.store.soa(trace, filter, cfg.geometry, cfg.sharing));
                (dense, num_blocks, soa)
            });
            // Sharded replay reuses the store's memoized partition (same
            // mod router as the engine's infinite-cache `shard_stream`),
            // built before the replay span so throughput numbers compare
            // replay work only.
            let sharded =
                sharding.then(|| self.store.sharded(trace, filter, cfg.geometry, self.shards));
            let sharded_soa = (mono && sharding).then(|| {
                self.store.sharded_soa(trace, filter, cfg.geometry, self.shards, cfg.sharing)
            });
            let timer = self.spans.start();
            let result = if let Some(window) = self.window {
                let mut recorder = WindowedRecorder::new(window);
                let result = if let Some(soa) = &soa {
                    run_indexed_mono_with(kind, self.n_caches(), &records, soa, &cfg, &mut recorder)
                        .expect("trace replay failed")
                } else {
                    let mut protocol = build_sized(kind, self.n_caches(), num_blocks);
                    run_indexed_with(
                        protocol.as_mut(),
                        &records,
                        &dense,
                        num_blocks,
                        &cfg,
                        &mut recorder,
                    )
                    .expect("trace replay failed")
                };
                self.series.lock().expect("series poisoned").push(RunSeries {
                    kind,
                    scheme: scheme.clone(),
                    trace,
                    trace_name: trace_name.clone(),
                    filter,
                    refs: result.refs,
                    windows: recorder.into_samples(),
                });
                result
            } else if let Some(sharded) = &sharded {
                let observe = |shard: usize, at: std::time::Instant, dur: Duration, refs: u64| {
                    self.spans.record_at(
                        "replay-shard",
                        at,
                        dur,
                        Some(RunMeta { shard: Some(shard), ..meta(refs) }),
                    );
                };
                if let Some(soa) = &sharded_soa {
                    run_sharded_mono_with(kind, self.n_caches(), sharded, soa, &cfg, observe)
                        .expect("trace replay failed")
                } else {
                    let protocols =
                        dircc_core::split_shards(kind, self.n_caches(), &sharded.shard_blocks());
                    crate::engine::run_sharded_with(protocols, sharded, &cfg, observe)
                        .expect("trace replay failed")
                }
            } else if let Some(soa) = &soa {
                run_indexed_mono(kind, self.n_caches(), &records, soa, &cfg)
                    .expect("trace replay failed")
            } else {
                let mut protocol = build_sized(kind, self.n_caches(), num_blocks);
                run_indexed(protocol.as_mut(), &records, &dense, num_blocks, &cfg)
                    .expect("trace replay failed")
            };
            self.spans.finish(timer, "replay", Some(meta(result.refs)));
            Arc::new(result.counters)
        })
        .clone()
    }

    /// The shared span log — every phase of every executed run.
    pub fn span_log(&self) -> &SpanLog {
        &self.spans
    }

    /// Snapshot of the windowed time series collected so far (empty unless
    /// the workbench was built [`with_window`](Self::with_window)), in
    /// completion order.
    pub fn time_series(&self) -> Vec<RunSeries> {
        self.series.lock().expect("series poisoned").clone()
    }

    /// An [`Evaluation`] for one protocol on one trace.
    pub fn evaluation(&self, kind: ProtocolKind, trace: usize, filter: TraceFilter) -> Evaluation {
        let counters = self.counters(kind, trace, filter);
        Evaluation::new(
            kind.display_name(self.n_caches()),
            kind,
            self.n_caches(),
            (*counters).clone(),
        )
    }

    /// Evaluations of one protocol across every trace (paper order).
    pub fn evaluations(&self, kind: ProtocolKind, filter: TraceFilter) -> Vec<Evaluation> {
        (0..self.num_traces()).map(|t| self.evaluation(kind, t, filter)).collect()
    }

    /// Merged counters of one protocol across all traces (for quantities
    /// like Figure 1's histogram that the paper aggregates).
    pub fn merged_counters(&self, kind: ProtocolKind, filter: TraceFilter) -> EventCounters {
        let mut merged = EventCounters::new();
        for t in 0..self.num_traces() {
            merged.merge(&self.counters(kind, t, filter));
        }
        merged
    }

    /// The four schemes of the paper's main evaluation.
    pub fn paper_kinds(&self) -> [ProtocolKind; 4] {
        [
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::Wti,
            ProtocolKind::Dir0B,
            ProtocolKind::Dragon,
        ]
    }

    /// Every (protocol, filter) pair the full paper pipeline (`dircc all`)
    /// measures, in paper order — the work list [`Workbench::warm`] fans
    /// out.
    pub fn paper_workload(&self) -> Vec<(ProtocolKind, TraceFilter)> {
        let n = self.n_caches() as u32;
        let mut work: Vec<(ProtocolKind, TraceFilter)> = Vec::new();
        // Tables 4-5, Figures 1-5, §5 system study: the four headline
        // schemes on the full traces.
        for kind in self.paper_kinds() {
            work.push((kind, TraceFilter::Full));
        }
        // §5.2 spin-lock exclusion: Dir1NB and Dir0B on the filtered trace.
        work.push((ProtocolKind::DirNb { pointers: 1 }, TraceFilter::ExcludeLockSpins));
        work.push((ProtocolKind::Dir0B, TraceFilter::ExcludeLockSpins));
        // §5 Berkeley aside.
        work.push((ProtocolKind::Berkeley, TraceFilter::Full));
        // §6 scalability: the DiriNB / DiriB sweeps and the coded set.
        for i in 1..=n {
            work.push((ProtocolKind::DirNb { pointers: i }, TraceFilter::Full));
        }
        for i in 1..n {
            work.push((ProtocolKind::DirB { pointers: i }, TraceFilter::Full));
        }
        work.push((ProtocolKind::CodedSet, TraceFilter::Full));
        let mut seen = std::collections::HashSet::new();
        work.retain(|w| seen.insert(*w));
        work
    }

    /// Fans the (protocol × trace × filter) counter matrix out over
    /// `jobs` worker threads, filling the memo so later experiment code
    /// hits warm caches only.
    ///
    /// Deterministic: counters depend only on (profile, seed, protocol,
    /// filter), so `jobs = 1` and `jobs = 8` produce bit-identical
    /// [`EventCounters`]; only wall-clock changes. Output order is
    /// unaffected because experiments print from the memo afterwards.
    ///
    /// Returns the number of runs actually executed (cache misses).
    pub fn warm(&self, kinds: &[(ProtocolKind, TraceFilter)], jobs: usize) -> usize {
        let jobs = jobs.max(1);
        // Work items: every (kind, filter) × trace, deduped preserving order.
        let mut items: Vec<(ProtocolKind, usize, TraceFilter)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &(kind, filter) in kinds {
            for trace in 0..self.num_traces() {
                if seen.insert((kind, trace, filter)) {
                    items.push((kind, trace, filter));
                }
            }
        }
        let before = self.executed_runs();
        // Materialize traces first so workers contend on simulation only,
        // not on the store's per-trace OnceLocks.
        for trace in 0..self.num_traces() {
            let filters: Vec<TraceFilter> =
                items.iter().filter(|(_, t, _)| *t == trace).map(|(_, _, f)| *f).collect();
            for f in filters {
                let _ = self.store.records(trace, f);
            }
        }
        if jobs == 1 || items.len() <= 1 {
            for (kind, trace, filter) in items {
                let _ = self.counters(kind, trace, filter);
            }
        } else {
            let next = AtomicUsize::new(0);
            let items = &items;
            std::thread::scope(|scope| {
                for _ in 0..jobs.min(items.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(kind, trace, filter)) = items.get(i) else { break };
                        let _ = self.counters(kind, trace, filter);
                    });
                }
            });
        }
        self.executed_runs() - before
    }

    /// Number of simulation runs actually executed so far (memo misses).
    pub fn executed_runs(&self) -> usize {
        self.spans.spans().iter().filter(|s| s.name == "replay").count()
    }

    /// Snapshot of per-run wall-clock timings, in completion order,
    /// derived from the span log's `replay` spans.
    pub fn timings(&self) -> Vec<RunTiming> {
        self.spans
            .spans()
            .into_iter()
            .filter(|s| s.name == "replay")
            .filter_map(|s| {
                let meta = s.meta?;
                Some(RunTiming {
                    scheme: meta.scheme,
                    trace: meta.trace,
                    filter: filter_from_label(&meta.filter)?,
                    refs: meta.refs,
                    wall: s.dur,
                })
            })
            .collect()
    }

    /// Renders the end-of-run observability table: one line per executed
    /// simulation run (scheme, trace, filter, refs, wall, refs/sec) plus a
    /// totals row. Empty string if nothing ran.
    pub fn timing_summary(&self) -> String {
        let timings = self.timings();
        if timings.is_empty() {
            return String::new();
        }
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "run timings ({} simulation runs):", timings.len());
        let _ = writeln!(
            out,
            "  {:<10} {:<6} {:<9} {:>10} {:>10} {:>12}",
            "scheme", "trace", "filter", "refs", "wall ms", "refs/sec"
        );
        let mut total_refs = 0u64;
        let mut total_wall = Duration::ZERO;
        for t in &timings {
            let filter = filter_label(t.filter);
            let _ = writeln!(
                out,
                "  {:<10} {:<6} {:<9} {:>10} {:>10.1} {:>12.0}",
                t.scheme,
                t.trace,
                filter,
                t.refs,
                t.wall.as_secs_f64() * 1e3,
                t.refs_per_sec()
            );
            total_refs += t.refs;
            total_wall += t.wall;
        }
        let _ = writeln!(
            out,
            "  {:<10} {:<6} {:<9} {:>10} {:>10.1} {:>12}",
            "total",
            "",
            "",
            total_refs,
            total_wall.as_secs_f64() * 1e3,
            "(cpu time)"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workbench {
        Workbench::paper_scaled(20_000, 7)
    }

    #[test]
    fn paper_workbench_has_three_traces() {
        let wb = small();
        assert_eq!(wb.trace_names(), vec!["POPS", "THOR", "PERO"]);
        assert_eq!(wb.n_caches(), 4);
        assert_eq!(wb.num_traces(), 3);
    }

    #[test]
    fn workbench_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Workbench>();
    }

    #[test]
    fn memoization_returns_same_counters() {
        let wb = small();
        let a = wb.counters(ProtocolKind::Dir0B, 0, TraceFilter::Full);
        let b = wb.counters(ProtocolKind::Dir0B, 0, TraceFilter::Full);
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the memo");
        assert_eq!(wb.timings().len(), 1, "one run executed, one timing");
    }

    #[test]
    fn filtered_runs_differ_from_full_runs() {
        let wb = small();
        let full = wb.counters(ProtocolKind::DirNb { pointers: 1 }, 0, TraceFilter::Full);
        let filt =
            wb.counters(ProtocolKind::DirNb { pointers: 1 }, 0, TraceFilter::ExcludeLockSpins);
        assert!(filt.total() < full.total(), "lock spins removed");
        assert!(filt.rm() < full.rm(), "Dir1NB loses its lock ping-pong misses");
    }

    #[test]
    fn evaluation_names_follow_paper() {
        let wb = small();
        let e = wb.evaluation(ProtocolKind::DirNb { pointers: 4 }, 0, TraceFilter::Full);
        assert_eq!(e.name, "DirnNB");
    }

    #[test]
    fn merged_counters_sum_traces() {
        let wb = small();
        let merged = wb.merged_counters(ProtocolKind::Wti, TraceFilter::Full);
        assert_eq!(merged.total(), 60_000);
    }

    #[test]
    fn trace_stats_are_memoized_and_sized() {
        let wb = small();
        let s1 = wb.trace_stats(1);
        let s2 = wb.trace_stats(1);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(s1.total(), 20_000);
    }

    #[test]
    fn warm_parallel_matches_sequential_bit_for_bit() {
        let work = [
            (ProtocolKind::Dir0B, TraceFilter::Full),
            (ProtocolKind::Wti, TraceFilter::Full),
            (ProtocolKind::DirNb { pointers: 1 }, TraceFilter::ExcludeLockSpins),
            (ProtocolKind::Dragon, TraceFilter::Full),
        ];
        let seq = Workbench::paper_scaled(8_000, 11);
        let par = Workbench::paper_scaled(8_000, 11);
        assert_eq!(seq.warm(&work, 1), par.warm(&work, 8), "same cache-miss count");
        for &(kind, filter) in &work {
            for t in 0..seq.num_traces() {
                assert_eq!(
                    *seq.counters(kind, t, filter),
                    *par.counters(kind, t, filter),
                    "{kind} trace {t} {filter:?} diverged across jobs"
                );
            }
        }
    }

    #[test]
    fn warm_generates_each_trace_once() {
        let wb = small();
        let executed = wb.warm(&wb.paper_workload(), 8);
        assert!(executed > 0);
        assert_eq!(wb.store().generations(), wb.num_traces() as u64);
        // Warming again is a no-op: everything is memoized.
        assert_eq!(wb.warm(&wb.paper_workload(), 8), 0);
        assert_eq!(wb.store().generations(), wb.num_traces() as u64);
    }

    #[test]
    fn timing_summary_mentions_every_run() {
        let wb = small();
        let _ = wb.counters(ProtocolKind::Dir0B, 0, TraceFilter::Full);
        let s = wb.timing_summary();
        assert!(s.contains("Dir0B"));
        assert!(s.contains("POPS"));
        assert!(s.contains("refs/sec"));
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_profiles_rejected() {
        let _ = Workbench::with_profiles(vec![], 0);
    }

    #[test]
    fn filter_labels_round_trip() {
        for f in TraceFilter::ALL {
            assert_eq!(filter_from_label(filter_label(f)), Some(f));
        }
        assert_eq!(filter_from_label("bogus"), None);
    }

    #[test]
    fn every_executed_run_records_all_four_phases() {
        let wb = small();
        let _ = wb.counters(ProtocolKind::Wti, 2, TraceFilter::Full);
        let spans = wb.span_log().spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["generate", "filter", "intern", "replay"]);
        let replay = spans.last().unwrap();
        let meta = replay.meta.as_ref().unwrap();
        assert_eq!(meta.scheme, "WTI");
        assert_eq!(meta.trace, "PERO");
        assert_eq!(meta.filter, "full");
        assert_eq!(meta.refs, 20_000);
    }

    #[test]
    fn windowed_workbench_is_bit_identical_and_series_sums() {
        let work = [
            (ProtocolKind::Dir0B, TraceFilter::Full),
            (ProtocolKind::DirNb { pointers: 1 }, TraceFilter::ExcludeLockSpins),
        ];
        let plain = Workbench::paper_scaled(9_000, 3);
        let windowed = Workbench::paper_scaled(9_000, 3).with_window(1_000);
        plain.warm(&work, 2);
        windowed.warm(&work, 2);
        let series = windowed.time_series();
        assert_eq!(series.len(), 2 * plain.num_traces());
        for &(kind, filter) in &work {
            for t in 0..plain.num_traces() {
                let a = plain.counters(kind, t, filter);
                let b = windowed.counters(kind, t, filter);
                assert_eq!(*a, *b, "windowed replay must not perturb counters");
                let s = series
                    .iter()
                    .find(|s| s.kind == kind && s.trace == t && s.filter == filter)
                    .expect("every run leaves a series");
                let mut sum = EventCounters::new();
                for w in &s.windows {
                    sum.merge(&w.counters);
                }
                assert_eq!(sum, *b, "window deltas must reconstruct the final counters");
                assert_eq!(s.windows.iter().map(|w| w.refs()).sum::<u64>(), s.refs);
            }
        }
    }

    #[test]
    fn plain_workbench_collects_no_series() {
        let wb = small();
        let _ = wb.counters(ProtocolKind::Dir0B, 0, TraceFilter::Full);
        assert!(wb.time_series().is_empty());
    }

    #[test]
    fn sharded_workbench_is_bit_identical_and_logs_per_shard_spans() {
        let work = [
            (ProtocolKind::Dir0B, TraceFilter::Full),
            (ProtocolKind::Dragon, TraceFilter::ExcludeLockSpins),
        ];
        let serial = Workbench::paper_scaled(9_000, 3);
        let sharded = Workbench::paper_scaled(9_000, 3).with_shards(4);
        assert_eq!(sharded.shards(), 4);
        serial.warm(&work, 1);
        sharded.warm(&work, 1);
        for &(kind, filter) in &work {
            for t in 0..serial.num_traces() {
                assert_eq!(
                    *serial.counters(kind, t, filter),
                    *sharded.counters(kind, t, filter),
                    "{kind} trace {t} {filter:?} diverged under sharding"
                );
            }
        }
        let spans = sharded.span_log().spans();
        let per_shard: Vec<_> = spans.iter().filter(|s| s.name == "replay-shard").collect();
        let replays = spans.iter().filter(|s| s.name == "replay").count();
        assert_eq!(per_shard.len(), replays * 4, "four shard spans per run");
        for s in &per_shard {
            let m = s.meta.as_ref().unwrap();
            assert!(m.shard.is_some(), "shard spans carry their shard id");
        }
        // Shard ids 0..4 all appear; shard refs sum to each run's total.
        let ids: std::collections::HashSet<usize> =
            per_shard.iter().map(|s| s.meta.as_ref().unwrap().shard.unwrap()).collect();
        assert_eq!(ids, (0..4).collect());
        // Timings (and hence bench reports) still come from the outer
        // replay span, one per run.
        assert_eq!(sharded.timings().len(), serial.timings().len());
    }

    #[test]
    fn windowed_workbench_pins_shards_to_one() {
        let wb = Workbench::paper_scaled(4_000, 5).with_shards(8).with_window(1_000);
        let _ = wb.counters(ProtocolKind::Dir0B, 0, TraceFilter::Full);
        let spans = wb.span_log().spans();
        assert!(spans.iter().all(|s| s.name != "replay-shard"), "windowed runs stay serial");
        assert_eq!(wb.time_series().len(), 1, "the windowed series is still collected");
    }

    #[test]
    fn refs_per_sec_is_finite_even_for_zero_wall() {
        let t = RunTiming {
            scheme: "Dir0B".into(),
            trace: "POPS".into(),
            filter: TraceFilter::Full,
            refs: 1_000,
            wall: Duration::ZERO,
        };
        assert_eq!(t.refs_per_sec(), 0.0, "zero wall must not produce inf");
        assert!(t.refs_per_sec().is_finite());
        let t = RunTiming { wall: Duration::from_millis(500), ..t };
        assert_eq!(t.refs_per_sec(), 2_000.0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Workbench::paper_scaled(1_000, 1).with_shards(0);
    }
}

//! Plain-text report formatting: aligned tables and horizontal bars, the
//! way the experiment runners present each paper table and figure.

use core::fmt;

/// A simple aligned-column text table.
///
/// ```
/// use dircc_sim::report::Table;
///
/// let mut t = Table::new("Demo", vec!["name", "value"]);
/// t.row(vec!["alpha".into(), "1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("alpha"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{:>width$}", h, width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", cell, width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals (Table 4 style).
pub fn pct(x: f64) -> String {
    format!("{:.2}", x)
}

/// Formats a bus-cycle figure with four decimals (Table 5 style).
pub fn cycles(x: f64) -> String {
    format!("{:.4}", x)
}

/// Renders a horizontal ASCII bar of `value` scaled so that `max` spans
/// `width` characters (used for figure-style output).
///
/// Degenerate inputs clamp to an empty bar: negative, zero or NaN values
/// and non-positive or NaN maxima all render as `""`. (NaN is checked
/// explicitly — `NaN <= 0.0` is false, so an ordering guard alone would
/// let NaN through to `.round() as usize`.)
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max.is_nan() || value.is_nan() || max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Block characters indexed by an eighth-resolution level (0..=8).
const SPARK_LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a one-character-per-value sparkline scaled so
/// that `max` is a full block. Built on [`bar`], so it inherits its
/// clamping: degenerate values render as a space, overshoot as `█`.
pub fn sparkline(values: &[f64], max: f64) -> String {
    values.iter().map(|&v| SPARK_LEVELS[bar(v, max, 8).len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new("T", vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[2].contains("long-header"));
        assert!(lines[4].ends_with("1"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(49.716), "49.72");
        assert_eq!(cycles(0.03355), "0.0336"); // rounds like the paper
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
    }

    #[test]
    fn bar_clamps_degenerate_inputs() {
        assert_eq!(bar(-3.0, 10.0, 10), "", "negative value");
        assert_eq!(bar(5.0, 0.0, 10), "", "zero max");
        assert_eq!(bar(5.0, -1.0, 10), "", "negative max");
        assert_eq!(bar(f64::NAN, 10.0, 10), "", "NaN value");
        assert_eq!(bar(5.0, f64::NAN, 10), "", "NaN max");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10, "value > max clamps at width");
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[0.0, 4.0, 8.0], 8.0), " ▄█");
        assert_eq!(sparkline(&[], 8.0), "");
        assert_eq!(sparkline(&[f64::NAN, -1.0], 8.0), "  ", "degenerates render as spaces");
        assert_eq!(sparkline(&[100.0], 8.0), "█", "overshoot clamps to a full block");
    }
}

//! Minimal deterministic fan-out: an indexed parallel map over scoped
//! threads.
//!
//! Every sweep experiment in this crate is a pure function of its index
//! (the trace generator is seeded, the simulator is deterministic), so
//! parallel execution only needs two things: exactly-once evaluation per
//! index and index-ordered results. [`par_map_indexed`] provides both with
//! std primitives only — an atomic work cursor feeding
//! [`std::thread::scope`] workers that write into per-index slots.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluates `f(0..n)` on up to `jobs` worker threads and returns the
/// results in index order.
///
/// `jobs <= 1` (or `n <= 1`) degrades to a plain sequential map on the
/// calling thread — no threads spawned, identical results. Panics in `f`
/// propagate (the scope joins, then unwinds).
pub fn par_map_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    // `Mutex<Option<T>>` slots rather than `OnceLock<T>`: a slot is only
    // ever written by the one worker that claimed its index, and
    // `Mutex<T>: Sync` needs just `T: Send`.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let (slots_ref, f_ref) = (&slots, &f);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f_ref(i);
                *slots_ref[i].lock().expect("slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("slot poisoned").expect("every index was claimed by a worker")
        })
        .collect()
}

/// The parallelism the machine offers, as a default for `--jobs`.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = par_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = par_map_indexed(37, 1, |i| i as u64 * 3 + 1);
        let par = par_map_indexed(37, 5, |i| i as u64 * 3 + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn each_index_evaluated_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map_indexed(64, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 64);
        assert_eq!(calls.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}

//! The trace-replay engine.
//!
//! "The simulator reads a reference from a trace and takes a set of actions
//! depending on the type of the reference, the state of the referenced
//! block, and the given cache consistency protocol." (§4.1)
//!
//! The engine:
//!
//! * maps each reference to a cache (per *processor*, or per *process* —
//!   the paper's preferred sharing model, §4.4);
//! * tracks global first references so every protocol sees the identical
//!   first-reference classification;
//! * feeds data references to the protocol and accumulates
//!   [`EventCounters`];
//! * optionally verifies **value-level coherence**: every read must observe
//!   the globally latest write, stale copies must never survive a write in
//!   an invalidation protocol, and data must never be supplied from stale
//!   memory.
//!
//! # Dense block ids
//!
//! The engine *interns* blocks: each distinct block is renamed to a dense
//! index in first-appearance order before it reaches the protocol, so every
//! per-block table downstream (tag arrays, directory entries, verifier
//! state) is a flat vector instead of a hash map. [`run`] interns on the
//! fly — one hash probe per reference, doubling as the first-reference
//! check — while [`run_indexed`] replays a prebuilt dense-id stream (from
//! [`dircc_trace::TraceStore::dense_blocks`]) with *zero* hashing in the
//! loop. Renaming is a bijection and protocols only compare blocks for
//! identity, so both paths produce bit-identical counters; finite tag
//! stores still hash on the **original** address because set selection
//! uses raw address bits.
//!
//! # Observability
//!
//! Both entry points have `_with` variants ([`run_with`],
//! [`run_indexed_with`]) that take a [`Recorder`] — a statically
//! dispatched per-reference hook called after every counter mutation.
//! The plain entry points pass [`NoopRecorder`], whose empty inline
//! methods monomorphize away, so the hot loop is byte- and
//! speed-identical with observability off (the `benchcmp` CI gate pins
//! the counters against the checked-in baseline).

use dircc_cache::{FiniteCacheConfig, Lookup, SetAssocCache};
use dircc_core::{split_shards, CoherenceStyle, Event, EventCounters, Protocol, ProtocolKind};
use dircc_obs::{NoopRecorder, Recorder};
use dircc_trace::spill::spill_shards;
use dircc_trace::{
    BlockInterner, ChunkSource, Shard, ShardedStream, SpilledShard, SpilledShards, TraceRecord,
};
use dircc_types::{AccessKind, BlockAddr, BlockGeometry, CacheId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

pub use dircc_types::SharingModel;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// CPU→cache mapping model.
    pub sharing: SharingModel,
    /// Block geometry (the paper's 16-byte blocks by default).
    pub geometry: BlockGeometry,
    /// Enable the value-level coherence verifier (slower; used by tests).
    pub verify: bool,
    /// Run the protocol's invariant checker every N references (0 = never).
    pub check_invariants_every: u64,
    /// Simulate finite per-cache tag stores of this shape: LRU replacements
    /// call [`Protocol::evict`], generating write-backs and replacement
    /// hints (the paper's finite-cache extension; `None` = infinite caches,
    /// the paper's model).
    pub finite_cache: Option<FiniteCacheConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            sharing: SharingModel::Processor,
            geometry: BlockGeometry::PAPER,
            verify: false,
            check_invariants_every: 0,
            finite_cache: None,
        }
    }
}

impl RunConfig {
    /// A verifying configuration for tests: value verification plus
    /// invariant checks every `every` references.
    pub fn verifying(every: u64) -> Self {
        RunConfig { verify: true, check_invariants_every: every, ..RunConfig::default() }
    }

    /// Returns a copy using the process-sharing model.
    #[must_use]
    pub fn with_process_sharing(mut self) -> Self {
        self.sharing = SharingModel::Process;
        self
    }

    /// Returns a copy simulating finite caches of the given shape.
    #[must_use]
    pub fn with_finite_caches(mut self, config: FiniteCacheConfig) -> Self {
        self.finite_cache = Some(config);
        self
    }
}

/// Result of replaying one trace through one protocol.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Accumulated event frequencies (Table 4's raw material).
    pub counters: EventCounters,
    /// Total references replayed.
    pub refs: u64,
    /// Coherence violations found by the verifier (empty when disabled or
    /// when the protocol is correct). At most [`MAX_VIOLATIONS`] retained.
    pub violations: Vec<String>,
}

/// Cap on retained verifier violation messages.
pub const MAX_VIOLATIONS: usize = 16;

/// Internal run result before violation formatting: each finding keeps
/// its 1-based global reference number so sharded runs can merge findings
/// back into trace order before applying the [`MAX_VIOLATIONS`] cap.
pub(crate) struct CoreResult {
    pub(crate) counters: EventCounters,
    pub(crate) refs: u64,
    pub(crate) violations: Vec<(u64, String)>,
}

/// Internal engine error: the 1-based global reference number it occurred
/// at (`u64::MAX` for the end-of-run invariant check), for deterministic
/// first-error selection across shards.
pub(crate) struct EngineError {
    pub(crate) gref: u64,
    pub(crate) msg: String,
}

fn format_violation((gref, msg): (u64, String)) -> String {
    format!("ref {gref}: {msg}")
}

pub(crate) fn finish_result(raw: CoreResult) -> RunResult {
    RunResult {
        counters: raw.counters,
        refs: raw.refs,
        violations: raw.violations.into_iter().map(format_violation).collect(),
    }
}

/// Value-level coherence verifier state.
///
/// The engine hands the verifier *dense* block addresses, so all three
/// tables are flat vectors indexed by block. Absent entries read as
/// version 0 (the block's initial state), exactly as the former hash-map
/// representation defaulted.
#[derive(Debug)]
pub(crate) struct Verifier {
    /// Monotonic version per block, bumped on every write.
    version: Vec<u64>,
    /// Version each cached copy holds, one table per cache.
    copy: Vec<Vec<u64>>,
    /// Version main memory holds.
    memory: Vec<u64>,
}

fn table_get(table: &[u64], b: BlockAddr) -> u64 {
    table.get(b.index() as usize).copied().unwrap_or(0)
}

fn table_set(table: &mut Vec<u64>, b: BlockAddr, ver: u64) {
    let i = b.index() as usize;
    if table.len() <= i {
        table.resize(i + 1, 0);
    }
    table[i] = ver;
}

impl Verifier {
    pub(crate) fn new(n_caches: usize, blocks: usize) -> Self {
        Verifier {
            version: Vec::with_capacity(blocks),
            copy: vec![Vec::with_capacity(blocks); n_caches],
            memory: Vec::with_capacity(blocks),
        }
    }

    fn mem_version(&self, b: BlockAddr) -> u64 {
        table_get(&self.memory, b)
    }

    fn cur_version(&self, b: BlockAddr) -> u64 {
        table_get(&self.version, b)
    }

    pub(crate) fn copy_version(&self, cache: CacheId, b: BlockAddr) -> u64 {
        table_get(&self.copy[cache.index()], b)
    }

    fn set_version(&mut self, b: BlockAddr, ver: u64) {
        table_set(&mut self.version, b, ver);
    }

    pub(crate) fn set_memory(&mut self, b: BlockAddr, ver: u64) {
        table_set(&mut self.memory, b, ver);
    }

    fn set_copy(&mut self, cache: CacheId, b: BlockAddr, ver: u64) {
        table_set(&mut self.copy[cache.index()], b, ver);
    }
}

/// Replays `records` through `protocol`, returning counters and any
/// verifier findings.
///
/// Blocks are interned on the fly: the interning map doubles as the
/// first-reference set, so the loop pays exactly one hash probe per data
/// reference and the protocol sees dense block addresses throughout.
///
/// # Errors
///
/// Returns an error string if a protocol invariant check fails (the
/// verifier's value-level findings are reported in
/// [`RunResult::violations`] instead, so a run can surface several).
pub fn run<P: Protocol + ?Sized, I: IntoIterator<Item = TraceRecord>>(
    protocol: &mut P,
    records: I,
    cfg: &RunConfig,
) -> Result<RunResult, String> {
    run_with(protocol, records, cfg, &mut NoopRecorder)
}

/// [`run`] with a [`Recorder`] observing the cumulative counters after
/// every reference (e.g. a
/// [`WindowedRecorder`](dircc_obs::WindowedRecorder) sampling
/// time-resolved deltas). Counters are unaffected by the recorder.
///
/// # Errors
///
/// As [`run`].
pub fn run_with<P, I, R>(
    protocol: &mut P,
    records: I,
    cfg: &RunConfig,
    recorder: &mut R,
) -> Result<RunResult, String>
where
    P: Protocol + ?Sized,
    I: IntoIterator<Item = TraceRecord>,
    R: Recorder,
{
    let mut interner: HashMap<u64, u32> = HashMap::new();
    run_core(
        protocol,
        records.into_iter().zip(1u64..),
        cfg,
        0,
        move |orig, _| {
            let next = u32::try_from(interner.len()).expect("more than u32::MAX distinct blocks");
            let mut first_ref = false;
            let id = *interner.entry(orig.index()).or_insert_with(|| {
                first_ref = true;
                next
            });
            (BlockAddr::from_index(u64::from(id)), first_ref)
        },
        |b| b,
        recorder,
    )
    .map(finish_result)
    .map_err(|e| e.msg)
}

/// Replays `records` through `protocol` using a prebuilt dense-id stream
/// (one id per record, aligned with `records`, as produced by
/// [`dircc_trace::TraceStore::dense_blocks`]). `num_blocks` is the
/// interner's distinct-block count and sizes the first-reference bit
/// vector up front.
///
/// This is the zero-hashing hot path: the replay loop performs no hash
/// probe at all for infinite-cache runs. Counters are bit-identical to
/// [`run`] on the same records — pinned by this crate's equality tests.
///
/// # Errors
///
/// As [`run`]; additionally errs if `dense` is not aligned with `records`.
pub fn run_indexed<P: Protocol + ?Sized>(
    protocol: &mut P,
    records: &[TraceRecord],
    dense: &[u32],
    num_blocks: usize,
    cfg: &RunConfig,
) -> Result<RunResult, String> {
    run_indexed_with(protocol, records, dense, num_blocks, cfg, &mut NoopRecorder)
}

/// [`run_indexed`] with a [`Recorder`] observing the cumulative counters
/// after every reference. Counters are unaffected by the recorder.
///
/// # Errors
///
/// As [`run_indexed`].
pub fn run_indexed_with<P: Protocol + ?Sized, R: Recorder>(
    protocol: &mut P,
    records: &[TraceRecord],
    dense: &[u32],
    num_blocks: usize,
    cfg: &RunConfig,
    recorder: &mut R,
) -> Result<RunResult, String> {
    if records.len() != dense.len() {
        return Err(format!(
            "dense-id stream has {} entries for {} records; rebuild it from the same stream",
            dense.len(),
            records.len()
        ));
    }
    let mut seen = vec![0u64; num_blocks.div_ceil(64)];
    run_core(
        protocol,
        records.iter().copied().zip(1u64..),
        cfg,
        num_blocks,
        move |_, idx| {
            let id = dense[idx];
            let (word, bit) = (id as usize / 64, 1u64 << (id % 64));
            if word >= seen.len() {
                seen.resize(word + 1, 0);
            }
            let first_ref = seen[word] & bit == 0;
            seen[word] |= bit;
            (BlockAddr::from_index(u64::from(id)), first_ref)
        },
        |b| b,
        recorder,
    )
    .map(finish_result)
    .map_err(|e| e.msg)
}

/// Iterator adapter feeding [`run_core`] from a [`ChunkSource`]: yields
/// `(record, gref)` pairs one chunk at a time, reusing one buffer so peak
/// resident trace memory is bounded by the chunk size. An I/O error ends
/// the stream and is parked in `err` for the caller to surface (the
/// iterator contract has no error channel).
struct ChunkRecords<'a, S: ChunkSource> {
    source: &'a mut S,
    buf: Vec<TraceRecord>,
    pos: usize,
    gref: u64,
    err: &'a RefCell<Option<io::Error>>,
}

impl<S: ChunkSource> Iterator for ChunkRecords<'_, S> {
    type Item = (TraceRecord, u64);

    fn next(&mut self) -> Option<(TraceRecord, u64)> {
        loop {
            if self.pos < self.buf.len() {
                let r = self.buf[self.pos];
                self.pos += 1;
                self.gref += 1;
                return Some((r, self.gref));
            }
            self.pos = 0;
            match self.source.next_chunk(&mut self.buf) {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    *self.err.borrow_mut() = Some(e);
                    return None;
                }
            }
        }
    }
}

/// Replays a streamed trace — any [`ChunkSource`], e.g. a
/// [`ChunkedReader`](dircc_trace::ChunkedReader) over an on-disk v2 file —
/// through `protocol`, holding at most one chunk of records in memory.
///
/// Blocks are interned incrementally as chunks arrive, in the same
/// first-appearance order the in-memory paths use, so counters are
/// bit-identical to [`run`]/[`run_indexed`] on the same records (pinned by
/// this crate's streaming equality tests).
///
/// # Errors
///
/// As [`run`]; additionally reports I/O and decode errors from the source.
pub fn run_chunked<P: Protocol + ?Sized, S: ChunkSource>(
    protocol: &mut P,
    source: &mut S,
    cfg: &RunConfig,
) -> Result<RunResult, String> {
    run_chunked_with(protocol, source, cfg, &mut NoopRecorder)
}

/// [`run_chunked`] with a [`Recorder`] observing the cumulative counters
/// after every reference. Counters are unaffected by the recorder.
///
/// # Errors
///
/// As [`run_chunked`].
pub fn run_chunked_with<P, S, R>(
    protocol: &mut P,
    source: &mut S,
    cfg: &RunConfig,
    recorder: &mut R,
) -> Result<RunResult, String>
where
    P: Protocol + ?Sized,
    S: ChunkSource,
    R: Recorder,
{
    let mut interner = BlockInterner::new(cfg.geometry);
    let io_err: RefCell<Option<io::Error>> = RefCell::new(None);
    let records = ChunkRecords { source, buf: Vec::new(), pos: 0, gref: 0, err: &io_err };
    let res = run_core(
        protocol,
        records,
        cfg,
        0,
        |orig, _| {
            let (id, first_ref) = interner.intern(orig);
            (BlockAddr::from_index(u64::from(id)), first_ref)
        },
        |b| b,
        recorder,
    );
    // An I/O error truncates the stream; the engine would otherwise treat
    // it as a clean end of trace, so check the side channel first.
    if let Some(e) = io_err.into_inner() {
        return Err(format!("trace read failed: {e}"));
    }
    res.map(finish_result).map_err(|e| e.msg)
}

/// Builds the block-sharded partition of a dense-id stream for `cfg`.
///
/// Infinite-cache runs shard by `block_id % shards` — the same router
/// [`dircc_trace::TraceStore::sharded`] memoizes, so engine-level and
/// store-level partitions agree. Finite-cache runs shard by the tag
/// store's *set index* of the original block instead: LRU eviction is
/// confined to a set, so keeping every set's accesses in one shard
/// preserves victim choice exactly. A finite config cannot honour more
/// shards than it has sets, so the shard count is clamped to `sets`
/// (falling back to 1 shard for a single-set cache).
pub fn shard_stream(
    records: &[TraceRecord],
    dense: &[u32],
    num_blocks: usize,
    shards: usize,
    cfg: &RunConfig,
) -> ShardedStream {
    let shards = shards.max(1);
    match cfg.finite_cache {
        None => {
            ShardedStream::build(records, dense, num_blocks, shards, |_, gid| gid as usize % shards)
        }
        Some(fc) => {
            let shards = shards.min(fc.sets);
            let geometry = cfg.geometry;
            ShardedStream::build(records, dense, num_blocks, shards, |r, _| {
                fc.set_of(geometry.block_of(r.addr)) % shards
            })
        }
    }
}

/// Replays a block-sharded stream through one protocol instance per shard
/// (constructed via [`dircc_core::split_shards`]) and folds the per-shard
/// results into one [`RunResult`] **bit-identical to [`run_indexed`]** on
/// the unsharded stream.
///
/// Why the fold is exact:
///
/// * with infinite caches every per-block table (cache states, directory
///   entries, verifier versions, first-ref bits) is touched by exactly
///   one shard, and shard-local renaming preserves first-appearance
///   order, so each shard computes exactly the slice of state the serial
///   run would;
/// * [`EventCounters`] are purely additive, so merging per-shard counters
///   in shard order reproduces the serial totals;
/// * verifier findings carry global reference numbers; merging them in
///   trace order and then applying the [`MAX_VIOLATIONS`] cap retains
///   exactly the serial run's first `MAX_VIOLATIONS` findings (a finding
///   within the first 16 globally is within the first 16 of its shard);
/// * finite-cache runs are sharded by set index (see [`shard_stream`]),
///   which preserves relative LRU-stamp order within every set and hence
///   eviction choice.
///
/// The only intentional divergence: `check_invariants_every` cadences on
/// the *shard-local* reference count, so a broken protocol may be caught
/// at a different reference than serially. Correct protocols (and the
/// single-shard case) are unaffected.
///
/// Shards replay on [`std::thread::scope`] workers (inline when there is
/// only one shard).
///
/// # Errors
///
/// As [`run_indexed`]; across shards the error with the smallest global
/// reference number wins, deterministically.
pub fn run_sharded(
    kind: ProtocolKind,
    n_caches: usize,
    sharded: &ShardedStream,
    cfg: &RunConfig,
) -> Result<RunResult, String> {
    run_sharded_with(
        split_shards(kind, n_caches, &sharded.shard_blocks()),
        sharded,
        cfg,
        noop_observer,
    )
}

/// A [`run_sharded_with`] observer that records nothing.
pub(crate) fn noop_observer(_shard: usize, _started: Instant, _dur: Duration, _refs: u64) {}

/// [`run_sharded`] over caller-built protocol instances (one per shard,
/// e.g. from [`dircc_core::split_shards`]), with an observer called once
/// per shard replay — `observe(shard, started, wall, refs)` — from the
/// thread that replayed it, so callers can attribute per-shard spans.
/// Counters are unaffected by the observer.
///
/// # Errors
///
/// As [`run_sharded`]; additionally errs if the instance count does not
/// match the shard count.
pub fn run_sharded_with<O>(
    protocols: Vec<Box<dyn Protocol>>,
    sharded: &ShardedStream,
    cfg: &RunConfig,
    observe: O,
) -> Result<RunResult, String>
where
    O: Fn(usize, Instant, Duration, u64) + Sync,
{
    let shards = sharded.shards();
    if protocols.len() != shards.len() {
        return Err(format!(
            "{} protocol instance(s) for {} shard(s); build one per shard",
            protocols.len(),
            shards.len()
        ));
    }
    let slots: Vec<std::sync::Mutex<Option<Result<CoreResult, EngineError>>>> =
        shards.iter().map(|_| std::sync::Mutex::new(None)).collect();
    {
        let run_one = |idx: usize, protocol: &mut dyn Protocol| {
            let started = Instant::now();
            let res = replay_shard(protocol, &shards[idx], cfg);
            let refs = match &res {
                Ok(o) => o.refs,
                Err(_) => shards[idx].records.len() as u64,
            };
            observe(idx, started, started.elapsed(), refs);
            *slots[idx].lock().expect("shard slot poisoned") = Some(res);
        };
        if shards.len() == 1 {
            let mut protocols = protocols;
            run_one(0, protocols[0].as_mut());
        } else {
            std::thread::scope(|scope| {
                for (idx, mut protocol) in protocols.into_iter().enumerate() {
                    let run_one = &run_one;
                    scope.spawn(move || run_one(idx, protocol.as_mut()));
                }
            });
        }
    }

    merge_shard_results(slots)
}

/// Folds per-shard replay results into one [`RunResult`] — additive
/// counter merge in shard order, findings re-sorted by global reference
/// number then capped, smallest `(gref, shard)` error winning — shared by
/// the in-memory ([`run_sharded_with`]) and spilled
/// ([`run_sharded_spilled`]) parallel paths so both merge identically.
pub(crate) fn merge_shard_results(
    slots: Vec<std::sync::Mutex<Option<Result<CoreResult, EngineError>>>>,
) -> Result<RunResult, String> {
    let mut counters = EventCounters::new();
    let mut refs = 0u64;
    let mut findings: Vec<(u64, String)> = Vec::new();
    let mut first_err: Option<(u64, usize, String)> = None;
    for (idx, slot) in slots.into_iter().enumerate() {
        let res = slot.into_inner().expect("shard slot poisoned").expect("shard replay completed");
        match res {
            Ok(o) => {
                counters.merge(&o.counters);
                refs += o.refs;
                findings.extend(o.violations);
            }
            Err(e) => {
                if first_err.as_ref().is_none_or(|(g, s, _)| (e.gref, idx) < (*g, *s)) {
                    first_err = Some((e.gref, idx, e.msg));
                }
            }
        }
    }
    if let Some((_, _, msg)) = first_err {
        return Err(msg);
    }
    findings.sort_by_key(|(gref, _)| *gref);
    findings.truncate(MAX_VIOLATIONS);
    Ok(finish_result(CoreResult { counters, refs, violations: findings }))
}

/// Partitions a streamed trace into per-shard spill files under `dir`
/// (which must exist), using the same routing [`shard_stream`] uses for
/// `cfg` — `block_id % shards` for infinite caches, set index (clamped to
/// the set count) for finite ones — so spilled replay merges
/// bit-identically with [`run_sharded`]. Memory stays proportional to
/// distinct blocks, never trace length: this is how `run_sharded` scales
/// to traces larger than RAM.
///
/// # Errors
///
/// Propagates I/O errors from the source and the spill files.
pub fn spill_sharded<S: ChunkSource>(
    source: &mut S,
    shards: usize,
    cfg: &RunConfig,
    dir: &Path,
) -> io::Result<SpilledShards> {
    let shards = shards.max(1);
    match cfg.finite_cache {
        None => spill_shards(source, cfg.geometry, shards, dir, |_, gid| gid as usize % shards),
        Some(fc) => {
            let shards = shards.min(fc.sets);
            let geometry = cfg.geometry;
            spill_shards(source, geometry, shards, dir, move |r, _| {
                fc.set_of(geometry.block_of(r.addr)) % shards
            })
        }
    }
}

/// Replays a spilled partition (from [`spill_sharded`]) through one
/// protocol instance per shard, streaming each shard's spill file with
/// bounded memory, and folds the results **bit-identically to
/// [`run_sharded`]** on the same stream: the spill files carry exactly the
/// record / shard-local id / global reference triples an in-memory
/// [`Shard`] carries, and the merge is [`merge_shard_results`].
///
/// # Errors
///
/// As [`run_sharded`]; additionally reports I/O errors reading spill files.
pub fn run_sharded_spilled(
    kind: ProtocolKind,
    n_caches: usize,
    spilled: &SpilledShards,
    cfg: &RunConfig,
) -> Result<RunResult, String> {
    let protocols = split_shards(kind, n_caches, &spilled.shard_blocks());
    let shards = spilled.shards();
    let slots: Vec<std::sync::Mutex<Option<Result<CoreResult, EngineError>>>> =
        shards.iter().map(|_| std::sync::Mutex::new(None)).collect();
    {
        let run_one = |idx: usize, protocol: &mut dyn Protocol| {
            let res = replay_spilled_shard(protocol, &shards[idx], cfg);
            *slots[idx].lock().expect("shard slot poisoned") = Some(res);
        };
        if shards.len() == 1 {
            let mut protocols = protocols;
            run_one(0, protocols[0].as_mut());
        } else {
            std::thread::scope(|scope| {
                for (idx, mut protocol) in protocols.into_iter().enumerate() {
                    let run_one = &run_one;
                    scope.spawn(move || run_one(idx, protocol.as_mut()));
                }
            });
        }
    }
    merge_shard_results(slots)
}

/// Iterator feeding [`run_core`] from a spill file. The shard-local dense
/// id travels through a [`Cell`] side channel: `next` stores it, the
/// resolve closure reads it — safe because [`run_core`] is single-threaded
/// and resolves each record before pulling the next.
struct SpilledRecords<'a> {
    entries: dircc_trace::spill::SpilledEntries,
    lid: &'a Cell<u32>,
    err: &'a RefCell<Option<io::Error>>,
}

impl Iterator for SpilledRecords<'_> {
    type Item = (TraceRecord, u64);

    fn next(&mut self) -> Option<(TraceRecord, u64)> {
        match self.entries.next() {
            Some(Ok(e)) => {
                self.lid.set(e.local_id);
                Some((e.record, e.gref))
            }
            Some(Err(e)) => {
                *self.err.borrow_mut() = Some(e);
                None
            }
            None => None,
        }
    }
}

/// Replays one spilled shard: [`run_core`] over the shard's spill file
/// with its shard-local dense ids, first-ref bitvec and global reference
/// numbers — the streaming twin of [`replay_shard`].
fn replay_spilled_shard(
    protocol: &mut dyn Protocol,
    shard: &SpilledShard,
    cfg: &RunConfig,
) -> Result<CoreResult, EngineError> {
    let read_err = |e: io::Error| EngineError {
        // gref 0 sorts before any engine error, so an I/O failure wins
        // the deterministic first-error merge.
        gref: 0,
        msg: format!("spilled shard read failed: {e}"),
    };
    let entries = shard.entries().map_err(read_err)?;
    let mut seen = vec![0u64; shard.num_blocks.div_ceil(64)];
    let lid = Cell::new(0u32);
    let io_err: RefCell<Option<io::Error>> = RefCell::new(None);
    let records = SpilledRecords { entries, lid: &lid, err: &io_err };
    let global_ids = &shard.global_ids;
    let res = run_core(
        protocol,
        records,
        cfg,
        shard.num_blocks,
        |_, _| {
            let id = lid.get();
            let (word, bit) = (id as usize / 64, 1u64 << (id % 64));
            if word >= seen.len() {
                seen.resize(word + 1, 0);
            }
            let first_ref = seen[word] & bit == 0;
            seen[word] |= bit;
            (BlockAddr::from_index(u64::from(id)), first_ref)
        },
        // Violation messages name blocks by *global* dense id, matching
        // the serial run byte-for-byte.
        |b| BlockAddr::from_index(u64::from(global_ids[b.index() as usize])),
        &mut NoopRecorder,
    );
    if let Some(e) = io_err.into_inner() {
        return Err(read_err(e));
    }
    res
}

/// Replays one shard: [`run_core`] over the shard's records with its
/// shard-local dense ids, first-ref bitvec and global reference numbers.
fn replay_shard<P: Protocol + ?Sized>(
    protocol: &mut P,
    shard: &Shard,
    cfg: &RunConfig,
) -> Result<CoreResult, EngineError> {
    let mut seen = vec![0u64; shard.num_blocks.div_ceil(64)];
    let dense = &shard.dense;
    run_core(
        protocol,
        shard.records.iter().copied().zip(shard.global_refs.iter().copied()),
        cfg,
        shard.num_blocks,
        move |_, idx| {
            let id = dense[idx];
            let (word, bit) = (id as usize / 64, 1u64 << (id % 64));
            let first_ref = seen[word] & bit == 0;
            seen[word] |= bit;
            (BlockAddr::from_index(u64::from(id)), first_ref)
        },
        // Violation messages name blocks by *global* dense id, matching
        // the serial run byte-for-byte.
        |b| BlockAddr::from_index(u64::from(shard.global_ids[b.index() as usize])),
        &mut NoopRecorder,
    )
}

/// The shared replay loop. `records` yields `(record, gref)` pairs where
/// `gref` is the record's 1-based *global* reference number (equal to the
/// loop count for unsharded runs; the original trace position for shard
/// sub-streams) — used in error and violation messages so sharded
/// findings merge back in trace order. `resolve(orig_block, index)`
/// returns the dense block address and whether this is the block's global
/// first reference (`index` is the 0-based position within this stream);
/// `display` maps a dense block to the label violation messages print —
/// identity for unsharded runs, shard-local → global dense id for shard
/// sub-streams, so sharded violation text is byte-identical to serial
/// (it is only called on the verify path, never in the hot loop);
/// `block_capacity` pre-sizes the verifier's dense tables. The recorder
/// sees the cumulative counters once per record, after every counter
/// mutation that record caused (eviction traffic included), so windowed
/// deltas partition the run exactly.
fn run_core<P, I, F, D, R>(
    protocol: &mut P,
    records: I,
    cfg: &RunConfig,
    block_capacity: usize,
    mut resolve: F,
    display: D,
    recorder: &mut R,
) -> Result<CoreResult, EngineError>
where
    P: Protocol + ?Sized,
    I: IntoIterator<Item = (TraceRecord, u64)>,
    F: FnMut(BlockAddr, usize) -> (BlockAddr, bool),
    D: Fn(BlockAddr) -> BlockAddr,
    R: Recorder,
{
    let mut counters = EventCounters::new();
    let n = protocol.num_caches();
    let mut verifier = cfg.verify.then(|| Verifier::new(n, block_capacity));
    let mut violations = Vec::new();
    let mut refs = 0u64;
    // Finite-mode tag stores mirror each cache's resident blocks; LRU
    // victims are evicted from the protocol. Tags invalidated by remote
    // writes linger until replaced (as in real caches). Set selection uses
    // raw address bits, so the stores are keyed on the ORIGINAL block
    // address and carry the dense address as their state.
    let mut tag_stores: Option<Vec<SetAssocCache<BlockAddr>>> =
        cfg.finite_cache.map(|fc| (0..n).map(|_| SetAssocCache::new(fc)).collect());

    // One reference, shared by both loops below (`r`, `gref`, and the
    // surrounding mutable state bind at the expansion site).
    macro_rules! step {
        ($r:ident, $gref:ident) => {{
            refs += 1;
            if $r.kind == AccessKind::InstrFetch {
                counters.observe(&dircc_core::Outcome::quiet(Event::Instr));
                recorder.record(refs, &counters);
                continue;
            }
            let cache_idx = match cfg.sharing {
                SharingModel::Processor => $r.cpu.raw(),
                SharingModel::Process => $r.pid.raw(),
            };
            if usize::from(cache_idx) >= n {
                return Err(EngineError {
                    gref: $gref,
                    msg: format!(
                        "reference {}: cache index {cache_idx} out of range for {n} caches \
                         ({}, {}, {:?} at {}; did you size the protocol for the sharing model?)",
                        $gref, $r.cpu, $r.pid, $r.kind, $r.addr
                    ),
                });
            }
            let cache = CacheId::new(cache_idx);
            let orig_block = cfg.geometry.block_of($r.addr);
            let (block, first_ref) = resolve(orig_block, (refs - 1) as usize);
            let out = protocol.access(cache, $r.kind, block, first_ref);
            counters.observe(&out);

            if let Some(v) = verifier.as_mut() {
                verify_access(
                    protocol,
                    v,
                    cache,
                    $r.kind,
                    block,
                    display(block),
                    &out,
                    &mut violations,
                    $gref,
                );
            }
            if let Some(stores) = tag_stores.as_mut() {
                let store = &mut stores[cache.index()];
                if let Lookup::Inserted { evicted: Some(victim) } =
                    store.lookup_or_insert(orig_block, block)
                {
                    let evo = protocol.evict(cache, victim.state);
                    counters.observe_eviction(&evo);
                    if evo.write_back {
                        if let Some(v) = verifier.as_mut() {
                            // The evicted copy holds the latest data in
                            // every protocol that answers WRITE_BACK.
                            let ver = v.copy_version(cache, victim.state);
                            v.set_memory(victim.state, ver);
                        }
                    }
                }
            }
            recorder.record(refs, &counters);
        }};
    }

    // The invariant cadence is hoisted out of the common (cadence 0)
    // configuration: that loop carries no per-reference modulo test at
    // all, instead of a dead branch per reference.
    let every = cfg.check_invariants_every;
    let records = records.into_iter();
    if every == 0 {
        for (r, gref) in records {
            step!(r, gref);
        }
    } else {
        for (r, gref) in records {
            step!(r, gref);
            if refs.is_multiple_of(every) {
                protocol.check_invariants().map_err(|e| EngineError {
                    gref,
                    msg: format!("invariant violation at reference {gref}: {e}"),
                })?;
            }
        }
    }
    if cfg.check_invariants_every > 0 {
        protocol.check_invariants().map_err(|e| EngineError {
            gref: u64::MAX,
            msg: format!("final invariant violation: {e}"),
        })?;
    }
    recorder.finish(refs, &counters);
    Ok(CoreResult { counters, refs, violations })
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_access<P: Protocol + ?Sized>(
    protocol: &P,
    v: &mut Verifier,
    cache: CacheId,
    kind: AccessKind,
    block: BlockAddr,
    shown: BlockAddr,
    out: &dircc_core::Outcome,
    violations: &mut Vec<(u64, String)>,
    gref: u64,
) {
    let mut report = |msg: String| {
        if violations.len() < MAX_VIOLATIONS {
            violations.push((gref, msg));
        }
    };
    let holders = protocol.holders(block);
    if !holders.contains(cache) {
        report(format!("{cache} accessed {shown} but is not a holder afterwards"));
        return;
    }
    match kind {
        AccessKind::Write => {
            let new_ver = v.cur_version(block) + 1;
            v.set_version(block, new_ver);
            v.set_copy(cache, block, new_ver);
            if out.memory_updated {
                v.set_memory(block, new_ver);
            }
            match protocol.style() {
                CoherenceStyle::Update => {
                    // Updates reach every current holder.
                    for h in holders.iter() {
                        v.set_copy(h, block, new_ver);
                    }
                }
                CoherenceStyle::Invalidate => {
                    // Single-writer: no other copy may survive a write.
                    if holders.len() != 1 {
                        report(format!(
                            "invalidation protocol left {} copies of {shown} after a write",
                            holders.len()
                        ));
                    }
                }
            }
        }
        AccessKind::Read => {
            let cur = v.cur_version(block);
            match out.event {
                Event::ReadHit => {
                    let held = v.copy_version(cache, block);
                    if held != cur {
                        report(format!(
                            "read hit observed version {held} of {shown}, latest is {cur}"
                        ));
                    }
                }
                Event::ReadMiss(_) => {
                    // Where did the data come from?
                    if out.memory_updated {
                        v.set_memory(block, cur);
                    }
                    let supplied = if out.cache_supplied || out.write_back {
                        cur
                    } else {
                        v.mem_version(block)
                    };
                    if supplied != cur {
                        report(format!(
                            "miss on {shown} supplied version {supplied}, latest is {cur}"
                        ));
                    }
                    v.set_copy(cache, block, supplied);
                }
                other => report(format!("read classified as {other}")),
            }
        }
        AccessKind::InstrFetch => unreachable!("filtered before the protocol"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_core::{build, ProtocolKind};
    use dircc_trace::gen::patterns;
    use dircc_types::{Address, CpuId, ProcessId};

    fn run_verified(kind: ProtocolKind, trace: Vec<TraceRecord>) -> RunResult {
        let mut p = build(kind, 4);
        let res = run(p.as_mut(), trace, &RunConfig::verifying(1)).expect("run succeeds");
        assert!(res.violations.is_empty(), "{}: {:?}", p.name(), res.violations);
        res
    }

    #[test]
    fn all_protocols_stay_coherent_on_every_pattern() {
        let patterns: Vec<(&str, Vec<TraceRecord>)> = vec![
            ("ping_pong", patterns::ping_pong(25)),
            ("read_only", patterns::read_only_sharing(4, 8, 5)),
            ("migratory", patterns::migratory(4, 40)),
            ("prodcons", patterns::producer_consumer(30, 4)),
            ("private", patterns::private_only(4, 10)),
            ("spinlock", patterns::spinlock_contention(3, 15)),
        ];
        for kind in [
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::DirNb { pointers: 2 },
            ProtocolKind::DirNb { pointers: 4 },
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::CodedSet,
            ProtocolKind::Tang,
            ProtocolKind::YenFu,
            ProtocolKind::Wti,
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            ProtocolKind::WriteOnce,
            ProtocolKind::Firefly,
            ProtocolKind::Mesi,
        ] {
            for (name, trace) in &patterns {
                let mut p = build(kind, 4);
                let res = run(p.as_mut(), trace.clone(), &RunConfig::verifying(1)).expect("run");
                assert!(res.violations.is_empty(), "{} on {name}: {:?}", p.name(), res.violations);
            }
        }
    }

    #[test]
    fn first_references_counted_once_globally() {
        let res = run_verified(ProtocolKind::Dir0B, patterns::read_only_sharing(4, 3, 2));
        assert_eq!(res.counters.rm_first_ref(), 3, "3 blocks, each first-referenced once");
        // Every other cache's cold miss is a sharing miss, not a first ref.
        assert_eq!(res.counters.rm_blk_cln(), 9);
    }

    #[test]
    fn instr_fetches_bypass_the_protocol() {
        let trace = patterns::with_instr_stream(patterns::ping_pong(5));
        let res = run_verified(ProtocolKind::Dir0B, trace);
        assert_eq!(res.counters.instr(), 10);
        assert_eq!(res.counters.total(), 20);
    }

    #[test]
    fn process_sharing_uses_pid() {
        // One CPU, two processes time-sharing it: with processor sharing
        // there is no sharing at all; with process sharing the two
        // processes' caches ping-pong.
        let mk = |pid: u16| {
            TraceRecord::new(
                CpuId::new(0),
                ProcessId::new(pid),
                AccessKind::Write,
                Address::new(0x100),
            )
        };
        let trace: Vec<TraceRecord> = (0..10).map(|i| mk(i % 2)).collect();

        let mut p = build(ProtocolKind::Dir0B, 4);
        let proc_res = run(p.as_mut(), trace.clone(), &RunConfig::default()).unwrap();
        assert_eq!(proc_res.counters.wm(), 0, "processor model sees one cache");

        let mut p = build(ProtocolKind::Dir0B, 4);
        let cfg = RunConfig::default().with_process_sharing();
        let res = run(p.as_mut(), trace, &cfg).unwrap();
        assert!(res.counters.wm() > 0, "process model exposes the sharing");
    }

    #[test]
    fn finite_caches_generate_evictions_and_write_backs() {
        use dircc_cache::FiniteCacheConfig;
        // A 2-block direct-mapped cache forced to thrash: each CPU cycles
        // through 4 conflicting blocks, writing each.
        let mut trace = Vec::new();
        for i in 0..200u64 {
            let block = (i % 4) * 2; // all map to set 0 of a 2-set cache
            trace.push(TraceRecord::new(
                CpuId::new(0),
                ProcessId::new(0),
                AccessKind::Write,
                Address::new(block * 16),
            ));
        }
        let cfg = RunConfig::default().with_finite_caches(FiniteCacheConfig::new(2, 1));
        let mut p = build(ProtocolKind::Dir0B, 4);
        let res = run(p.as_mut(), trace, &RunConfig { verify: true, ..cfg }).unwrap();
        assert!(res.counters.cache_evictions() > 100, "thrash must evict");
        assert!(res.counters.write_backs() > 100, "dirty evictions flush");
        assert!(
            res.counters.rm() + res.counters.wm() > 100,
            "replacement misses reappear as memory-only misses"
        );
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn finite_caches_stay_coherent_for_every_protocol() {
        use dircc_cache::FiniteCacheConfig;
        let trace = patterns::migratory(4, 200);
        for kind in [
            ProtocolKind::Dir0B,
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::DirNb { pointers: 4 },
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::CodedSet,
            ProtocolKind::Tang,
            ProtocolKind::YenFu,
            ProtocolKind::Wti,
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            ProtocolKind::WriteOnce,
            ProtocolKind::Firefly,
            ProtocolKind::Mesi,
        ] {
            let mut p = build(kind, 4);
            let cfg = RunConfig {
                verify: true,
                check_invariants_every: 1,
                ..RunConfig::default().with_finite_caches(FiniteCacheConfig::new(2, 2))
            };
            let res =
                run(p.as_mut(), trace.clone(), &cfg).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(res.violations.is_empty(), "{kind}: {:?}", res.violations);
        }
    }

    #[test]
    fn infinite_runs_report_zero_evictions() {
        let mut p = build(ProtocolKind::Dir0B, 4);
        let res = run(p.as_mut(), patterns::migratory(4, 50), &RunConfig::default()).unwrap();
        assert_eq!(res.counters.cache_evictions(), 0);
    }

    #[test]
    fn out_of_range_cache_is_an_error() {
        let trace = vec![TraceRecord::new(
            CpuId::new(7),
            ProcessId::new(7),
            AccessKind::Read,
            Address::new(0),
        )];
        let mut p = build(ProtocolKind::Dir0B, 4);
        assert!(run(p.as_mut(), trace, &RunConfig::default()).is_err());
    }

    #[test]
    fn verifier_catches_a_broken_protocol() {
        /// A deliberately broken protocol: never invalidates other copies.
        #[derive(Debug)]
        struct Broken {
            caches: dircc_cache::CacheArray<()>,
        }
        impl Protocol for Broken {
            fn kind(&self) -> ProtocolKind {
                ProtocolKind::Wti
            }
            fn num_caches(&self) -> usize {
                self.caches.num_caches()
            }
            fn access(
                &mut self,
                cache: CacheId,
                kind: AccessKind,
                block: BlockAddr,
                first_ref: bool,
            ) -> dircc_core::Outcome {
                use dircc_core::{MissContext, WriteHitContext};
                let hit = self.caches.state(cache, block).is_some();
                self.caches.set(cache, block, ());
                let event = match (kind, hit, first_ref) {
                    (AccessKind::Read, true, _) => Event::ReadHit,
                    (AccessKind::Read, false, true) => Event::ReadMiss(MissContext::FirstRef),
                    (AccessKind::Read, false, false) => Event::ReadMiss(MissContext::MemoryOnly),
                    (AccessKind::Write, true, _) => {
                        Event::WriteHit(WriteHitContext::CleanExclusive)
                    }
                    (AccessKind::Write, false, true) => Event::WriteMiss(MissContext::FirstRef),
                    (AccessKind::Write, false, false) => Event::WriteMiss(MissContext::MemoryOnly),
                    _ => unreachable!(),
                };
                dircc_core::Outcome::quiet(event)
            }
            fn holders(&self, block: BlockAddr) -> dircc_types::CacheIdSet {
                self.caches.holders(block)
            }
            fn check_invariants(&self) -> Result<(), String> {
                Ok(())
            }
        }

        let mut broken = Broken { caches: dircc_cache::CacheArray::new(4) };
        let res = run(&mut broken, patterns::ping_pong(5), &RunConfig::verifying(0)).unwrap();
        assert!(!res.violations.is_empty(), "stale copies must be detected");
    }

    #[test]
    fn noop_recorder_is_bit_identical_to_the_plain_entry_point() {
        let trace = patterns::migratory(4, 80);
        let mut p = build(ProtocolKind::Berkeley, 4);
        let plain = run(p.as_mut(), trace.clone(), &RunConfig::default()).unwrap();
        let mut p = build(ProtocolKind::Berkeley, 4);
        let mut rec = dircc_obs::NoopRecorder;
        let with = run_with(p.as_mut(), trace, &RunConfig::default(), &mut rec).unwrap();
        assert_eq!(plain.counters, with.counters);
        assert_eq!(plain.refs, with.refs);
    }

    #[test]
    fn windowed_recorder_reconstructs_final_counters() {
        use dircc_cache::FiniteCacheConfig;
        // Finite caches so eviction traffic flows through the counters
        // too; instruction fetches so every record kind is covered.
        let trace = patterns::with_instr_stream(patterns::migratory(4, 120));
        let cfg = RunConfig::default().with_finite_caches(FiniteCacheConfig::new(2, 2));
        let mut p = build(ProtocolKind::WriteOnce, 4);
        let mut rec = dircc_obs::WindowedRecorder::new(17);
        let res = run_with(p.as_mut(), trace.clone(), &cfg, &mut rec).unwrap();
        let samples = rec.into_samples();
        assert!(samples.len() > 2, "windowing at 17 refs must produce several windows");
        assert_eq!(samples.last().unwrap().end_ref, res.refs);
        let mut sum = EventCounters::new();
        for s in &samples {
            sum.merge(&s.counters);
        }
        assert_eq!(sum, res.counters, "window deltas must partition the run exactly");
        // The recorder never perturbs the run itself.
        let mut p = build(ProtocolKind::WriteOnce, 4);
        let plain = run(p.as_mut(), trace, &cfg).unwrap();
        assert_eq!(plain.counters, res.counters);
    }

    #[test]
    fn windowed_recorder_works_on_the_indexed_path() {
        use dircc_trace::gen::Profile;
        use dircc_trace::store::{TraceFilter, TraceStore};
        let store = TraceStore::new(vec![Profile::pops().with_total_refs(5_000)], 11);
        let cfg = RunConfig::default().with_process_sharing();
        let records = store.records(0, TraceFilter::Full);
        let dense = store.dense_blocks(0, TraceFilter::Full, cfg.geometry);
        let num_blocks = store.interner(0, cfg.geometry).num_blocks();
        let mut p = dircc_core::build_sized(ProtocolKind::Dir0B, 4, num_blocks);
        let mut rec = dircc_obs::WindowedRecorder::new(512);
        let res =
            run_indexed_with(p.as_mut(), &records, &dense, num_blocks, &cfg, &mut rec).unwrap();
        let mut sum = EventCounters::new();
        for s in rec.samples() {
            sum.merge(&s.counters);
        }
        assert_eq!(sum, res.counters);
        assert_eq!(rec.samples().len(), 5_000usize.div_ceil(512));
    }

    fn interned(records: &[TraceRecord], g: BlockGeometry) -> (Vec<u32>, usize) {
        let interner = dircc_trace::BlockInterner::from_records(records.iter(), g);
        (interner.dense_stream(records), interner.num_blocks())
    }

    #[test]
    fn sharded_replay_is_bit_identical_for_every_scheme() {
        use dircc_trace::gen::{Generator, Profile};
        let records: Vec<TraceRecord> =
            Generator::new(Profile::pops().with_total_refs(6_000), 9).collect();
        let cfg = RunConfig { verify: true, ..RunConfig::default().with_process_sharing() };
        let (dense, num_blocks) = interned(&records, cfg.geometry);
        for kind in [
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::DirNb { pointers: 4 },
            ProtocolKind::Dir0B,
            ProtocolKind::DirB { pointers: 1 },
            ProtocolKind::CodedSet,
            ProtocolKind::Tang,
            ProtocolKind::YenFu,
            ProtocolKind::Wti,
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            ProtocolKind::WriteOnce,
            ProtocolKind::Firefly,
            ProtocolKind::Mesi,
        ] {
            let mut p = build(kind, 4);
            let serial = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg).unwrap();
            for shards in [1, 2, 3, 8] {
                let sharded = shard_stream(&records, &dense, num_blocks, shards, &cfg);
                assert_eq!(sharded.num_shards(), shards, "infinite caches honour the count");
                let res = run_sharded(kind, 4, &sharded, &cfg).unwrap();
                assert_eq!(serial.counters, res.counters, "{kind} at {shards} shards");
                assert_eq!(serial.refs, res.refs);
                assert_eq!(serial.violations, res.violations);
            }
        }
    }

    #[test]
    fn set_sharded_finite_caches_are_bit_identical() {
        use dircc_cache::FiniteCacheConfig;
        // Four CPUs cycling writes through 24 blocks — 6 blocks per set of
        // a 4-set × 2-way cache, so every set thrashes and evicts.
        let trace: Vec<TraceRecord> = (0..1200u64)
            .map(|i| {
                let cpu = (i % 4) as u16;
                let block = (i / 4 * 5 + i % 4) % 24;
                TraceRecord::new(
                    CpuId::new(cpu),
                    ProcessId::new(cpu),
                    if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read },
                    Address::new(block * 16),
                )
            })
            .collect();
        let cfg = RunConfig {
            verify: true,
            ..RunConfig::default().with_finite_caches(FiniteCacheConfig::new(4, 2))
        };
        let (dense, num_blocks) = interned(&trace, cfg.geometry);
        for kind in [ProtocolKind::Dir0B, ProtocolKind::Berkeley, ProtocolKind::Mesi] {
            let mut p = build(kind, 4);
            let serial = run_indexed(p.as_mut(), &trace, &dense, num_blocks, &cfg).unwrap();
            assert!(serial.counters.cache_evictions() > 0, "exercise eviction traffic");
            for shards in [2, 3, 4, 8] {
                let sharded = shard_stream(&trace, &dense, num_blocks, shards, &cfg);
                assert!(sharded.num_shards() <= 4, "clamped to the set count");
                let res = run_sharded(kind, 4, &sharded, &cfg).unwrap();
                assert_eq!(serial.counters, res.counters, "{kind} at {shards} shards");
                assert_eq!(serial.violations, res.violations);
            }
        }
    }

    #[test]
    fn finite_single_set_falls_back_to_one_shard() {
        use dircc_cache::FiniteCacheConfig;
        let trace = patterns::migratory(4, 40);
        let cfg = RunConfig::default().with_finite_caches(FiniteCacheConfig::new(1, 2));
        let (dense, num_blocks) = interned(&trace, cfg.geometry);
        let sharded = shard_stream(&trace, &dense, num_blocks, 8, &cfg);
        assert_eq!(sharded.num_shards(), 1);
    }

    #[test]
    fn sharded_violations_merge_in_trace_order_with_the_serial_cap() {
        // The Stale protocol above violates on every access; over many
        // blocks the violations land in different shards, so this pins
        // the cap-after-merge semantics: exactly the serial run's first
        // MAX_VIOLATIONS findings, in its order.
        #[derive(Debug)]
        struct Stale(dircc_cache::CacheArray<()>);
        impl Protocol for Stale {
            fn kind(&self) -> ProtocolKind {
                ProtocolKind::Wti
            }
            fn num_caches(&self) -> usize {
                self.0.num_caches()
            }
            fn access(
                &mut self,
                cache: CacheId,
                _kind: AccessKind,
                block: BlockAddr,
                _first: bool,
            ) -> dircc_core::Outcome {
                self.0.set(cache, block, ());
                dircc_core::Outcome::quiet(Event::WriteHit(
                    dircc_core::WriteHitContext::CleanExclusive,
                ))
            }
            fn holders(&self, block: BlockAddr) -> dircc_types::CacheIdSet {
                self.0.holders(block)
            }
            fn check_invariants(&self) -> Result<(), String> {
                Ok(())
            }
        }
        use dircc_types::{Address, CpuId, ProcessId};
        let trace: Vec<TraceRecord> = (0..120u64)
            .map(|i| {
                TraceRecord::new(
                    CpuId::new((i % 4) as u16),
                    ProcessId::new((i % 4) as u16),
                    if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read },
                    Address::new((i % 9) * 16),
                )
            })
            .collect();
        let cfg = RunConfig::verifying(0);
        let (dense, num_blocks) = interned(&trace, cfg.geometry);
        let mut p = Stale(dircc_cache::CacheArray::new(4));
        let serial = run_indexed(&mut p, &trace, &dense, num_blocks, &cfg).unwrap();
        assert_eq!(serial.violations.len(), MAX_VIOLATIONS);
        for shards in [2, 3, 5] {
            let sharded = shard_stream(&trace, &dense, num_blocks, shards, &cfg);
            let protocols: Vec<Box<dyn Protocol>> = (0..shards)
                .map(|_| Box::new(Stale(dircc_cache::CacheArray::new(4))) as Box<dyn Protocol>)
                .collect();
            let res = run_sharded_with(protocols, &sharded, &cfg, |_, _, _, _| ()).unwrap();
            assert_eq!(serial.violations, res.violations, "{shards} shards");
        }
    }

    #[test]
    fn sharded_error_is_the_serial_first_error() {
        // An out-of-range CPU in the middle of the stream: whichever shard
        // it lands in, the reported error must be the serial one.
        use dircc_types::{Address, CpuId, ProcessId};
        let mut trace = patterns::migratory(4, 60);
        trace.insert(
            30,
            TraceRecord::new(CpuId::new(9), ProcessId::new(9), AccessKind::Read, Address::new(0)),
        );
        let cfg = RunConfig::default();
        let (dense, num_blocks) = interned(&trace, cfg.geometry);
        let mut p = build(ProtocolKind::Dir0B, 4);
        let serial = run_indexed(p.as_mut(), &trace, &dense, num_blocks, &cfg).unwrap_err();
        for shards in [1, 2, 4] {
            let sharded = shard_stream(&trace, &dense, num_blocks, shards, &cfg);
            let err = run_sharded(ProtocolKind::Dir0B, 4, &sharded, &cfg).unwrap_err();
            assert_eq!(serial, err, "{shards} shards");
        }
    }

    #[test]
    fn sharded_observer_sees_every_shard_once() {
        use std::sync::Mutex;
        let trace = patterns::migratory(4, 200);
        let cfg = RunConfig::default();
        let (dense, num_blocks) = interned(&trace, cfg.geometry);
        let sharded = shard_stream(&trace, &dense, num_blocks, 3, &cfg);
        let seen: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
        let protocols = dircc_core::split_shards(ProtocolKind::Mesi, 4, &sharded.shard_blocks());
        let res = run_sharded_with(protocols, &sharded, &cfg, |shard, _, _, refs| {
            seen.lock().unwrap().push((shard, refs));
        })
        .unwrap();
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(seen.iter().map(|(_, r)| *r).sum::<u64>(), res.refs);
    }

    #[test]
    fn mismatched_instance_count_is_an_error() {
        let trace = patterns::migratory(4, 20);
        let cfg = RunConfig::default();
        let (dense, num_blocks) = interned(&trace, cfg.geometry);
        let sharded = shard_stream(&trace, &dense, num_blocks, 2, &cfg);
        let err =
            run_sharded_with(vec![build(ProtocolKind::Dir0B, 4)], &sharded, &cfg, |_, _, _, _| ())
                .unwrap_err();
        assert!(err.contains("one per shard"), "{err}");
    }

    #[test]
    fn violations_are_capped() {
        let trace = patterns::ping_pong(100);
        #[derive(Debug)]
        struct Stale(dircc_cache::CacheArray<()>);
        impl Protocol for Stale {
            fn kind(&self) -> ProtocolKind {
                ProtocolKind::Wti
            }
            fn num_caches(&self) -> usize {
                self.0.num_caches()
            }
            fn access(
                &mut self,
                cache: CacheId,
                _kind: AccessKind,
                block: BlockAddr,
                _first: bool,
            ) -> dircc_core::Outcome {
                self.0.set(cache, block, ());
                dircc_core::Outcome::quiet(Event::WriteHit(
                    dircc_core::WriteHitContext::CleanExclusive,
                ))
            }
            fn holders(&self, block: BlockAddr) -> dircc_types::CacheIdSet {
                self.0.holders(block)
            }
            fn check_invariants(&self) -> Result<(), String> {
                Ok(())
            }
        }
        let mut p = Stale(dircc_cache::CacheArray::new(4));
        let res = run(&mut p, trace, &RunConfig::verifying(0)).unwrap();
        assert_eq!(res.violations.len(), MAX_VIOLATIONS);
    }
}

//! Metrics over completed runs: the paper's bus-cycles-per-reference and
//! cycles-per-transaction measures.

use dircc_bus::{price, transactions, Breakdown, CostConfig, CostModel};
use dircc_core::{EventCounters, ProtocolKind};

/// One protocol's measured event frequencies on one (or several merged)
/// traces, ready to be priced under any hardware model.
///
/// This is the artifact the paper's methodology produces once per protocol:
/// "we need just one simulation run per protocol to compute the event
/// frequencies, and we can then vary costs for different hardware models."
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Paper-style protocol name (e.g. `Dir0B`).
    pub name: String,
    /// Taxonomy point, for cost-schema dispatch.
    pub kind: ProtocolKind,
    /// Machine size the run used.
    pub n_caches: usize,
    /// Measured event frequencies.
    pub counters: EventCounters,
}

impl Evaluation {
    /// Creates an evaluation from a finished run.
    pub fn new(
        name: impl Into<String>,
        kind: ProtocolKind,
        n_caches: usize,
        counters: EventCounters,
    ) -> Self {
        Evaluation { name: name.into(), kind, n_caches, counters }
    }

    /// Prices the run: total bus cycles by category.
    pub fn breakdown(&self, m: &CostModel, cfg: &CostConfig) -> Breakdown {
        price(self.kind, self.n_caches, &self.counters, m, cfg)
    }

    /// Per-reference bus-cycle breakdown (Table 5's unit).
    pub fn breakdown_per_ref(&self, m: &CostModel, cfg: &CostConfig) -> Breakdown {
        self.breakdown(m, cfg).per_ref(self.counters.total())
    }

    /// The paper's headline metric: average bus cycles per memory
    /// reference.
    pub fn cycles_per_ref(&self, m: &CostModel, cfg: &CostConfig) -> f64 {
        self.breakdown_per_ref(m, cfg).total()
    }

    /// Bus transactions per memory reference (the §5.1 line slope).
    pub fn transactions_per_ref(&self) -> f64 {
        if self.counters.total() == 0 {
            return 0.0;
        }
        transactions(self.kind, &self.counters) as f64 / self.counters.total() as f64
    }

    /// Figure 5's metric: average bus cycles per bus transaction.
    pub fn cycles_per_transaction(&self, m: &CostModel, cfg: &CostConfig) -> f64 {
        let t = transactions(self.kind, &self.counters);
        if t == 0 {
            return 0.0;
        }
        self.breakdown(m, cfg).total() / t as f64
    }
}

/// Unweighted mean of a slice (the paper averages per-trace results).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dircc_core::{Event, MissContext, Outcome};

    fn eval_with_misses(n: u64) -> Evaluation {
        let mut c = EventCounters::new();
        for _ in 0..n {
            c.observe(&Outcome::quiet(Event::ReadMiss(MissContext::MemoryOnly)));
        }
        for _ in 0..n {
            c.observe(&Outcome::quiet(Event::ReadHit));
        }
        Evaluation::new("Dir0B", ProtocolKind::Dir0B, 4, c)
    }

    #[test]
    fn cycles_per_ref_divides_by_total() {
        let e = eval_with_misses(10);
        let cpr = e.cycles_per_ref(&CostModel::pipelined(), &CostConfig::PAPER);
        assert!((cpr - 2.5).abs() < 1e-12, "10 misses × 5 cycles over 20 refs");
    }

    #[test]
    fn cycles_per_transaction_divides_by_transactions() {
        let e = eval_with_misses(10);
        let cpt = e.cycles_per_transaction(&CostModel::pipelined(), &CostConfig::PAPER);
        assert!((cpt - 5.0).abs() < 1e-12);
        assert!((e.transactions_per_ref() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let e = Evaluation::new("x", ProtocolKind::Wti, 4, EventCounters::new());
        assert_eq!(e.cycles_per_ref(&CostModel::pipelined(), &CostConfig::PAPER), 0.0);
        assert_eq!(e.cycles_per_transaction(&CostModel::pipelined(), &CostConfig::PAPER), 0.0);
        assert_eq!(e.transactions_per_ref(), 0.0);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hit_only_run_has_refs_but_no_transactions() {
        // total() > 0 but zero bus transactions: only the per-transaction
        // ratio degenerates; per-ref stays a well-defined 0/total.
        let mut c = EventCounters::new();
        for _ in 0..8 {
            c.observe(&Outcome::quiet(Event::ReadHit));
        }
        let e = Evaluation::new("Dir0B", ProtocolKind::Dir0B, 4, c);
        let (m, cfg) = (CostModel::pipelined(), CostConfig::PAPER);
        assert_eq!(e.cycles_per_transaction(&m, &cfg), 0.0, "0 transactions");
        assert_eq!(e.transactions_per_ref(), 0.0);
        assert_eq!(e.cycles_per_ref(&m, &cfg), 0.0);
        assert!(e.cycles_per_ref(&m, &cfg).is_finite(), "never NaN");
    }

    #[test]
    fn empty_breakdown_per_ref_is_all_zero() {
        let e = Evaluation::new("x", ProtocolKind::Dragon, 4, EventCounters::new());
        let b = e.breakdown_per_ref(&CostModel::pipelined(), &CostConfig::PAPER);
        assert_eq!(b.total(), 0.0, "0-ref run prices to zero, not NaN");
    }

    #[test]
    fn evaluation_round_trips_through_window_deltas() {
        // The obs layer reports windows as counter deltas; pricing the
        // merged deltas must equal pricing the original run exactly.
        let e = eval_with_misses(10);
        let (m, cfg) = (CostModel::pipelined(), CostConfig::PAPER);
        let empty = EventCounters::new();
        let delta = e.counters.diff(&empty); // whole run as one delta
        let mut merged = EventCounters::new();
        merged.merge(&delta);
        let rt = Evaluation::new(e.name.clone(), e.kind, e.n_caches, merged);
        assert_eq!(rt.cycles_per_ref(&m, &cfg), e.cycles_per_ref(&m, &cfg));
        assert_eq!(rt.cycles_per_transaction(&m, &cfg), e.cycles_per_transaction(&m, &cfg));
        assert_eq!(rt.transactions_per_ref(), e.transactions_per_ref());
    }
}

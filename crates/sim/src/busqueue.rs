//! Discrete-event single-bus contention simulation.
//!
//! The paper's bus-cycles-per-reference metric deliberately ignores
//! queueing: "This limit is an optimistic upper bound because we have not
//! included ... the effects of bus contention." This module supplies the
//! missing piece: `n` processors generating bus transactions at the rates
//! measured by the trace study, contending for one FIFO bus. From it the
//! §5 system-performance estimate ("a bus with a cycle time of 100ns will
//! only yield a maximum performance of 15 effective processors") becomes a
//! measurable curve instead of a back-of-envelope bound.
//!
//! The model, in bus cycles:
//!
//! * each processor executes `refs_per_cycle` memory references per bus
//!   cycle while it is not stalled (the paper's example: a 10-MIPS
//!   processor with a 100ns bus cycle executes one instruction — roughly
//!   two references — per bus cycle);
//! * a reference starts a bus transaction with probability
//!   `transactions_per_ref` (protocol-dependent, measured);
//! * each transaction occupies the bus for `service_cycles` (the
//!   protocol's measured cycles per transaction) and stalls its processor
//!   until it completes;
//! * the bus serves transactions FIFO.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Parameters of a contention simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusLoad {
    /// Processors on the bus.
    pub processors: u32,
    /// References one unstalled processor executes per bus cycle.
    pub refs_per_cycle: f64,
    /// Probability that a reference starts a bus transaction.
    pub transactions_per_ref: f64,
    /// Bus cycles one transaction occupies.
    pub service_cycles: f64,
    /// Simulation horizon in bus cycles.
    pub horizon_cycles: u64,
}

impl BusLoad {
    /// The paper's §5 example platform: 10-MIPS processors, 100ns bus
    /// cycle, one data reference per instruction (so ≈2 references per bus
    /// cycle while running).
    pub fn paper_platform(processors: u32) -> Self {
        BusLoad {
            processors,
            refs_per_cycle: 2.0,
            transactions_per_ref: 0.02,
            service_cycles: 2.0,
            horizon_cycles: 200_000,
        }
    }

    /// Sets the measured transaction rate and service time.
    #[must_use]
    pub fn with_protocol(mut self, transactions_per_ref: f64, service_cycles: f64) -> Self {
        self.transactions_per_ref = transactions_per_ref;
        self.service_cycles = service_cycles;
        self
    }
}

/// Results of a contention simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusOutcome {
    /// Total references completed across all processors.
    pub total_refs: u64,
    /// Fraction of the horizon the bus was busy.
    pub bus_utilization: f64,
    /// Aggregate throughput divided by one processor's *nominal* (never
    /// stalled) throughput — the paper's "effective processors" (its
    /// 10-MIPS figure is the nominal rate).
    pub effective_processors: f64,
    /// Mean cycles a transaction waited before being served.
    pub mean_queue_wait: f64,
}

/// Runs the discrete-event simulation.
///
/// Deterministic for a given `(load, seed)`.
///
/// # Panics
///
/// Panics if `processors == 0`, rates are non-positive, or
/// `transactions_per_ref > 1`.
pub fn simulate(load: &BusLoad, seed: u64) -> BusOutcome {
    assert!(load.processors > 0, "need at least one processor");
    assert!(load.refs_per_cycle > 0.0 && load.service_cycles > 0.0);
    assert!(load.transactions_per_ref > 0.0 && load.transactions_per_ref <= 1.0);

    let contended = throughput(load, seed);
    let nominal_refs = load.refs_per_cycle * load.horizon_cycles as f64;

    BusOutcome {
        total_refs: contended.0,
        bus_utilization: contended.1,
        effective_processors: contended.0 as f64 / nominal_refs,
        mean_queue_wait: contended.2,
    }
}

/// Core event loop: returns (total refs, bus utilization, mean wait).
fn throughput(load: &BusLoad, seed: u64) -> (u64, f64, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Heap of (time-when-processor-requests-bus, processor, refs-executed
    // -since-last-request). Times in f64 bus cycles, ordered via u64 bits
    // (all times are non-negative finite).
    let mut heap: BinaryHeap<Reverse<(u64, u32, u64)>> = BinaryHeap::new();
    let key = |t: f64| (t.max(0.0) * 1024.0) as u64;

    let gap = |rng: &mut SmallRng| -> (f64, u64) {
        // References until the next transaction (geometric) and the time
        // they take to execute.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let refs = (u.ln() / (1.0 - load.transactions_per_ref).ln()).floor() as u64 + 1;
        (refs as f64 / load.refs_per_cycle, refs)
    };

    for p in 0..load.processors {
        let (dt, refs) = gap(&mut rng);
        heap.push(Reverse((key(dt), p, refs)));
    }

    let mut bus_free_at = 0.0f64;
    let mut busy_cycles = 0.0f64;
    let mut total_refs = 0u64;
    let mut total_wait = 0.0f64;
    let mut transactions = 0u64;
    let horizon = load.horizon_cycles as f64;

    while let Some(Reverse((tkey, p, refs))) = heap.pop() {
        let t = tkey as f64 / 1024.0;
        if t >= horizon {
            break;
        }
        // The processor has executed `refs` references and now needs the
        // bus.
        total_refs += refs;
        let start = bus_free_at.max(t);
        total_wait += start - t;
        transactions += 1;
        let done = start + load.service_cycles;
        busy_cycles += load.service_cycles;
        bus_free_at = done;
        // The processor resumes at `done` and computes its next gap.
        let (dt, next_refs) = gap(&mut rng);
        heap.push(Reverse((key(done + dt), p, next_refs)));
    }

    let utilization = (busy_cycles / horizon).min(1.0);
    let mean_wait = if transactions > 0 { total_wait / transactions as f64 } else { 0.0 };
    (total_refs, utilization, mean_wait)
}

/// The analytic saturation bound behind the paper's §5 estimate: the
/// number of processors at which the bus is 100% utilized,
/// `1 / (refs_per_cycle × transactions_per_ref × service_cycles)`.
pub fn saturation_bound(load: &BusLoad) -> f64 {
    1.0 / (load.refs_per_cycle * load.transactions_per_ref * load.service_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light_load(processors: u32) -> BusLoad {
        BusLoad {
            processors,
            refs_per_cycle: 2.0,
            transactions_per_ref: 0.01,
            service_cycles: 3.0,
            horizon_cycles: 100_000,
        }
    }

    #[test]
    fn single_processor_is_nearly_uncontended() {
        let out = simulate(&light_load(1), 1);
        // Slightly below 1.0: the processor stalls during its own
        // (unqueued) transactions.
        assert!((0.85..=1.0).contains(&out.effective_processors), "{out:?}");
        assert!(out.mean_queue_wait < 0.01, "no one to queue behind");
    }

    #[test]
    fn light_load_scales_nearly_linearly() {
        let out = simulate(&light_load(4), 2);
        assert!(out.effective_processors > 3.3, "{out:?}");
        assert!(out.bus_utilization < 0.5);
    }

    #[test]
    fn heavy_load_saturates_at_the_analytic_bound() {
        let load = BusLoad {
            processors: 64,
            refs_per_cycle: 2.0,
            transactions_per_ref: 0.05,
            service_cycles: 4.0,
            horizon_cycles: 200_000,
        };
        let bound = saturation_bound(&load); // 2.5 processors
        let out = simulate(&load, 3);
        assert!(out.bus_utilization > 0.95, "{out:?}");
        assert!(
            (out.effective_processors - bound).abs() / bound < 0.25,
            "effective {} vs bound {bound}",
            out.effective_processors
        );
    }

    #[test]
    fn effectiveness_is_monotone_then_flat() {
        let eff =
            |n: u32| simulate(&light_load(n).with_protocol(0.02, 3.0), 7).effective_processors;
        let e2 = eff(2);
        let e8 = eff(8);
        let e32 = eff(32);
        let e64 = eff(64);
        assert!(e8 > e2);
        assert!(e32 >= e8 * 0.9);
        // Past saturation (bound ~8.3), adding processors adds nothing.
        assert!((e64 - e32).abs() < 0.2 * e32, "{e32} vs {e64}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = simulate(&light_load(8), 11);
        let b = simulate(&light_load(8), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_platform_matches_the_papers_estimate() {
        // Paper: the best scheme uses ~0.03 bus cycles/ref ⇒ "a bus cycle
        // every 30 references" ⇒ ~15 effective processors at 2 refs per
        // bus cycle. 0.03 cycles/ref with ~1.6-cycle transactions ⇒
        // transactions_per_ref ~0.02.
        let load = BusLoad::paper_platform(64).with_protocol(0.0206, 1.63);
        let bound = saturation_bound(&load);
        assert!((13.0..=17.0).contains(&bound), "analytic bound {bound} vs paper's 15");
        let out = simulate(&load, 5);
        assert!(
            (out.effective_processors - bound).abs() / bound < 0.3,
            "simulated {} vs bound {bound}",
            out.effective_processors
        );
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = simulate(&BusLoad { processors: 0, ..light_load(1) }, 0);
    }
}

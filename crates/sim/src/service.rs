//! The simulator behind `dircc serve`: resolves wire-format jobs
//! against the protocol registry and trace profiles, runs them on
//! memoized [`Workbench`]es, and renders the response JSON.
//!
//! The serve daemon itself (`dircc-serve`) knows nothing about
//! directory schemes — this module implements its
//! [`JobHandler`](dircc_serve::JobHandler) trait. Response bodies are
//! rendered by [`run_response_json`], which `dircc replay --json`
//! shares, so a served `/run` response is byte-identical to a local
//! replay of the same config — the CI serve gate diffs exactly that.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dircc_bus::{CostConfig, CostModel};
use dircc_core::{EventCounters, ProtocolKind};
use dircc_obs::{
    chrome_trace, counters_json, window_jsonl_line, Counter, Histogram, MetricsRegistry, Span,
};
use dircc_serve::{client, HandlerError, JobEngine, JobSpec, Lru};
use dircc_trace::gen::Profile;
use dircc_trace::store::TraceStore;

use crate::metrics::Evaluation;
use crate::workbench::{filter_from_label, filter_label, ReplayEngine, Workbench};

/// Resolves a trace-profile name (`pops`, `THOR`, …) case-insensitively.
pub fn profile_by_name(name: &str) -> Result<Profile, String> {
    match name.to_ascii_lowercase().as_str() {
        "pops" => Ok(Profile::pops()),
        "thor" => Ok(Profile::thor()),
        "pero" => Ok(Profile::pero()),
        "custom" => Ok(Profile::custom()),
        other => Err(format!("unknown profile {other}")),
    }
}

/// Resolves a scheme name (`Dir1NB`, `tang`, …) case-insensitively
/// against the full checked protocol set at `cpus` caches.
pub fn scheme_by_name(name: &str, cpus: usize) -> Result<ProtocolKind, String> {
    let want = name.to_ascii_lowercase();
    let kind = dircc_check::default_kinds()
        .iter()
        .copied()
        .find(|k| dircc_core::build(*k, cpus).name().to_ascii_lowercase() == want);
    kind.ok_or_else(|| {
        let names: Vec<String> = dircc_check::default_kinds()
            .iter()
            .map(|k| dircc_core::build(*k, cpus).name().to_string())
            .collect();
        format!("unknown scheme {name}; one of: {}", names.join(" "))
    })
}

/// Renders the complete `/run` response body: the canonical job echo,
/// the full counter state (with digest) and the paper's pipelined-model
/// evaluation. One JSON line. `dircc replay --json` prints this same
/// rendering from a local replay, so served-vs-local diffs are
/// byte-exact. The echo deliberately omits shards/engine: counters are
/// invariant across both (pinned elsewhere), so responses describing
/// the same run compare equal however it was executed.
pub fn run_response_json(
    eval: &Evaluation,
    trace: &str,
    refs_requested: Option<u64>,
    seed: u64,
    filter: &str,
) -> String {
    let (model, cost_cfg) = (CostModel::pipelined(), CostConfig::PAPER);
    let (scheme, counters) = (&eval.name, &eval.counters);
    let refs_echo = refs_requested.map_or_else(|| "null".to_string(), |n| n.to_string());
    format!(
        "{{\"job\": {{\"scheme\": \"{scheme}\", \"trace\": \"{trace}\", \"refs\": {refs_echo}, \
         \"seed\": {seed}, \"filter\": \"{filter}\"}}, \"refs\": {}, \"counters\": {}, \
         \"evaluation\": {{\"cycles_per_ref\": {:.6}, \"transactions_per_ref\": {:.6}, \
         \"cycles_per_transaction\": {:.6}}}}}\n",
        counters.total(),
        counters_json(counters),
        eval.cycles_per_ref(&model, &cost_cfg),
        eval.transactions_per_ref(),
        eval.cycles_per_transaction(&model, &cost_cfg),
    )
}

/// How many generated [`TraceStore`]s the handler keeps warm. Each
/// distinct (trace, refs, seed) costs one generated record set; the
/// paper suite plus a few scaled variants fit comfortably.
const STORE_CACHE_ENTRIES: usize = 8;

/// The [`JobHandler`](dircc_serve::JobHandler) the daemon runs:
/// memoized single-profile trace stores plus a span log accumulated
/// across requests for `/spans`.
pub struct WorkbenchHandler {
    stores: Mutex<Lru<Arc<TraceStore>>>,
    spans: Mutex<Vec<Span>>,
    /// Handler-side telemetry. Standalone counters under
    /// [`WorkbenchHandler::new`]; registered on the daemon's registry
    /// (and thus on `/metrics`) under
    /// [`WorkbenchHandler::with_registry`].
    runs_executed: Counter,
    refs_replayed: Counter,
    store_hits: Counter,
    store_misses: Counter,
}

impl Default for WorkbenchHandler {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkbenchHandler {
    pub fn new() -> Self {
        WorkbenchHandler {
            stores: Mutex::new(Lru::new(STORE_CACHE_ENTRIES)),
            spans: Mutex::new(Vec::new()),
            runs_executed: Counter::new(),
            refs_replayed: Counter::new(),
            store_hits: Counter::new(),
            store_misses: Counter::new(),
        }
    }

    /// A handler whose workbench counters live on `registry`, so the
    /// daemon's `/metrics` page covers the simulation side too.
    pub fn with_registry(registry: &MetricsRegistry) -> Self {
        WorkbenchHandler {
            stores: Mutex::new(Lru::new(STORE_CACHE_ENTRIES)),
            spans: Mutex::new(Vec::new()),
            runs_executed: registry.counter(
                "dircc_runs_executed_total",
                "Workbench replays executed (result-cache hits never reach the workbench).",
                &[],
            ),
            refs_replayed: registry.counter(
                "dircc_refs_replayed_total",
                "Trace references replayed across all workbench runs.",
                &[],
            ),
            store_hits: registry.counter(
                "dircc_trace_store_hits_total",
                "Generated-trace store hits (reused (trace, refs, seed) record sets).",
                &[],
            ),
            store_misses: registry.counter(
                "dircc_trace_store_misses_total",
                "Generated-trace store misses (fresh trace generation).",
                &[],
            ),
        }
    }

    /// Workbench replays executed so far (cache hits served by the
    /// daemon's result cache never reach the workbench, so this is the
    /// number the dedup tests pin).
    pub fn executed_runs(&self) -> u64 {
        self.runs_executed.get()
    }

    /// The shared generated trace for (trace, refs, seed) — one store
    /// per distinct config, so repeated jobs at different schemes reuse
    /// the generation/filter/intern work.
    fn store_for(&self, job: &JobSpec) -> Result<Arc<TraceStore>, HandlerError> {
        let mut profile = profile_by_name(&job.trace).map_err(HandlerError::bad_request)?;
        if let Some(n) = job.refs {
            profile = profile.with_total_refs(n);
        }
        let key = format!(
            "{}|{}|{}",
            profile.name.to_string().to_ascii_lowercase(),
            job.refs.map_or_else(|| "profile".to_string(), |n| n.to_string()),
            job.seed
        );
        let mut stores = self.stores.lock().expect("store cache");
        if let Some(store) = stores.get(&key) {
            self.store_hits.inc();
            return Ok(Arc::clone(store));
        }
        self.store_misses.inc();
        let store = Arc::new(TraceStore::new(vec![profile], job.seed));
        stores.insert(&key, Arc::clone(&store));
        Ok(store)
    }

    /// Resolves the job's scheme/filter/engine and runs it on a fresh
    /// workbench over the shared store, returning everything a
    /// response needs. Spans from the run are stamped with
    /// `request_id`, so `/spans` exports join against response headers
    /// and log lines.
    fn execute(
        &self,
        job: &JobSpec,
        window: Option<u64>,
        request_id: &str,
    ) -> Result<Executed, HandlerError> {
        let store = self.store_for(job)?;
        let n_caches = usize::from(store.profiles()[0].cpus);
        let kind = scheme_by_name(&job.scheme, n_caches).map_err(HandlerError::bad_request)?;
        let filter = filter_from_label(&job.filter)
            .ok_or_else(|| HandlerError::bad_request(format!("unknown filter {}", job.filter)))?;
        let engine = match job.engine {
            JobEngine::Mono => ReplayEngine::Mono,
            JobEngine::Dyn => ReplayEngine::Dyn,
        };
        let mut wb = Workbench::with_store(Arc::clone(&store))
            .with_shards(job.shards as usize)
            .with_engine(engine);
        if let Some(w) = window {
            wb = wb.with_window(w);
        }
        let counters = EventCounters::clone(&wb.counters(kind, 0, filter));
        let trace_name = store.profiles()[0].name.to_string();
        let scheme_name = dircc_core::build(kind, n_caches).name().to_string();
        self.runs_executed.add(wb.executed_runs() as u64);
        self.refs_replayed.add(counters.total());
        let mut spans = wb.span_log().spans();
        for span in &mut spans {
            if let Some(meta) = &mut span.meta {
                meta.request = Some(request_id.to_string());
            }
        }
        self.spans.lock().expect("span log").extend(spans);
        Ok(Executed { wb, kind, filter, counters, scheme_name, trace_name, n_caches })
    }
}

struct Executed {
    wb: Workbench,
    kind: ProtocolKind,
    filter: crate::workbench::TraceFilter,
    counters: EventCounters,
    scheme_name: String,
    trace_name: String,
    n_caches: usize,
}

impl dircc_serve::JobHandler for WorkbenchHandler {
    fn run(&self, job: &JobSpec, request_id: &str) -> Result<String, HandlerError> {
        let ex = self.execute(job, None, request_id)?;
        let eval =
            Evaluation::new(ex.scheme_name.clone(), ex.kind, ex.n_caches, ex.counters.clone());
        Ok(run_response_json(&eval, &ex.trace_name, job.refs, job.seed, &job.filter))
    }

    fn series(&self, job: &JobSpec, request_id: &str) -> Result<Vec<String>, HandlerError> {
        let window = match job.window {
            Some(w) => w,
            None => self.default_window_refs(job)?,
        };
        let ex = self.execute(job, Some(window), request_id)?;
        let series = ex.wb.time_series();
        let s = series
            .iter()
            .find(|s| s.kind == ex.kind && s.trace == 0 && s.filter == ex.filter)
            .ok_or_else(|| HandlerError::internal("windowed run left no time series"))?;
        let (model, cost_cfg) = (CostModel::pipelined(), CostConfig::PAPER);
        let label = filter_label(ex.filter);
        Ok(s.windows
            .iter()
            .map(|w| {
                let cpr = Evaluation::new(
                    ex.scheme_name.clone(),
                    ex.kind,
                    ex.n_caches,
                    w.counters.clone(),
                )
                .cycles_per_ref(&model, &cost_cfg);
                let mut line = window_jsonl_line(&ex.scheme_name, &ex.trace_name, label, w, cpr);
                line.push('\n');
                line
            })
            .collect())
    }

    fn spans(&self) -> String {
        chrome_trace(&self.spans.lock().expect("span log"))
    }
}

impl WorkbenchHandler {
    /// The `/series` auto window: 64 windows over the trace, matching
    /// `dircc profile`'s default.
    fn default_window_refs(&self, job: &JobSpec) -> Result<u64, HandlerError> {
        let mut profile = profile_by_name(&job.trace).map_err(HandlerError::bad_request)?;
        if let Some(n) = job.refs {
            profile = profile.with_total_refs(n);
        }
        Ok((profile.total_refs / 64).max(1))
    }
}

// ---------------------------------------------------------------------
// Load generator (`dircc bench --serve`)
// ---------------------------------------------------------------------

/// One distinct run config the load schedule cycles through.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    pub scheme: String,
    pub trace: String,
}

/// What `load_generate` measured. Latencies are accumulated in the
/// shared [`Histogram`] (microsecond observations, per-thread then
/// merged) — the same instrument the daemon's own `/metrics` exposes,
/// so bench-side and server-side percentiles use one definition of
/// quantile (bucket upper bound, ≤ 1/16 relative overestimate).
pub struct LoadReport {
    pub url: String,
    pub clients: usize,
    pub requests: usize,
    pub refs: u64,
    pub seed: u64,
    pub hits: u64,
    pub misses: u64,
    pub retries: u64,
    /// Failed requests, with their error text (empty on a clean run).
    pub errors: Vec<String>,
    pub wall: Duration,
    /// Merged per-request latency histogram, in microseconds.
    pub latency_us: Histogram,
    /// Each config exercised, with the counter digest its responses
    /// carried (every response for one config must agree).
    pub digests: Vec<(LoadConfig, String)>,
}

impl LoadReport {
    /// Successful requests measured.
    pub fn completed(&self) -> u64 {
        self.latency_us.count()
    }

    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        (self.completed() as f64) / self.wall.as_secs_f64()
    }

    /// The q-quantile (0..=1) latency in milliseconds, from the
    /// histogram.
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        self.latency_us.quantile(q) as f64 / 1e3
    }

    /// The slowest observed request in milliseconds (exact).
    pub fn latency_max_ms(&self) -> f64 {
        self.latency_us.max() as f64 / 1e3
    }
}

/// The p-th percentile (0..=100) of an ascending-sorted sample — the
/// exact reference the histogram-vs-sorted pin test compares against.
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// The mixed hit/miss schedule: the paper's four headline schemes
/// crossed with the three paper traces — request `i` takes config
/// `i % 12`, so the first cycle is all cache misses and every later
/// cycle is all hits.
pub fn load_pool(n_caches: usize) -> Vec<LoadConfig> {
    let kinds = [
        ProtocolKind::DirNb { pointers: 1 },
        ProtocolKind::Wti,
        ProtocolKind::Dir0B,
        ProtocolKind::Dragon,
    ];
    let traces = ["POPS", "THOR", "PERO"];
    kinds
        .iter()
        .flat_map(|&k| {
            let scheme = dircc_core::build(k, n_caches).name().to_string();
            traces.iter().map(move |t| LoadConfig { scheme: scheme.clone(), trace: t.to_string() })
        })
        .collect()
}

/// Extracts `counters.digest` from a `/run` response body.
fn digest_of(body: &str) -> Option<String> {
    let v = dircc_serve::json::parse(body.as_bytes()).ok()?;
    let counters = v.as_obj()?.get("counters")?.as_obj()?;
    counters.get("digest")?.as_str().map(str::to_string)
}

/// Hammers a running daemon with `requests` `/run` jobs from `clients`
/// concurrent threads on the [`load_pool`] schedule. 429s back off and
/// retry; any other failure is recorded as an error. Also cross-checks
/// that every response for one config carries the same counter digest.
pub fn load_generate(
    url: &str,
    clients: usize,
    requests: usize,
    refs: u64,
    seed: u64,
) -> LoadReport {
    let pool = load_pool(4);
    let clients = clients.max(1);

    struct Tally {
        latency_us: Histogram,
        hits: u64,
        misses: u64,
        retries: u64,
        errors: Vec<String>,
        digests: HashMap<usize, String>,
    }

    impl Default for Tally {
        fn default() -> Self {
            Tally {
                latency_us: Histogram::new(),
                hits: 0,
                misses: 0,
                retries: 0,
                errors: Vec::new(),
                digests: HashMap::new(),
            }
        }
    }

    let started = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let pool = &pool;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut t = Tally::default();
                    for i in (c..requests).step_by(clients) {
                        let config = &pool[i % pool.len()];
                        let body = format!(
                            "{{\"scheme\": \"{}\", \"trace\": \"{}\", \"refs\": {refs}, \
                             \"seed\": {seed}}}",
                            config.scheme, config.trace
                        );
                        let mut attempts = 0u32;
                        loop {
                            let t0 = Instant::now();
                            match client::request(url, "POST", "/run", Some(body.as_bytes())) {
                                Ok(resp) if resp.status == 200 => {
                                    t.latency_us.observe(
                                        t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                                    );
                                    match resp.header("x-cache") {
                                        Some("hit") => t.hits += 1,
                                        _ => t.misses += 1,
                                    }
                                    if let Some(digest) = digest_of(&resp.text()) {
                                        let seen = t
                                            .digests
                                            .entry(i % pool.len())
                                            .or_insert_with(|| digest.clone());
                                        if *seen != digest {
                                            t.errors.push(format!(
                                                "{}/{}: digest drift {seen} vs {digest}",
                                                config.scheme, config.trace
                                            ));
                                        }
                                    } else {
                                        t.errors.push(format!(
                                            "{}/{}: response has no counters.digest",
                                            config.scheme, config.trace
                                        ));
                                    }
                                    break;
                                }
                                Ok(resp) if resp.status == 429 && attempts < 100 => {
                                    attempts += 1;
                                    t.retries += 1;
                                    std::thread::sleep(Duration::from_millis(50));
                                }
                                Ok(resp) => {
                                    t.errors.push(format!(
                                        "{}/{}: HTTP {}: {}",
                                        config.scheme,
                                        config.trace,
                                        resp.status,
                                        resp.text().trim()
                                    ));
                                    break;
                                }
                                Err(e) => {
                                    t.errors
                                        .push(format!("{}/{}: {e}", config.scheme, config.trace));
                                    break;
                                }
                            }
                        }
                    }
                    t
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load client thread")).collect()
    });
    let wall = started.elapsed();

    let mut merged = Tally::default();
    let mut digest_by_config: HashMap<usize, String> = HashMap::new();
    for t in tallies {
        merged.latency_us.merge(&t.latency_us);
        merged.hits += t.hits;
        merged.misses += t.misses;
        merged.retries += t.retries;
        merged.errors.extend(t.errors);
        for (config, digest) in t.digests {
            match digest_by_config.get(&config) {
                Some(seen) if *seen != digest => {
                    let c = &pool[config];
                    merged.errors.push(format!(
                        "{}/{}: digest drift across clients: {seen} vs {digest}",
                        c.scheme, c.trace
                    ));
                }
                Some(_) => {}
                None => {
                    digest_by_config.insert(config, digest);
                }
            }
        }
    }

    let mut digests: Vec<(LoadConfig, String)> =
        digest_by_config.into_iter().map(|(i, digest)| (pool[i].clone(), digest)).collect();
    digests.sort_by(|a, b| (&a.0.scheme, &a.0.trace).cmp(&(&b.0.scheme, &b.0.trace)));

    LoadReport {
        url: url.to_string(),
        clients,
        requests,
        refs,
        seed,
        hits: merged.hits,
        misses: merged.misses,
        retries: merged.retries,
        errors: merged.errors,
        wall,
        latency_us: merged.latency_us,
        digests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_resolution_is_case_insensitive_and_total() {
        let kind = scheme_by_name("dir1nb", 4).expect("resolves");
        assert_eq!(kind, ProtocolKind::DirNb { pointers: 1 });
        assert_eq!(scheme_by_name("TANG", 4).expect("resolves"), ProtocolKind::Tang);
        let err = scheme_by_name("nonesuch", 4).expect_err("unknown");
        assert!(err.contains("one of:"), "{err}");
        assert!(err.contains("Dir0B"), "{err}");
    }

    #[test]
    fn load_pool_is_the_headline_cross_product() {
        let pool = load_pool(4);
        assert_eq!(pool.len(), 12);
        assert_eq!(pool[0].trace, "POPS");
        assert!(pool.iter().any(|c| c.scheme == "Dir0B" && c.trace == "PERO"));
    }

    #[test]
    fn percentiles_pick_from_the_sorted_sample() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 51.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn histogram_quantiles_track_exact_percentiles_within_bound() {
        // The satellite pin: bench --serve switched from sorting raw
        // samples to the shared log-linear histogram. The histogram
        // quantile returns its bucket's upper bound, so against the
        // exact sorted percentile it may only *over*state, by at most
        // one sub-bucket width (1/16 relative) plus rank-convention
        // noise between adjacent order statistics.
        let mut sorted: Vec<f64> = Vec::new();
        let h = Histogram::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x >> 40; // spread over [0, 2^24)
            h.observe(v);
            sorted.push(v as f64);
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.5, 0.9, 0.99] {
            let exact = percentile(&sorted, q * 100.0);
            let est = h.quantile(q) as f64;
            assert!(est >= exact * 0.999, "q={q}: histogram {est} understates exact {exact}");
            assert!(
                est <= exact * (1.0 + 1.0 / 16.0) + 1.0,
                "q={q}: histogram {est} overstates exact {exact} beyond the 1/16 bound"
            );
        }
        // count/sum/max are exact, not approximations.
        assert_eq!(h.count(), 5000);
        assert_eq!(h.max() as f64, *sorted.last().unwrap());
    }

    #[test]
    fn digest_extraction_reads_the_counters_object() {
        let body = r#"{"job": {}, "counters": {"total": 5, "digest": "00ff"}, "refs": 5}"#;
        assert_eq!(digest_of(body).as_deref(), Some("00ff"));
        assert_eq!(digest_of("not json"), None);
    }

    #[test]
    fn run_response_is_one_line_with_job_echo_counters_and_evaluation() {
        let eval = Evaluation::new(
            "Dir1NB".to_string(),
            ProtocolKind::DirNb { pointers: 1 },
            4,
            EventCounters::new(),
        );
        let json = run_response_json(&eval, "POPS", Some(1000), 1988, "full");
        assert!(json.ends_with('\n'));
        assert_eq!(json.lines().count(), 1);
        assert!(json.contains("\"scheme\": \"Dir1NB\""));
        assert!(json.contains("\"refs\": 1000"));
        assert!(json.contains("\"digest\":"));
        assert!(json.contains("\"cycles_per_ref\":"));
        let profile_scale = run_response_json(&eval, "POPS", None, 1988, "full");
        assert!(profile_scale.contains("\"refs\": null"), "{profile_scale}");
    }
}

//! # dircc-sim
//!
//! Trace-driven simulation harness reproducing the evaluation of
//! *"An Evaluation of Directory Schemes for Cache Coherence"* (Agarwal,
//! Simoni, Hennessy, Horowitz — ISCA 1988).
//!
//! * [`engine`] — replays traces through any
//!   [`Protocol`](dircc_core::Protocol), with an optional value-level
//!   coherence verifier;
//! * [`mono`] — the monomorphized structure-of-arrays fast path:
//!   per-scheme statically dispatched replay loops over precomputed
//!   `kind`/`cache_idx`/`block_id`/`first_ref` arrays, bit-identical to
//!   [`engine`] and severalfold faster;
//! * [`metrics`] — bus-cycles-per-reference and per-transaction metrics;
//! * [`workbench`] — the three synthetic paper traces plus memoized runs,
//!   with a [`Workbench::warm`](workbench::Workbench::warm) fan-out that
//!   fills the memo from worker threads, phase spans in a shared
//!   [`dircc_obs::SpanLog`], and optional windowed time series
//!   ([`Workbench::with_window`](workbench::Workbench::with_window));
//! * [`experiments`] — one runner per paper table, figure and study;
//! * [`par`] — the deterministic indexed parallel map the sweeps use;
//! * [`report`] — plain-text table/bar formatting.
//!
//! The `dircc` binary exposes each experiment as a subcommand.
//!
//! # Examples
//!
//! Replay a tiny migratory workload through `Dir0B` and price it:
//!
//! ```
//! use dircc_bus::{CostConfig, CostModel};
//! use dircc_core::{build, ProtocolKind};
//! use dircc_sim::engine::{run, RunConfig};
//! use dircc_sim::metrics::Evaluation;
//! use dircc_trace::gen::patterns;
//!
//! let mut p = build(ProtocolKind::Dir0B, 4);
//! let res = run(p.as_mut(), patterns::migratory(4, 100), &RunConfig::default())?;
//! let e = Evaluation::new(p.name(), p.kind(), 4, res.counters);
//! let cpr = e.cycles_per_ref(&CostModel::pipelined(), &CostConfig::PAPER);
//! assert!(cpr > 0.0);
//! # Ok::<(), String>(())
//! ```

pub mod busqueue;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod mono;
pub mod par;
pub mod report;
pub mod service;
pub mod workbench;

pub use engine::{
    run, run_chunked, run_chunked_with, run_indexed, run_indexed_with, run_sharded,
    run_sharded_spilled, run_sharded_with, run_with, shard_stream, spill_sharded, RunConfig,
    RunResult, SharingModel,
};
pub use metrics::Evaluation;
pub use mono::{run_indexed_mono, run_indexed_mono_with, run_sharded_mono, run_sharded_mono_with};
pub use par::{default_jobs, par_map_indexed};
pub use service::{
    load_generate, load_pool, percentile, profile_by_name, run_response_json, scheme_by_name,
    LoadReport, WorkbenchHandler,
};
pub use workbench::{
    filter_from_label, filter_label, ReplayEngine, RunSeries, RunTiming, TraceFilter, Workbench,
};

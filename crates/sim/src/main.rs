//! `dircc` — command-line experiment runner.
//!
//! Each subcommand regenerates one artifact of the ISCA 1988 paper from
//! the synthetic trace suite:
//!
//! ```text
//! dircc table1|table2|table3|table4|table5
//! dircc figure1|figure2|figure3|figure4|figure5
//! dircc sensitivity|spinlock|berkeley|scalability
//! dircc all                          # everything, in paper order
//! dircc gen --profile pops --out t.dcct   # write a binary trace
//! dircc stats --in t.dcct                 # Table 3 stats of a trace file
//! dircc bench [--smoke] [--out FILE]      # replay-throughput benchmark
//! ```
//!
//! Common flags: `--refs N` (references per trace; default = paper scale),
//! `--seed S` (default 1988), `--jobs N` (worker threads; default = the
//! machine's available parallelism). Results are independent of `--jobs`:
//! stdout is byte-identical for any thread count; per-run wall-clock
//! timings go to stderr.

use dircc_core::ProtocolKind;
use dircc_sim::experiments::{extensions, figures, network, studies, system, tables};
use dircc_sim::{default_jobs, TraceFilter, Workbench};
use dircc_trace::codec::{BinaryReader, BinaryWriter};
use dircc_trace::gen::{Generator, Profile};
use dircc_trace::sharing::SharingProfile;
use dircc_trace::stats::TraceStats;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

/// What a subcommand does with `--in`/`--out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Io {
    /// Pure experiment: any `--in`/`--out` is a usage error.
    None,
    /// Reads a trace file (`--in`).
    Reads,
    /// Writes a trace file (`--out`).
    Writes,
}

/// How a subcommand executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Printed from the shared [`Workbench`] via `run_experiment`.
    Workbench,
    /// Standalone sweep with its own trace store and default refs.
    Scaling,
    /// Standalone mesh-network sweep.
    Network,
    /// Standalone block-size sweep.
    BlockSize,
    /// Trace-file producer.
    Gen,
    /// Trace-file statistics.
    Stats,
    /// Trace-file sharing profile.
    Sharing,
    /// Every `in_all` experiment, in table order.
    All,
    /// Replay-throughput benchmark over the calibrated paper matrix.
    Bench,
}

struct CommandSpec {
    name: &'static str,
    kind: Kind,
    io: Io,
    /// Included in the `dircc all` sequence (in this table's order).
    in_all: bool,
}

/// The single source of truth for the CLI: usage, dispatch and the `all`
/// sequence are all derived from this table.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec { name: "table1", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table2", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table3", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table4", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table5", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure1", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure2", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure3", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure4", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure5", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "sensitivity", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "spinlock", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "berkeley", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "scalability", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "system", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "finitecache", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "footnote2", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "storage", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "scaling", kind: Kind::Scaling, io: Io::None, in_all: false },
    CommandSpec { name: "network", kind: Kind::Network, io: Io::None, in_all: false },
    CommandSpec { name: "blocksize", kind: Kind::BlockSize, io: Io::None, in_all: false },
    CommandSpec { name: "all", kind: Kind::All, io: Io::None, in_all: false },
    CommandSpec { name: "bench", kind: Kind::Bench, io: Io::Writes, in_all: false },
    CommandSpec { name: "gen", kind: Kind::Gen, io: Io::Writes, in_all: false },
    CommandSpec { name: "stats", kind: Kind::Stats, io: Io::Reads, in_all: false },
    CommandSpec { name: "sharing", kind: Kind::Sharing, io: Io::Reads, in_all: false },
];

fn spec_for(command: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().find(|c| c.name == command)
}

struct Args {
    command: String,
    refs: Option<u64>,
    seed: u64,
    jobs: usize,
    profile: String,
    out: Option<String>,
    input: Option<String>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        refs: None,
        seed: 1988,
        jobs: default_jobs(),
        profile: "pops".to_string(),
        out: None,
        input: None,
        smoke: false,
    };
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--refs" => {
                parsed.refs = Some(value("--refs")?.parse().map_err(|e| format!("--refs: {e}"))?)
            }
            "--seed" => {
                parsed.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--jobs" => {
                parsed.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if parsed.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--profile" => parsed.profile = value("--profile")?,
            "--out" => parsed.out = Some(value("--out")?),
            "--smoke" => parsed.smoke = true,
            "--in" => parsed.input = Some(value("--in")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    validate_io(&parsed)?;
    Ok(parsed)
}

/// Rejects `--in`/`--out` flags that contradict the subcommand's data
/// direction (e.g. `dircc gen --in t.dcct` used to silently write to the
/// `--in` path).
fn validate_io(args: &Args) -> Result<(), String> {
    let Some(spec) = spec_for(&args.command) else {
        return Ok(()); // unknown commands error later, with the usage text
    };
    if args.smoke && spec.name != "bench" {
        return Err(format!("--smoke only applies to bench, not {}", spec.name));
    }
    match spec.io {
        Io::None => {
            if args.out.is_some() || args.input.is_some() {
                return Err(format!(
                    "{} is an experiment command and takes no --in/--out",
                    spec.name
                ));
            }
        }
        Io::Reads => {
            if args.out.is_some() {
                return Err(format!("{} reads a trace; pass --in FILE, not --out", spec.name));
            }
        }
        Io::Writes => {
            if args.input.is_some() {
                return Err(format!("{} writes a file; pass --out FILE, not --in", spec.name));
            }
        }
    }
    Ok(())
}

fn usage() -> String {
    // Derived from COMMANDS so the list can never go stale.
    let mut lines = vec!["usage: dircc <command> [--refs N] [--seed S] [--jobs N] \
         [--profile pops|thor|pero|custom] [--out FILE | --in FILE] [--smoke]"
        .to_string()];
    let mut line = String::from("commands:");
    for c in COMMANDS {
        if line.len() + c.name.len() + 1 > 72 {
            lines.push(line);
            line = String::from("         ");
        }
        line.push(' ');
        line.push_str(c.name);
    }
    lines.push(line);
    lines.join("\n")
}

fn profile_by_name(name: &str) -> Result<Profile, String> {
    match name.to_ascii_lowercase().as_str() {
        "pops" => Ok(Profile::pops()),
        "thor" => Ok(Profile::thor()),
        "pero" => Ok(Profile::pero()),
        "custom" => Ok(Profile::custom()),
        other => Err(format!("unknown profile {other}")),
    }
}

fn workbench(args: &Args) -> Workbench {
    match args.refs {
        Some(n) => Workbench::paper_scaled(n, args.seed),
        None => Workbench::paper(args.seed),
    }
}

fn trace_path(args: &Args) -> String {
    args.out.clone().or_else(|| args.input.clone()).unwrap_or_else(|| "trace.dcct".to_string())
}

fn generate(args: &Args) -> Result<(), String> {
    let mut profile = profile_by_name(&args.profile)?;
    if let Some(n) = args.refs {
        profile = profile.with_total_refs(n);
    }
    let path = trace_path(args);
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = BinaryWriter::new(BufWriter::new(file));
    for r in Generator::new(profile, args.seed) {
        w.write(&r).map_err(|e| format!("write: {e}"))?;
    }
    let records = w.records_written();
    w.finish().map_err(|e| format!("finish: {e}"))?;
    println!("wrote {records} references to {path}");
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let path = trace_path(args);
    let file = std::fs::File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let reader = BinaryReader::new(BufReader::new(file)).map_err(|e| format!("header: {e}"))?;
    let mut s = TraceStats::new();
    for r in reader {
        s.observe(&r.map_err(|e| format!("read: {e}"))?);
    }
    println!("references : {}", s.total());
    println!("instr      : {} ({:.2}%)", s.instr(), 100.0 * s.instr_fraction());
    println!("data reads : {} ({:.2}%)", s.reads(), 100.0 * s.read_fraction());
    println!("data writes: {} ({:.2}%)", s.writes(), 100.0 * s.write_fraction());
    println!("system refs: {} ({:.2}%)", s.system(), 100.0 * s.system_fraction());
    println!(
        "lock spins : {} ({:.2}% of reads)",
        s.lock_spin_reads(),
        100.0 * s.spin_fraction_of_reads()
    );
    println!("data blocks: {}", s.distinct_data_blocks());
    println!("cpus       : {}   processes: {}", s.distinct_cpus(), s.distinct_processes());
    Ok(())
}

fn sharing(args: &Args) -> Result<(), String> {
    let path = trace_path(args);
    let file = std::fs::File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let reader = BinaryReader::new(BufReader::new(file)).map_err(|e| format!("header: {e}"))?;
    let mut s = SharingProfile::new();
    for r in reader {
        s.observe(&r.map_err(|e| format!("read: {e}"))?);
    }
    println!("data refs          : {}", s.data_refs());
    println!("data blocks        : {}", s.total_blocks());
    println!(
        "shared blocks      : {} ({:.2}%)",
        s.shared_blocks(),
        100.0 * s.shared_blocks() as f64 / s.total_blocks().max(1) as f64
    );
    println!("refs to shared     : {:.2}%", 100.0 * s.shared_ref_fraction());
    println!("writes to shared   : {:.2}%", 100.0 * s.shared_write_fraction());
    println!("mean sharers/shared: {:.2}", s.mean_sharers_of_shared());
    let hist = s.sharer_histogram(6);
    for (i, count) in hist.iter().enumerate() {
        let label = if i + 1 < hist.len() { format!("{}", i + 1) } else { format!("{}+", i + 1) };
        println!("  blocks with {label} sharer(s): {count}");
    }
    Ok(())
}

/// The (protocol, filter) runs a workbench command needs, for pre-warming
/// the memo in parallel. `None` means "cheap enough to run inline".
fn workload_for(command: &str, wb: &Workbench) -> Option<Vec<(ProtocolKind, TraceFilter)>> {
    match command {
        "all" => Some(wb.paper_workload()),
        "scalability" => {
            let n = wb.n_caches() as u32;
            let mut work = vec![(ProtocolKind::Dir0B, TraceFilter::Full)];
            work.extend((1..=n).map(|i| (ProtocolKind::DirNb { pointers: i }, TraceFilter::Full)));
            work.extend((1..n).map(|i| (ProtocolKind::DirB { pointers: i }, TraceFilter::Full)));
            work.push((ProtocolKind::CodedSet, TraceFilter::Full));
            Some(work)
        }
        _ => None,
    }
}

fn run_experiment(command: &str, wb: &Workbench) -> Result<String, String> {
    Ok(match command {
        "table1" => tables::table1().to_string(),
        "table2" => tables::table2().to_string(),
        "table3" => tables::table3(wb).to_string(),
        "table4" => tables::table4(wb).to_string(),
        "table5" => tables::table5(wb).to_string(),
        "figure1" => figures::figure1(wb).to_string(),
        "figure2" => figures::figure2(wb).to_string(),
        "figure3" => figures::figure3(wb).to_string(),
        "figure4" => figures::figure4(wb).to_string(),
        "figure5" => figures::figure5(wb).to_string(),
        "sensitivity" => studies::sensitivity(wb).to_string(),
        "spinlock" => studies::spinlock(wb).to_string(),
        "berkeley" => studies::berkeley(wb).to_string(),
        "scalability" => studies::scalability(wb).to_string(),
        "finitecache" => extensions::finite_cache(wb).to_string(),
        "footnote2" => extensions::footnote2(wb).to_string(),
        "system" => system::system(wb).to_string(),
        "storage" => network::storage_table().to_string(),
        other => return Err(format!("unknown command {other}\n{}", usage())),
    })
}

/// Runs one workbench command (or, for `all`, every `in_all` command in
/// table order), pre-warming the memo over `args.jobs` threads. The
/// timing summary goes to stderr so stdout stays byte-identical across
/// `--jobs` values.
fn run_workbench_command(args: &Args, all: bool) -> Result<(), String> {
    let wb = workbench(args);
    if let Some(work) = workload_for(&args.command, &wb) {
        wb.warm(&work, args.jobs);
    }
    let result = if all {
        let mut err = None;
        for c in COMMANDS.iter().filter(|c| c.in_all) {
            match run_experiment(c.name, &wb) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        err.map_or(Ok(()), Err)
    } else {
        run_experiment(&args.command, &wb).map(|s| println!("{s}"))
    };
    let summary = wb.timing_summary();
    if !summary.is_empty() {
        eprint!("{summary}");
    }
    result
}

/// `dircc bench`: replays the calibrated paper matrix (the same
/// (protocol, filter) x trace work list `dircc all` warms), then writes a
/// machine-readable throughput report. Replay wall-clock sums CPU time
/// across workers, so `--jobs 1` is the number to quote. `--smoke` runs a
/// tiny matrix for CI.
fn bench(args: &Args) -> Result<(), String> {
    let wb = match (args.refs, args.smoke) {
        (Some(n), _) => Workbench::paper_scaled(n, args.seed),
        (None, true) => Workbench::paper_scaled(20_000, args.seed),
        (None, false) => Workbench::paper(args.seed),
    };
    let executed = wb.warm(&wb.paper_workload(), args.jobs);
    let timings = wb.timings();

    use std::fmt::Write as _;
    let mut json = String::from("{\n  \"runs\": [\n");
    let (mut total_refs, mut total_wall) = (0u64, std::time::Duration::ZERO);
    for (i, t) in timings.iter().enumerate() {
        let filter = match t.filter {
            TraceFilter::Full => "full",
            TraceFilter::ExcludeLockSpins => "no-spins",
        };
        let _ = write!(
            json,
            "    {{\"scheme\": \"{}\", \"trace\": \"{}\", \"filter\": \"{}\", \
             \"refs\": {}, \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0}}}",
            t.scheme,
            t.trace,
            filter,
            t.refs,
            t.wall.as_secs_f64() * 1e3,
            t.refs_per_sec()
        );
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
        total_refs += t.refs;
        total_wall += t.wall;
    }
    let total_rps =
        if total_wall.is_zero() { 0.0 } else { total_refs as f64 / total_wall.as_secs_f64() };
    let _ = write!(
        json,
        "  ],\n  \"totals\": {{\"runs\": {}, \"refs\": {}, \"wall_ms\": {:.3}, \
         \"refs_per_sec\": {:.0}}}\n}}\n",
        executed,
        total_refs,
        total_wall.as_secs_f64() * 1e3,
        total_rps
    );

    let path = args.out.clone().unwrap_or_else(|| "BENCH_replay.json".to_string());
    std::fs::write(&path, &json).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "bench: {executed} runs, {total_refs} refs, {:.1} ms replay (cpu), \
         {:.1}M refs/sec -> {path}",
        total_wall.as_secs_f64() * 1e3,
        total_rps / 1e6
    );
    let summary = wb.timing_summary();
    if !summary.is_empty() {
        eprint!("{summary}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = spec_for(&args.command) else {
        eprintln!("unknown command {}\n{}", args.command, usage());
        return ExitCode::FAILURE;
    };
    let result = match spec.kind {
        Kind::Gen => generate(&args),
        Kind::Stats => stats(&args),
        Kind::Sharing => sharing(&args),
        Kind::Scaling => {
            println!("{}", extensions::scaling(args.refs.unwrap_or(300_000), args.seed, args.jobs));
            Ok(())
        }
        Kind::Network => {
            println!(
                "{}",
                network::network_study(args.refs.unwrap_or(300_000), args.seed, args.jobs)
            );
            Ok(())
        }
        Kind::BlockSize => {
            println!(
                "{}",
                extensions::block_size(args.refs.unwrap_or(400_000), args.seed, args.jobs)
            );
            Ok(())
        }
        Kind::Workbench => run_workbench_command(&args, false),
        Kind::All => run_workbench_command(&args, true),
        Kind::Bench => bench(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

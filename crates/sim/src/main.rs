//! `dircc` — command-line experiment runner.
//!
//! Each subcommand regenerates one artifact of the ISCA 1988 paper from
//! the synthetic trace suite:
//!
//! ```text
//! dircc table1|table2|table3|table4|table5
//! dircc figure1|figure2|figure3|figure4|figure5
//! dircc sensitivity|spinlock|berkeley|scalability
//! dircc all                          # everything, in paper order
//! dircc gen --profile pops --out t.dcct   # write a binary trace
//! dircc stats --in t.dcct                 # Table 3 stats of a trace file
//! ```
//!
//! Common flags: `--refs N` (references per trace; default = paper scale),
//! `--seed S` (default 1988).

use dircc_sim::experiments::{extensions, figures, network, studies, system, tables};
use dircc_sim::Workbench;
use dircc_trace::codec::{BinaryReader, BinaryWriter};
use dircc_trace::gen::{Generator, Profile};
use dircc_trace::sharing::SharingProfile;
use dircc_trace::stats::TraceStats;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

struct Args {
    command: String,
    refs: Option<u64>,
    seed: u64,
    profile: String,
    path: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        refs: None,
        seed: 1988,
        profile: "pops".to_string(),
        path: "trace.dcct".to_string(),
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--refs" => parsed.refs = Some(value("--refs")?.parse().map_err(|e| format!("--refs: {e}"))?),
            "--seed" => parsed.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--profile" => parsed.profile = value("--profile")?,
            "--out" | "--in" => parsed.path = value("--out/--in")?,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: dircc <command> [--refs N] [--seed S] [--profile pops|thor|pero|custom] [--out FILE | --in FILE]\n\
     commands: table1 table2 table3 table4 table5 figure1 figure2 figure3 figure4 figure5\n\
     \u{20}         sensitivity spinlock berkeley scalability finitecache scaling blocksize\n\
     \u{20}         all gen stats"
        .to_string()
}

fn profile_by_name(name: &str) -> Result<Profile, String> {
    match name.to_ascii_lowercase().as_str() {
        "pops" => Ok(Profile::pops()),
        "thor" => Ok(Profile::thor()),
        "pero" => Ok(Profile::pero()),
        "custom" => Ok(Profile::custom()),
        other => Err(format!("unknown profile {other}")),
    }
}

fn workbench(args: &Args) -> Workbench {
    match args.refs {
        Some(n) => Workbench::paper_scaled(n, args.seed),
        None => Workbench::paper(args.seed),
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let mut profile = profile_by_name(&args.profile)?;
    if let Some(n) = args.refs {
        profile = profile.with_total_refs(n);
    }
    let file = std::fs::File::create(&args.path).map_err(|e| format!("{}: {e}", args.path))?;
    let mut w = BinaryWriter::new(BufWriter::new(file));
    for r in Generator::new(profile, args.seed) {
        w.write(&r).map_err(|e| format!("write: {e}"))?;
    }
    let records = w.records_written();
    w.finish().map_err(|e| format!("finish: {e}"))?;
    println!("wrote {records} references to {}", args.path);
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let file = std::fs::File::open(&args.path).map_err(|e| format!("{}: {e}", args.path))?;
    let reader = BinaryReader::new(BufReader::new(file)).map_err(|e| format!("header: {e}"))?;
    let mut s = TraceStats::new();
    for r in reader {
        s.observe(&r.map_err(|e| format!("read: {e}"))?);
    }
    println!("references : {}", s.total());
    println!("instr      : {} ({:.2}%)", s.instr(), 100.0 * s.instr_fraction());
    println!("data reads : {} ({:.2}%)", s.reads(), 100.0 * s.read_fraction());
    println!("data writes: {} ({:.2}%)", s.writes(), 100.0 * s.write_fraction());
    println!("system refs: {} ({:.2}%)", s.system(), 100.0 * s.system_fraction());
    println!("lock spins : {} ({:.2}% of reads)", s.lock_spin_reads(), 100.0 * s.spin_fraction_of_reads());
    println!("data blocks: {}", s.distinct_data_blocks());
    println!("cpus       : {}   processes: {}", s.distinct_cpus(), s.distinct_processes());
    Ok(())
}

fn sharing(args: &Args) -> Result<(), String> {
    let file = std::fs::File::open(&args.path).map_err(|e| format!("{}: {e}", args.path))?;
    let reader = BinaryReader::new(BufReader::new(file)).map_err(|e| format!("header: {e}"))?;
    let mut s = SharingProfile::new();
    for r in reader {
        s.observe(&r.map_err(|e| format!("read: {e}"))?);
    }
    println!("data refs          : {}", s.data_refs());
    println!("data blocks        : {}", s.total_blocks());
    println!("shared blocks      : {} ({:.2}%)", s.shared_blocks(),
        100.0 * s.shared_blocks() as f64 / s.total_blocks().max(1) as f64);
    println!("refs to shared     : {:.2}%", 100.0 * s.shared_ref_fraction());
    println!("writes to shared   : {:.2}%", 100.0 * s.shared_write_fraction());
    println!("mean sharers/shared: {:.2}", s.mean_sharers_of_shared());
    let hist = s.sharer_histogram(6);
    for (i, count) in hist.iter().enumerate() {
        let label = if i + 1 < hist.len() { format!("{}", i + 1) } else { format!("{}+", i + 1) };
        println!("  blocks with {label} sharer(s): {count}");
    }
    Ok(())
}

fn run_experiment(command: &str, wb: &Workbench) -> Result<String, String> {
    Ok(match command {
        "table1" => tables::table1().to_string(),
        "table2" => tables::table2().to_string(),
        "table3" => tables::table3(wb).to_string(),
        "table4" => tables::table4(wb).to_string(),
        "table5" => tables::table5(wb).to_string(),
        "figure1" => figures::figure1(wb).to_string(),
        "figure2" => figures::figure2(wb).to_string(),
        "figure3" => figures::figure3(wb).to_string(),
        "figure4" => figures::figure4(wb).to_string(),
        "figure5" => figures::figure5(wb).to_string(),
        "sensitivity" => studies::sensitivity(wb).to_string(),
        "spinlock" => studies::spinlock(wb).to_string(),
        "berkeley" => studies::berkeley(wb).to_string(),
        "scalability" => studies::scalability(wb).to_string(),
        "finitecache" => extensions::finite_cache(wb).to_string(),
        "footnote2" => extensions::footnote2(wb).to_string(),
        "system" => system::system(wb).to_string(),
        "storage" => network::storage_table().to_string(),
        other => return Err(format!("unknown command {other}\n{}", usage())),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "gen" => generate(&args),
        "stats" => stats(&args),
        "sharing" => sharing(&args),
        "scaling" => {
            println!("{}", extensions::scaling(args.refs.unwrap_or(300_000), args.seed));
            Ok(())
        }
        "network" => {
            println!("{}", network::network_study(args.refs.unwrap_or(300_000), args.seed));
            Ok(())
        }
        "blocksize" => {
            println!("{}", extensions::block_size(args.refs.unwrap_or(400_000), args.seed));
            Ok(())
        }
        "all" => {
            let wb = workbench(&args);
            let all = [
                "table1", "table2", "table3", "table4", "table5", "figure1", "figure2",
                "figure3", "figure4", "figure5", "sensitivity", "spinlock", "berkeley",
                "scalability", "system", "finitecache", "storage",
            ];
            let mut err = None;
            for cmd in all {
                match run_experiment(cmd, &wb) {
                    Ok(s) => println!("{s}"),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            err.map_or(Ok(()), Err)
        }
        cmd => {
            let wb = workbench(&args);
            run_experiment(cmd, &wb).map(|s| println!("{s}"))
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

//! `dircc` — command-line experiment runner.
//!
//! Each subcommand regenerates one artifact of the ISCA 1988 paper from
//! the synthetic trace suite:
//!
//! ```text
//! dircc table1|table2|table3|table4|table5
//! dircc figure1|figure2|figure3|figure4|figure5
//! dircc sensitivity|spinlock|berkeley|scalability
//! dircc all                          # everything, in paper order
//! dircc gen --profile pops --out t.dcct   # write a v1 (flat) binary trace
//! dircc record --profile pops --out t.dcct  # write a chunked v2 trace
//! dircc replay --in t.dcct [--scheme S] [--shards N] [--verify]
//! dircc stats --in t.dcct                 # Table 3 stats of a trace file
//! dircc bench [--smoke] [--out FILE]      # replay-throughput benchmark
//! dircc benchcmp [--smoke] [--in FILE]    # bench-regression gate
//! dircc check [--smoke] [--cpus N] [--blocks M] [--depth D] [--scheme S]
//! dircc profile <experiment> [--window K] [--out FILE] [--spans FILE]
//! dircc serve [--addr HOST:PORT] [--workers N] [--cache-entries N] [--queue N]
//! dircc submit --serve URL --scheme S [--profile P] [--op run|series|health|metrics|spans|shutdown]
//! dircc bench --serve URL [--clients N] [--requests M]   # HTTP load generator
//! dircc top --serve URL [--interval S] [--once]   # live /metrics dashboard
//! ```
//!
//! `dircc check` exhaustively explores every protocol's state space up to
//! the given bounds (see the `dircc-check` crate) and prints a per-scheme
//! PASS/FAIL table; any violation prints a minimal counterexample and
//! fails the process. `dircc benchcmp` re-runs the bench matrix and fails
//! if any deterministic per-run counter drifts from a checked-in baseline.
//! `dircc profile` replays an experiment's work list with windowed
//! counter sampling: it writes a JSONL time series (one line per window),
//! a Chrome trace-event span profile of every workbench phase, and prints
//! a per-run cycles-per-reference sparkline.
//!
//! `dircc record` writes the chunked, delta-compressed v2 trace format
//! (`--chunk N` records per chunk); `dircc replay` streams a recorded
//! trace (either format, auto-detected) through the engine with memory
//! bounded by the chunk size — with `--shards N` the stream is first
//! spilled into per-shard temp files, so even the sharded replay never
//! holds the whole trace in RAM. Without `--in`, `replay` generates the
//! `--profile` trace in memory and replays the classic indexed path;
//! stdout is byte-identical between the two modes.
//!
//! Common flags: `--refs N` (references per trace; default = paper scale),
//! `--seed S` (default 1988), `--jobs N` (worker threads; default = the
//! machine's available parallelism), `--shards N` (block shards per
//! replay; default 1). Results are independent of `--jobs` and
//! `--shards`: stdout is byte-identical for any combination (sharded
//! counters are bit-identical by construction; see the engine's
//! `run_sharded`); the per-run wall-clock timing summary goes to stderr,
//! and only with `--verbose`. `dircc profile` rejects `--shards` —
//! windowed sampling observes the global reference stream, which pins the
//! replay to one shard.

use dircc_bus::{CostConfig, CostModel};
use dircc_check::{check_protocol, CheckConfig};
use dircc_core::ProtocolKind;
use dircc_obs::{
    chrome_trace, parse_exposition, samples_sum, window_jsonl_line, MetricsRegistry, RunMeta,
    Sample,
};
use dircc_serve::{client, JobHandler, ServeConfig, Server};
use dircc_sim::experiments::{extensions, figures, network, studies, system, tables};
use dircc_sim::{
    default_jobs, filter_from_label, filter_label, load_generate, profile_by_name, report,
    run_chunked, run_indexed, run_response_json, run_sharded, run_sharded_spilled, shard_stream,
    spill_sharded, Evaluation, ReplayEngine, RunConfig, RunResult, TraceFilter, Workbench,
    WorkbenchHandler,
};
use dircc_trace::chunk::{DEFAULT_CHUNK_RECORDS, MAX_CHUNK_RECORDS};
use dircc_trace::codec::BinaryWriter;
use dircc_trace::gen::{Generator, Profile};
use dircc_trace::sharing::SharingProfile;
use dircc_trace::stats::TraceStats;
use dircc_trace::store::TraceStore;
use dircc_trace::{open_trace, BlockInterner, ChunkedWriter, Records, TraceRecord};
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// What a subcommand does with `--in`/`--out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Io {
    /// Pure experiment: any `--in`/`--out` is a usage error.
    None,
    /// Reads a trace file (`--in`).
    Reads,
    /// Writes a trace file (`--out`).
    Writes,
}

/// How a subcommand executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Printed from the shared [`Workbench`] via `run_experiment`.
    Workbench,
    /// Standalone sweep with its own trace store and default refs.
    Scaling,
    /// Standalone mesh-network sweep.
    Network,
    /// Standalone block-size sweep.
    BlockSize,
    /// Trace-file producer.
    Gen,
    /// Chunked v2 trace-file producer.
    Record,
    /// Streaming replay of a trace file (or an in-memory profile).
    Replay,
    /// Trace-file statistics.
    Stats,
    /// Trace-file sharing profile.
    Sharing,
    /// Every `in_all` experiment, in table order.
    All,
    /// Replay-throughput benchmark over the calibrated paper matrix.
    Bench,
    /// Regression gate: fresh bench counters vs a checked-in baseline.
    BenchCmp,
    /// Bounded exhaustive model check of every protocol.
    Check,
    /// Windowed time-series + span profile of one experiment's work list.
    Profile,
    /// Long-running HTTP simulation service (see the `dircc-serve` crate).
    Serve,
    /// One-shot HTTP client for a running `dircc serve` daemon.
    Submit,
    /// Polling `/metrics` terminal dashboard for a running daemon.
    Top,
}

struct CommandSpec {
    name: &'static str,
    kind: Kind,
    io: Io,
    /// Included in the `dircc all` sequence (in this table's order).
    in_all: bool,
}

/// The single source of truth for the CLI: usage, dispatch and the `all`
/// sequence are all derived from this table.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec { name: "table1", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table2", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table3", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table4", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "table5", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure1", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure2", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure3", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure4", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "figure5", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "sensitivity", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "spinlock", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "berkeley", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "scalability", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "system", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "finitecache", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "footnote2", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "storage", kind: Kind::Workbench, io: Io::None, in_all: true },
    CommandSpec { name: "scaling", kind: Kind::Scaling, io: Io::None, in_all: false },
    CommandSpec { name: "network", kind: Kind::Network, io: Io::None, in_all: false },
    CommandSpec { name: "blocksize", kind: Kind::BlockSize, io: Io::None, in_all: false },
    CommandSpec { name: "all", kind: Kind::All, io: Io::None, in_all: false },
    CommandSpec { name: "bench", kind: Kind::Bench, io: Io::Writes, in_all: false },
    CommandSpec { name: "benchcmp", kind: Kind::BenchCmp, io: Io::Reads, in_all: false },
    CommandSpec { name: "check", kind: Kind::Check, io: Io::None, in_all: false },
    CommandSpec { name: "profile", kind: Kind::Profile, io: Io::Writes, in_all: false },
    CommandSpec { name: "serve", kind: Kind::Serve, io: Io::None, in_all: false },
    CommandSpec { name: "submit", kind: Kind::Submit, io: Io::None, in_all: false },
    CommandSpec { name: "top", kind: Kind::Top, io: Io::None, in_all: false },
    CommandSpec { name: "gen", kind: Kind::Gen, io: Io::Writes, in_all: false },
    CommandSpec { name: "record", kind: Kind::Record, io: Io::Writes, in_all: false },
    CommandSpec { name: "replay", kind: Kind::Replay, io: Io::Reads, in_all: false },
    CommandSpec { name: "stats", kind: Kind::Stats, io: Io::Reads, in_all: false },
    CommandSpec { name: "sharing", kind: Kind::Sharing, io: Io::Reads, in_all: false },
];

fn spec_for(command: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().find(|c| c.name == command)
}

struct Args {
    command: String,
    /// Positional argument (the experiment `dircc profile` targets).
    target: Option<String>,
    refs: Option<u64>,
    seed: u64,
    jobs: usize,
    shards: usize,
    profile: String,
    out: Option<String>,
    input: Option<String>,
    smoke: bool,
    verbose: bool,
    window: Option<u64>,
    spans_out: Option<String>,
    cpus: Option<usize>,
    blocks: Option<usize>,
    depth: Option<usize>,
    scheme: Option<String>,
    chunk: Option<usize>,
    verify: bool,
    repeat: Option<u64>,
    engine: Option<ReplayEngine>,
    json: bool,
    addr: Option<String>,
    workers: Option<usize>,
    cache_entries: Option<usize>,
    queue: Option<usize>,
    serve_url: Option<String>,
    op: Option<String>,
    clients: Option<usize>,
    requests: Option<usize>,
    filter: Option<String>,
    expect_cache: Option<String>,
    log_json: bool,
    once: bool,
    interval: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        target: None,
        refs: None,
        seed: 1988,
        jobs: default_jobs(),
        shards: 1,
        profile: "pops".to_string(),
        out: None,
        input: None,
        smoke: false,
        verbose: false,
        window: None,
        spans_out: None,
        cpus: None,
        blocks: None,
        depth: None,
        scheme: None,
        chunk: None,
        verify: false,
        repeat: None,
        engine: None,
        json: false,
        addr: None,
        workers: None,
        cache_entries: None,
        queue: None,
        serve_url: None,
        op: None,
        clients: None,
        requests: None,
        filter: None,
        expect_cache: None,
        log_json: false,
        once: false,
        interval: None,
    };
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--refs" => {
                parsed.refs = Some(value("--refs")?.parse().map_err(|e| format!("--refs: {e}"))?)
            }
            "--seed" => {
                parsed.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--jobs" => {
                parsed.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if parsed.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--shards" => {
                parsed.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if parsed.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--profile" => parsed.profile = value("--profile")?,
            "--out" => parsed.out = Some(value("--out")?),
            "--smoke" => parsed.smoke = true,
            "--verbose" => parsed.verbose = true,
            "--window" => {
                parsed.window =
                    Some(value("--window")?.parse().map_err(|e| format!("--window: {e}"))?);
                if parsed.window == Some(0) {
                    return Err("--window must be at least 1".to_string());
                }
            }
            "--spans" => parsed.spans_out = Some(value("--spans")?),
            "--cpus" => {
                parsed.cpus = Some(value("--cpus")?.parse().map_err(|e| format!("--cpus: {e}"))?)
            }
            "--blocks" => {
                parsed.blocks =
                    Some(value("--blocks")?.parse().map_err(|e| format!("--blocks: {e}"))?)
            }
            "--depth" => {
                parsed.depth = Some(value("--depth")?.parse().map_err(|e| format!("--depth: {e}"))?)
            }
            "--scheme" => parsed.scheme = Some(value("--scheme")?),
            "--chunk" => {
                let n: usize = value("--chunk")?.parse().map_err(|e| format!("--chunk: {e}"))?;
                if !(1..=MAX_CHUNK_RECORDS).contains(&n) {
                    return Err(format!("--chunk must be in 1..={MAX_CHUNK_RECORDS}"));
                }
                parsed.chunk = Some(n);
            }
            "--verify" => parsed.verify = true,
            "--repeat" => {
                let n: u64 = value("--repeat")?.parse().map_err(|e| format!("--repeat: {e}"))?;
                if n == 0 {
                    return Err("--repeat must be at least 1".to_string());
                }
                parsed.repeat = Some(n);
            }
            "--engine" => {
                let label = value("--engine")?;
                parsed.engine = Some(
                    ReplayEngine::from_label(&label)
                        .ok_or_else(|| format!("--engine must be dyn or mono, not {label}"))?,
                );
            }
            "--json" => parsed.json = true,
            "--addr" => parsed.addr = Some(value("--addr")?),
            "--workers" => {
                parsed.workers =
                    Some(value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?);
                if parsed.workers == Some(0) {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--cache-entries" => {
                parsed.cache_entries = Some(
                    value("--cache-entries")?
                        .parse()
                        .map_err(|e| format!("--cache-entries: {e}"))?,
                );
                if parsed.cache_entries == Some(0) {
                    return Err("--cache-entries must be at least 1".to_string());
                }
            }
            "--queue" => {
                parsed.queue =
                    Some(value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?);
                if parsed.queue == Some(0) {
                    return Err("--queue must be at least 1".to_string());
                }
            }
            "--serve" => parsed.serve_url = Some(value("--serve")?),
            "--op" => {
                let op = value("--op")?;
                if !matches!(
                    op.as_str(),
                    "run" | "series" | "health" | "metrics" | "spans" | "shutdown"
                ) {
                    return Err(format!(
                        "--op must be run, series, health, metrics, spans or shutdown, not {op}"
                    ));
                }
                parsed.op = Some(op);
            }
            "--clients" => {
                parsed.clients =
                    Some(value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?);
                if parsed.clients == Some(0) {
                    return Err("--clients must be at least 1".to_string());
                }
            }
            "--requests" => {
                parsed.requests =
                    Some(value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?);
                if parsed.requests == Some(0) {
                    return Err("--requests must be at least 1".to_string());
                }
            }
            "--filter" => {
                let label = value("--filter")?;
                if filter_from_label(&label).is_none() {
                    return Err(format!("--filter must be full or no-spins, not {label}"));
                }
                parsed.filter = Some(label);
            }
            "--expect-cache" => {
                let want = value("--expect-cache")?;
                if !matches!(want.as_str(), "hit" | "miss") {
                    return Err(format!("--expect-cache must be hit or miss, not {want}"));
                }
                parsed.expect_cache = Some(want);
            }
            "--log-json" => parsed.log_json = true,
            "--once" => parsed.once = true,
            "--interval" => {
                let s: f64 =
                    value("--interval")?.parse().map_err(|e| format!("--interval: {e}"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err("--interval must be a positive number of seconds".to_string());
                }
                parsed.interval = Some(s);
            }
            "--in" => parsed.input = Some(value("--in")?),
            other if !other.starts_with('-') && parsed.target.is_none() => {
                parsed.target = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    validate_io(&parsed)?;
    Ok(parsed)
}

/// Rejects `--in`/`--out` flags that contradict the subcommand's data
/// direction (e.g. `dircc gen --in t.dcct` used to silently write to the
/// `--in` path).
fn validate_io(args: &Args) -> Result<(), String> {
    let Some(spec) = spec_for(&args.command) else {
        return Ok(()); // unknown commands error later, with the usage text
    };
    if args.smoke && !matches!(spec.name, "bench" | "benchcmp" | "check" | "profile") {
        return Err(format!(
            "--smoke only applies to bench, benchcmp, check and profile, not {}",
            spec.name
        ));
    }
    if args.window.is_some() && !matches!(spec.name, "profile" | "submit") {
        return Err(format!("--window only applies to profile and submit, not {}", spec.name));
    }
    if spec.name != "profile" {
        if args.spans_out.is_some() {
            return Err(format!("--spans only applies to profile, not {}", spec.name));
        }
        if args.target.is_some() {
            return Err(format!(
                "{} takes no positional argument (got {})",
                spec.name,
                args.target.as_deref().unwrap_or("")
            ));
        }
    }
    if args.cpus.is_some() && !matches!(spec.name, "check" | "replay") {
        return Err(format!("--cpus only applies to check and replay, not {}", spec.name));
    }
    if args.scheme.is_some() && !matches!(spec.name, "check" | "replay" | "submit") {
        return Err(format!(
            "--scheme only applies to check, replay and submit, not {}",
            spec.name
        ));
    }
    if spec.name != "check" && (args.blocks.is_some() || args.depth.is_some()) {
        return Err(format!("--blocks/--depth only apply to check, not {}", spec.name));
    }
    if args.chunk.is_some() && spec.name != "record" {
        return Err(format!("--chunk only applies to record, not {}", spec.name));
    }
    if args.verify && spec.name != "replay" {
        return Err(format!("--verify only applies to replay, not {}", spec.name));
    }
    if args.repeat.is_some() && spec.name != "bench" {
        return Err(format!("--repeat only applies to bench, not {}", spec.name));
    }
    if args.engine.is_some() && !matches!(spec.name, "bench" | "benchcmp" | "submit") {
        return Err(format!(
            "--engine only applies to bench, benchcmp and submit, not {}",
            spec.name
        ));
    }
    if args.json && spec.name != "replay" {
        return Err(format!("--json only applies to replay, not {}", spec.name));
    }
    if (args.addr.is_some()
        || args.workers.is_some()
        || args.cache_entries.is_some()
        || args.queue.is_some()
        || args.log_json)
        && spec.name != "serve"
    {
        return Err(format!(
            "--addr/--workers/--cache-entries/--queue/--log-json only apply to serve, not {}",
            spec.name
        ));
    }
    if args.serve_url.is_some() && !matches!(spec.name, "submit" | "bench" | "top") {
        return Err(format!("--serve only applies to submit, bench and top, not {}", spec.name));
    }
    if (args.once || args.interval.is_some()) && spec.name != "top" {
        return Err(format!("--once/--interval only apply to top, not {}", spec.name));
    }
    if (args.op.is_some() || args.expect_cache.is_some() || args.filter.is_some())
        && spec.name != "submit"
    {
        return Err(format!(
            "--op/--filter/--expect-cache only apply to submit, not {}",
            spec.name
        ));
    }
    if (args.clients.is_some() || args.requests.is_some()) && spec.name != "bench" {
        return Err(format!("--clients/--requests only apply to bench, not {}", spec.name));
    }
    if args.shards > 1 {
        if spec.name == "profile" {
            return Err("profile rejects --shards: windowed sampling observes the global \
                 reference stream, which pins the replay to one shard"
                .to_string());
        }
        let sharded_ok =
            matches!(spec.kind, Kind::Workbench | Kind::All | Kind::Bench | Kind::BenchCmp)
                || matches!(spec.name, "check" | "replay" | "submit");
        if !sharded_ok {
            return Err(format!(
                "--shards only applies to workbench experiments, all, bench, benchcmp, check \
                 and replay, not {}",
                spec.name
            ));
        }
    }
    match spec.io {
        Io::None => {
            if args.out.is_some() || args.input.is_some() {
                return Err(format!(
                    "{} is an experiment command and takes no --in/--out",
                    spec.name
                ));
            }
        }
        Io::Reads => {
            if args.out.is_some() {
                return Err(format!("{} reads a trace; pass --in FILE, not --out", spec.name));
            }
        }
        Io::Writes => {
            if args.input.is_some() {
                return Err(format!("{} writes a file; pass --out FILE, not --in", spec.name));
            }
        }
    }
    Ok(())
}

fn usage() -> String {
    // Derived from COMMANDS so the list can never go stale.
    let mut lines = vec!["usage: dircc <command> [target] [--refs N] [--seed S] [--jobs N] \
         [--shards N] [--profile pops|thor|pero|custom] [--out FILE | --in FILE] [--smoke] \
         [--verbose] [--window K] [--spans FILE] [--cpus N] [--blocks M] [--depth D] \
         [--scheme S] [--chunk N] [--verify] [--repeat N] [--engine dyn|mono] [--json] \
         [--addr HOST:PORT] [--workers N] [--cache-entries N] [--queue N] [--serve URL] \
         [--op run|series|health|metrics|spans|shutdown] [--filter full|no-spins] \
         [--expect-cache hit|miss] [--clients N] [--requests M] [--log-json] \
         [--interval S] [--once]"
        .to_string()];
    let mut line = String::from("commands:");
    for c in COMMANDS {
        if line.len() + c.name.len() + 1 > 72 {
            lines.push(line);
            line = String::from("         ");
        }
        line.push(' ');
        line.push_str(c.name);
    }
    lines.push(line);
    lines.join("\n")
}

fn workbench(args: &Args) -> Workbench {
    match args.refs {
        Some(n) => Workbench::paper_scaled(n, args.seed),
        None => Workbench::paper(args.seed),
    }
    .with_shards(args.shards)
}

fn trace_path(args: &Args) -> String {
    args.out.clone().or_else(|| args.input.clone()).unwrap_or_else(|| "trace.dcct".to_string())
}

fn generate(args: &Args) -> Result<(), String> {
    let mut profile = profile_by_name(&args.profile)?;
    if let Some(n) = args.refs {
        profile = profile.with_total_refs(n);
    }
    let path = trace_path(args);
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = BinaryWriter::new(BufWriter::new(file));
    for r in Generator::new(profile, args.seed) {
        w.write(&r).map_err(|e| format!("write: {e}"))?;
    }
    let records = w.records_written();
    w.finish().map_err(|e| format!("finish: {e}"))?;
    println!("wrote {records} references to {path}");
    Ok(())
}

/// `dircc record`: writes the chunked, delta-compressed v2 trace format.
/// The flat v1 writer stays available as `dircc gen`.
fn record(args: &Args) -> Result<(), String> {
    let mut profile = profile_by_name(&args.profile)?;
    if let Some(n) = args.refs {
        profile = profile.with_total_refs(n);
    }
    let chunk = args.chunk.unwrap_or(DEFAULT_CHUNK_RECORDS);
    let path = trace_path(args);
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = ChunkedWriter::with_chunk_records(BufWriter::new(file), chunk);
    for r in Generator::new(profile, args.seed) {
        w.write(&r).map_err(|e| format!("write: {e}"))?;
    }
    let records = w.records_written();
    let chunks = records.div_ceil(chunk as u64);
    w.finish().map_err(|e| format!("finish: {e}"))?;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("wrote {records} references to {path} ({chunks} chunk(s), v2, {bytes} bytes)");
    Ok(())
}

/// The protocols `dircc replay` drives: the paper's four headline schemes
/// by default, or one chosen by `--scheme` from the full checked set.
fn replay_kinds(args: &Args, cpus: usize) -> Result<Vec<ProtocolKind>, String> {
    let Some(want) = &args.scheme else {
        return Ok(vec![
            ProtocolKind::DirNb { pointers: 1 },
            ProtocolKind::Wti,
            ProtocolKind::Dir0B,
            ProtocolKind::Dragon,
        ]);
    };
    let want_lc = want.to_ascii_lowercase();
    let kinds: Vec<ProtocolKind> = dircc_check::default_kinds()
        .iter()
        .copied()
        .filter(|k| dircc_core::build(*k, cpus).name().to_ascii_lowercase() == want_lc)
        .collect();
    if kinds.is_empty() {
        let names: Vec<String> = dircc_check::default_kinds()
            .iter()
            .map(|k| dircc_core::build(*k, cpus).name().to_string())
            .collect();
        return Err(format!("unknown scheme {want}; one of: {}", names.join(" ")));
    }
    Ok(kinds)
}

/// Streams a trace file through every requested scheme. With one shard
/// the file is re-read per scheme via [`run_chunked`] (memory bounded by
/// the chunk size); with more, one pass spills per-shard sub-streams to
/// temp files and [`run_sharded_spilled`] replays those, so even sharded
/// replay never holds the whole trace in RAM.
fn replay_file(
    path: &str,
    kinds: &[ProtocolKind],
    cpus: usize,
    cfg: &RunConfig,
    shards: usize,
) -> Result<Vec<RunResult>, String> {
    let open = || -> Result<_, String> {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        open_trace(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
    };
    if shards <= 1 {
        return kinds
            .iter()
            .map(|&kind| {
                let mut source = open()?;
                let mut p = dircc_core::build(kind, cpus);
                run_chunked(p.as_mut(), &mut source, cfg)
            })
            .collect();
    }
    let dir = std::env::temp_dir().join(format!("dircc_replay_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let spilled = spill_sharded(&mut open()?, shards, cfg, &dir)
        .map_err(|e| format!("spill to {}: {e}", dir.display()))?;
    let results =
        kinds.iter().map(|&kind| run_sharded_spilled(kind, cpus, &spilled, cfg)).collect();
    drop(spilled); // removes the per-shard spill files
    std::fs::remove_dir_all(&dir).ok();
    results
}

/// Replays the `--profile` trace fully in memory (the classic indexed
/// path) — the reference `dircc replay --in` must match byte for byte.
fn replay_memory(
    args: &Args,
    kinds: &[ProtocolKind],
    cpus: usize,
    cfg: &RunConfig,
) -> Result<Vec<RunResult>, String> {
    let mut profile = profile_by_name(&args.profile)?;
    if let Some(n) = args.refs {
        profile = profile.with_total_refs(n);
    }
    let records: Vec<TraceRecord> = Generator::new(profile, args.seed).collect();
    let interner = BlockInterner::from_records(records.iter(), cfg.geometry);
    let dense = interner.dense_stream(&records);
    let num_blocks = interner.num_blocks();
    if args.shards <= 1 {
        kinds
            .iter()
            .map(|&kind| {
                let mut p = dircc_core::build(kind, cpus);
                run_indexed(p.as_mut(), &records, &dense, num_blocks, cfg)
            })
            .collect()
    } else {
        let sharded = shard_stream(&records, &dense, num_blocks, args.shards, cfg);
        kinds.iter().map(|&kind| run_sharded(kind, cpus, &sharded, cfg)).collect()
    }
}

/// `dircc replay`: streams a recorded trace (`--in`, v1 or v2
/// auto-detected) or an in-memory `--profile` trace through the paper's
/// headline schemes (or one `--scheme`), printing the deterministic
/// per-scheme counter row and pipelined cycles-per-reference. stdout is
/// byte-identical between the file and in-memory modes and across
/// `--shards`; ingest timing goes to stderr, only with `--verbose`.
fn replay(args: &Args) -> Result<(), String> {
    let cpus = args.cpus.unwrap_or(4);
    if cpus == 0 || cpus > 64 {
        return Err("--cpus must be in 1..=64".to_string());
    }
    if args.json {
        if args.input.is_some() {
            return Err("--json renders the serve /run response schema, which is defined \
                 over the in-memory --profile traces; drop --in"
                .to_string());
        }
        if args.verify {
            return Err("--json and --verify are mutually exclusive".to_string());
        }
    }
    let kinds = replay_kinds(args, cpus)?;
    let cfg = RunConfig { verify: args.verify, ..RunConfig::default().with_process_sharing() };
    let started = std::time::Instant::now();
    let results = match &args.input {
        Some(path) => replay_file(path, &kinds, cpus, &cfg, args.shards)?,
        None => replay_memory(args, &kinds, cpus, &cfg)?,
    };
    let wall = started.elapsed();

    if args.json {
        // The serve daemon's /run response schema, one line per scheme —
        // CI diffs this byte-for-byte against what the daemon returns.
        let trace_name = profile_by_name(&args.profile)?.name.to_string();
        for (&kind, res) in kinds.iter().zip(&results) {
            let name = dircc_core::build(kind, cpus).name().to_string();
            let eval = Evaluation::new(name, kind, cpus, res.counters.clone());
            print!("{}", run_response_json(&eval, &trace_name, args.refs, args.seed, "full"));
        }
        return Ok(());
    }

    let (model, cost_cfg) = (CostModel::pipelined(), CostConfig::PAPER);
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9} {:>9}   cyc/ref",
        "scheme", "refs", "rd-miss", "wr-miss", "wr-hit", "wr-back"
    );
    let mut violations = 0usize;
    for (&kind, res) in kinds.iter().zip(&results) {
        let name = dircc_core::build(kind, cpus).name().to_string();
        let c = &res.counters;
        let cpr =
            Evaluation::new(name.clone(), kind, cpus, c.clone()).cycles_per_ref(&model, &cost_cfg);
        println!(
            "{name:<12} {:>10} {:>9} {:>9} {:>9} {:>9}   {cpr:.4}",
            res.refs,
            c.rm(),
            c.wm(),
            c.wh(),
            c.write_backs()
        );
        violations += res.violations.len();
        for v in &res.violations {
            println!("  violation: {name}: {v}");
        }
    }
    if args.verify {
        if violations == 0 {
            println!("verify: {} scheme(s), no violations", kinds.len());
        } else {
            return Err(format!("replay: {violations} coherence violation(s)"));
        }
    }
    if args.verbose {
        if let Some(path) = &args.input {
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            // One full decode per scheme at one shard; one spill pass otherwise.
            let passes = if args.shards <= 1 { kinds.len() as u64 } else { 1 };
            let mb = (bytes * passes) as f64 / 1e6;
            let secs = wall.as_secs_f64().max(1e-9);
            eprintln!(
                "replay: {mb:.1} MB ingested in {:.1} ms ({:.1} MB/s incl. replay)",
                wall.as_secs_f64() * 1e3,
                mb / secs
            );
        } else {
            eprintln!("replay: in-memory, {:.1} ms", wall.as_secs_f64() * 1e3);
        }
    }
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let path = trace_path(args);
    let file = std::fs::File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let reader = open_trace(BufReader::new(file)).map_err(|e| format!("header: {e}"))?;
    let mut s = TraceStats::new();
    for r in Records::new(reader) {
        s.observe(&r.map_err(|e| format!("read: {e}"))?);
    }
    println!("references : {}", s.total());
    println!("instr      : {} ({:.2}%)", s.instr(), 100.0 * s.instr_fraction());
    println!("data reads : {} ({:.2}%)", s.reads(), 100.0 * s.read_fraction());
    println!("data writes: {} ({:.2}%)", s.writes(), 100.0 * s.write_fraction());
    println!("system refs: {} ({:.2}%)", s.system(), 100.0 * s.system_fraction());
    println!(
        "lock spins : {} ({:.2}% of reads)",
        s.lock_spin_reads(),
        100.0 * s.spin_fraction_of_reads()
    );
    println!("data blocks: {}", s.distinct_data_blocks());
    println!("cpus       : {}   processes: {}", s.distinct_cpus(), s.distinct_processes());
    Ok(())
}

fn sharing(args: &Args) -> Result<(), String> {
    let path = trace_path(args);
    let file = std::fs::File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let reader = open_trace(BufReader::new(file)).map_err(|e| format!("header: {e}"))?;
    let mut s = SharingProfile::new();
    for r in Records::new(reader) {
        s.observe(&r.map_err(|e| format!("read: {e}"))?);
    }
    println!("data refs          : {}", s.data_refs());
    println!("data blocks        : {}", s.total_blocks());
    println!(
        "shared blocks      : {} ({:.2}%)",
        s.shared_blocks(),
        100.0 * s.shared_blocks() as f64 / s.total_blocks().max(1) as f64
    );
    println!("refs to shared     : {:.2}%", 100.0 * s.shared_ref_fraction());
    println!("writes to shared   : {:.2}%", 100.0 * s.shared_write_fraction());
    println!("mean sharers/shared: {:.2}", s.mean_sharers_of_shared());
    let hist = s.sharer_histogram(6);
    for (i, count) in hist.iter().enumerate() {
        let label = if i + 1 < hist.len() { format!("{}", i + 1) } else { format!("{}+", i + 1) };
        println!("  blocks with {label} sharer(s): {count}");
    }
    Ok(())
}

/// The (protocol, filter) runs a workbench command needs, for pre-warming
/// the memo in parallel. `None` means "cheap enough to run inline".
fn workload_for(command: &str, wb: &Workbench) -> Option<Vec<(ProtocolKind, TraceFilter)>> {
    match command {
        "all" => Some(wb.paper_workload()),
        "scalability" => {
            let n = wb.n_caches() as u32;
            let mut work = vec![(ProtocolKind::Dir0B, TraceFilter::Full)];
            work.extend((1..=n).map(|i| (ProtocolKind::DirNb { pointers: i }, TraceFilter::Full)));
            work.extend((1..n).map(|i| (ProtocolKind::DirB { pointers: i }, TraceFilter::Full)));
            work.push((ProtocolKind::CodedSet, TraceFilter::Full));
            Some(work)
        }
        _ => None,
    }
}

fn run_experiment(command: &str, wb: &Workbench) -> Result<String, String> {
    Ok(match command {
        "table1" => tables::table1().to_string(),
        "table2" => tables::table2().to_string(),
        "table3" => tables::table3(wb).to_string(),
        "table4" => tables::table4(wb).to_string(),
        "table5" => tables::table5(wb).to_string(),
        "figure1" => figures::figure1(wb).to_string(),
        "figure2" => figures::figure2(wb).to_string(),
        "figure3" => figures::figure3(wb).to_string(),
        "figure4" => figures::figure4(wb).to_string(),
        "figure5" => figures::figure5(wb).to_string(),
        "sensitivity" => studies::sensitivity(wb).to_string(),
        "spinlock" => studies::spinlock(wb).to_string(),
        "berkeley" => studies::berkeley(wb).to_string(),
        "scalability" => studies::scalability(wb).to_string(),
        "finitecache" => extensions::finite_cache(wb).to_string(),
        "footnote2" => extensions::footnote2(wb).to_string(),
        "system" => system::system(wb).to_string(),
        "storage" => network::storage_table().to_string(),
        other => return Err(format!("unknown command {other}\n{}", usage())),
    })
}

/// Runs one workbench command (or, for `all`, every `in_all` command in
/// table order), pre-warming the memo over `args.jobs` threads. With
/// `--verbose` the timing summary goes to stderr, so stdout stays
/// byte-identical across `--jobs` values either way.
fn run_workbench_command(args: &Args, all: bool) -> Result<(), String> {
    let wb = workbench(args);
    if let Some(work) = workload_for(&args.command, &wb) {
        wb.warm(&work, args.jobs);
    }
    let result = if all {
        let mut err = None;
        for c in COMMANDS.iter().filter(|c| c.in_all) {
            match run_experiment(c.name, &wb) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        err.map_or(Ok(()), Err)
    } else {
        run_experiment(&args.command, &wb).map(|s| println!("{s}"))
    };
    if args.verbose {
        let summary = wb.timing_summary();
        if !summary.is_empty() {
            eprint!("{summary}");
        }
    }
    result
}

/// The paper-suite profiles at the scale the bench flags select.
fn bench_profiles(args: &Args) -> Vec<Profile> {
    let scale = match (args.refs, args.smoke) {
        (Some(n), _) => Some(n),
        (None, true) => Some(20_000),
        (None, false) => None,
    };
    match scale {
        Some(n) => Profile::paper_suite().into_iter().map(|p| p.with_total_refs(n)).collect(),
        None => Profile::paper_suite(),
    }
}

/// Counter digests of every bench-matrix run, keyed by the (scheme,
/// trace, filter) labels the timing rows carry. Counters are memoized, so
/// this replays nothing on a warmed workbench. The digest is
/// engine-invariant (mono and dyn are bit-identical), which is exactly
/// what lets `benchcmp` pin one engine's fresh counters against a
/// baseline written by the other.
fn run_digests(wb: &Workbench) -> std::collections::HashMap<(String, String, String), u64> {
    let mut map = std::collections::HashMap::new();
    let names = wb.trace_names();
    for (kind, filter) in wb.paper_workload() {
        let scheme = kind.display_name(wb.n_caches());
        for (trace, name) in names.iter().enumerate() {
            let digest = wb.counters(kind, trace, filter).digest();
            map.insert((scheme.clone(), name.clone(), filter_label(filter).to_string()), digest);
        }
    }
    map
}

/// `dircc bench`: replays the calibrated paper matrix (the same
/// (protocol, filter) x trace work list `dircc all` warms) `--repeat`
/// times (default 3) and writes a machine-readable throughput report with
/// the **median** wall per run. Every run row records the `--shards`
/// count and `--engine` it replayed with plus the run's counter digest
/// (counters are shard-, repeat- and engine-invariant; only wall-clock
/// changes). Repeats share one trace store, so generation/interning is
/// paid once while every repeat's replay starts from a cold run memo.
/// Replay wall-clock sums CPU time across workers, so `--jobs 1` is the
/// number to quote; with `--shards N` each run's wall is the outer replay
/// span (shard threads overlap inside it). `--smoke` runs a tiny matrix
/// for CI.
fn bench(args: &Args) -> Result<(), String> {
    if args.serve_url.is_some() {
        return bench_serve(args);
    }
    let engine = args.engine.unwrap_or_default();
    let repeat = args.repeat.unwrap_or(3);
    let store = std::sync::Arc::new(TraceStore::new(bench_profiles(args), args.seed));
    let mut repeats: Vec<Vec<dircc_sim::RunTiming>> = Vec::new();
    let mut executed = 0usize;
    let mut warm_wb = None;
    for _ in 0..repeat {
        let wb = Workbench::with_store(std::sync::Arc::clone(&store))
            .with_shards(args.shards)
            .with_engine(engine);
        executed = wb.warm(&wb.paper_workload(), args.jobs);
        repeats.push(wb.timings());
        warm_wb = Some(wb);
    }
    let wb = warm_wb.expect("--repeat is at least 1");
    let digests = run_digests(&wb);

    // Median wall per run across repeats (lower middle for even counts),
    // ordered by the first repeat's completion order.
    let timings: Vec<dircc_sim::RunTiming> = repeats[0]
        .iter()
        .map(|t| {
            let key = (t.scheme.clone(), t.trace.clone(), t.filter);
            let mut walls: Vec<std::time::Duration> = repeats
                .iter()
                .filter_map(|rep| {
                    rep.iter()
                        .find(|r| {
                            (r.scheme.as_str(), r.trace.as_str(), r.filter)
                                == (key.0.as_str(), key.1.as_str(), key.2)
                        })
                        .map(|r| r.wall)
                })
                .collect();
            walls.sort();
            dircc_sim::RunTiming { wall: walls[(walls.len() - 1) / 2], ..t.clone() }
        })
        .collect();

    use std::fmt::Write as _;
    let mut json = String::from("{\n  \"runs\": [\n");
    let (mut total_refs, mut total_wall) = (0u64, std::time::Duration::ZERO);
    for (i, t) in timings.iter().enumerate() {
        let filter = filter_label(t.filter);
        let digest = digests
            .get(&(t.scheme.clone(), t.trace.clone(), filter.to_string()))
            .ok_or_else(|| format!("bench: no digest for {}/{}/{filter}", t.scheme, t.trace))?;
        let _ = write!(
            json,
            "    {{\"scheme\": \"{}\", \"trace\": \"{}\", \"filter\": \"{}\", \
             \"shards\": {}, \"engine\": \"{}\", \"digest\": \"{:016x}\", \"refs\": {}, \
             \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0}}}",
            t.scheme,
            t.trace,
            filter,
            args.shards,
            engine.label(),
            digest,
            t.refs,
            t.wall.as_secs_f64() * 1e3,
            t.refs_per_sec()
        );
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
        total_refs += t.refs;
        total_wall += t.wall;
    }
    // Streaming-ingest benchmark: encode each trace to a v2 temp file,
    // stream it back through Dir0B with `run_chunked`, and report decode +
    // replay throughput against the on-disk size. (trace, refs, bytes) are
    // deterministic and pinned by `benchcmp`; the throughput fields are
    // informational.
    json.push_str("  ],\n  \"ingest\": [\n");
    let dir = std::env::temp_dir().join(format!("dircc_bench_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let n_profiles = wb.profiles().len();
    for (i, profile) in wb.profiles().to_vec().into_iter().enumerate() {
        let name = profile.name.to_string();
        let path = dir.join(format!("{name}.dcct"));
        let file = std::fs::File::create(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut w = ChunkedWriter::new(BufWriter::new(file));
        for r in Generator::new(profile, args.seed) {
            w.write(&r).map_err(|e| format!("ingest write: {e}"))?;
        }
        let refs = w.records_written();
        w.finish().map_err(|e| format!("ingest finish: {e}"))?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let t0 = std::time::Instant::now();
        let file = std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut source =
            open_trace(BufReader::new(file)).map_err(|e| format!("ingest open: {e}"))?;
        let mut p = dircc_core::build(ProtocolKind::Dir0B, wb.n_caches());
        let cfg = RunConfig::default().with_process_sharing();
        let res = run_chunked(p.as_mut(), &mut source, &cfg)
            .map_err(|e| format!("ingest replay: {e}"))?;
        let ingest_wall = t0.elapsed();
        if res.refs != refs {
            return Err(format!("ingest: {name}: wrote {refs} refs, replayed {}", res.refs));
        }
        let mb_per_sec = bytes as f64 / 1e6 / ingest_wall.as_secs_f64().max(1e-9);
        let _ = write!(
            json,
            "    {{\"trace\": \"{name}\", \"refs\": {refs}, \"bytes\": {bytes}, \
             \"wall_ms\": {:.3}, \"mb_per_sec\": {mb_per_sec:.1}}}",
            ingest_wall.as_secs_f64() * 1e3
        );
        json.push_str(if i + 1 < n_profiles { ",\n" } else { "\n" });
    }
    std::fs::remove_dir_all(&dir).ok();

    let total_rps =
        if total_wall.is_zero() { 0.0 } else { total_refs as f64 / total_wall.as_secs_f64() };
    let _ = write!(
        json,
        "  ],\n  \"totals\": {{\"runs\": {}, \"shards\": {}, \"engine\": \"{}\", \
         \"repeat\": {}, \"refs\": {}, \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0}}}\n}}\n",
        executed,
        args.shards,
        engine.label(),
        repeat,
        total_refs,
        total_wall.as_secs_f64() * 1e3,
        total_rps
    );

    let path = args.out.clone().unwrap_or_else(|| "BENCH_replay.json".to_string());
    write_output(&path, &json)?;
    println!(
        "bench: {executed} runs x {repeat} repeat(s), {} engine, {total_refs} refs, \
         {:.1} ms median replay (cpu), {:.1}M refs/sec -> {path}",
        engine.label(),
        total_wall.as_secs_f64() * 1e3,
        total_rps / 1e6
    );
    if args.verbose {
        let summary = wb.timing_summary();
        if !summary.is_empty() {
            eprint!("{summary}");
        }
    }
    Ok(())
}

/// `dircc serve`: binds the HTTP simulation daemon and blocks until a
/// `POST /shutdown` drains it. The listen line goes to stdout (and is
/// flushed) before the accept loop starts, so scripts can wait for it.
fn serve_cmd(args: &Args) -> Result<(), String> {
    let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:4888".to_string());
    let config = ServeConfig {
        workers: args.workers.unwrap_or_else(default_jobs),
        cache_entries: args.cache_entries.unwrap_or(64),
        queue_depth: args.queue.unwrap_or(64),
        log_json: args.log_json,
        ..ServeConfig::default()
    };
    // One registry shared by the HTTP layer and the workbench handler,
    // so `/metrics` exposes both on a single page.
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let handler = std::sync::Arc::new(WorkbenchHandler::with_registry(&registry));
    let server = Server::bind_with_registry(
        &addr,
        config,
        handler.clone() as std::sync::Arc<dyn JobHandler>,
        registry,
    )
    .map_err(|e| format!("bind {addr}: {e}"))?;
    println!("dircc serve: listening on http://{}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let stats = server.run();
    println!(
        "dircc serve: drained after {} request(s) ({} cache hit(s), {} miss(es), \
         {} workbench run(s))",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        handler.executed_runs()
    );
    Ok(())
}

/// A client-side request ID: `tag-<pid>-<subsec nanos>`, all printable
/// ASCII, well under the daemon's 64-byte sanity cap.
fn mint_request_id(tag: &str) -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("{tag}-{:08x}-{nanos:08x}", std::process::id())
}

/// The `/run`/`/series` job body a `dircc submit` builds from its flags.
fn submit_job_json(args: &Args) -> Result<String, String> {
    use std::fmt::Write as _;
    let scheme = args.scheme.as_ref().ok_or("submit needs --scheme (e.g. --scheme Dir1NB)")?;
    let mut body = format!(
        "{{\"scheme\": \"{}\", \"trace\": \"{}\", \"seed\": {}",
        dircc_obs::escape(scheme),
        dircc_obs::escape(&args.profile),
        args.seed
    );
    if let Some(n) = args.refs {
        let _ = write!(body, ", \"refs\": {n}");
    }
    if let Some(filter) = &args.filter {
        let _ = write!(body, ", \"filter\": \"{filter}\"");
    }
    if args.shards > 1 {
        let _ = write!(body, ", \"shards\": {}", args.shards);
    }
    if let Some(engine) = args.engine {
        let _ = write!(body, ", \"engine\": \"{}\"", engine.label());
    }
    if let Some(window) = args.window {
        let _ = write!(body, ", \"window\": {window}");
    }
    body.push('}');
    Ok(body)
}

/// `dircc submit`: one request against a running daemon. The response
/// body goes to stdout verbatim (it is already JSON/JSONL), so
/// `submit --op run > got.json` diffs directly against
/// `replay --json > want.json`. `--expect-cache hit|miss` turns the
/// response's `X-Cache` header into an exit-code assertion for CI.
fn submit_cmd(args: &Args) -> Result<(), String> {
    let url = args
        .serve_url
        .as_ref()
        .ok_or("submit needs --serve URL (e.g. --serve http://127.0.0.1:4888)")?;
    let op = args.op.as_deref().unwrap_or("run");
    // Mint a client-side request ID and send it along; the daemon echoes
    // it on the response, stamps it into its logs and (for `/run`) into
    // the span meta, so scripts can join all three. Printed to stderr so
    // stdout stays verbatim response body.
    let request_id = mint_request_id("submit");
    eprintln!("dircc submit: request-id {request_id}");
    let headers = [("x-request-id", request_id.as_str())];
    let resp = match op {
        "health" => client::request_with_headers(url, "GET", "/health", &headers, None),
        "metrics" => client::request_with_headers(url, "GET", "/metrics", &headers, None),
        "spans" => client::request_with_headers(url, "GET", "/spans", &headers, None),
        "shutdown" => client::request_with_headers(url, "POST", "/shutdown", &headers, Some(b"{}")),
        "run" | "series" => {
            let body = submit_job_json(args)?;
            let path = if op == "run" { "/run" } else { "/series" };
            client::request_with_headers(url, "POST", path, &headers, Some(body.as_bytes()))
        }
        other => {
            return Err(format!(
                "--op must be run, series, health, metrics, spans or shutdown, not {other}"
            ))
        }
    }
    .map_err(|e| format!("{url}: {e}"))?;
    if resp.status != 200 {
        return Err(format!("{url}: HTTP {}: {}", resp.status, resp.text().trim()));
    }
    if let Some(want) = &args.expect_cache {
        let got = resp.header("x-cache").unwrap_or("(absent)");
        if got != want {
            return Err(format!("expected X-Cache: {want}, server answered X-Cache: {got}"));
        }
    }
    print!("{}", resp.text());
    Ok(())
}

/// `dircc bench --serve URL`: the HTTP load generator. Drives a mixed
/// hit/miss schedule (the 4 headline schemes x 3 paper traces, so the
/// first cycle misses and later cycles hit) from `--clients` threads,
/// asserts every response's counter digest is consistent per config, and
/// writes per-request latency percentiles to `BENCH_serve.json`.
fn bench_serve(args: &Args) -> Result<(), String> {
    let url = args.serve_url.clone().expect("bench_serve called with --serve");
    if args.repeat.is_some() || args.engine.is_some() || args.shards > 1 || args.smoke {
        return Err("bench --serve takes --clients/--requests/--refs/--seed; \
             --repeat/--engine/--shards/--smoke configure the local replay bench"
            .to_string());
    }
    let clients = args.clients.unwrap_or(8);
    let requests = args.requests.unwrap_or(2000);
    let refs = args.refs.unwrap_or(20_000);
    let report = load_generate(&url, clients, requests, refs, args.seed);

    // Quantiles come from the same log-bucketed histogram the daemon
    // uses for `/metrics` (merged across client threads), so the client
    // and server sides of a bench agree on percentile math.
    let (p50, p90, p99) = (
        report.latency_quantile_ms(0.50),
        report.latency_quantile_ms(0.90),
        report.latency_quantile_ms(0.99),
    );
    let max = report.latency_max_ms();
    let completed = report.completed();

    use std::fmt::Write as _;
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"serve\": {{\"url\": \"{}\", \"clients\": {clients}, \"requests\": {requests}, \
         \"refs\": {refs}, \"seed\": {}}},",
        dircc_obs::escape(&url),
        args.seed
    );
    let _ = writeln!(
        json,
        "  \"results\": {{\"completed\": {completed}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"retries\": {}, \"errors\": {}}},",
        report.hits,
        report.misses,
        report.retries,
        report.errors.len()
    );
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{\"p50\": {p50:.3}, \"p90\": {p90:.3}, \"p99\": {p99:.3}, \
         \"max\": {max:.3}}},"
    );
    let _ = write!(
        json,
        "  \"wall_ms\": {:.3},\n  \"throughput_rps\": {:.1},\n",
        report.wall.as_secs_f64() * 1e3,
        report.throughput_rps()
    );
    json.push_str("  \"configs\": [\n");
    let n_configs = report.digests.len();
    for (i, (config, digest)) in report.digests.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scheme\": \"{}\", \"trace\": \"{}\", \"digest\": \"{digest}\"}}",
            config.scheme, config.trace
        );
        json.push_str(if i + 1 < n_configs { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = args.out.clone().unwrap_or_else(|| "BENCH_serve.json".to_string());
    write_output(&path, &json)?;
    println!(
        "bench --serve: {completed}/{requests} request(s) x {clients} client(s), \
         {} hit(s), {} miss(es), {} retried 429(s), {} error(s)",
        report.hits,
        report.misses,
        report.retries,
        report.errors.len()
    );
    println!(
        "  latency p50 {p50:.2} ms  p90 {p90:.2} ms  p99 {p99:.2} ms  max {max:.2} ms  \
         throughput {:.0} req/s -> {path}",
        report.throughput_rps()
    );
    if !report.errors.is_empty() {
        for e in report.errors.iter().take(10) {
            eprintln!("bench --serve: error: {e}");
        }
        return Err(format!("bench --serve: {} failed request(s)", report.errors.len()));
    }
    Ok(())
}

/// One `/metrics` scrape distilled to the numbers the dashboard shows.
struct TopSnapshot {
    at: Instant,
    requests: f64,
    errors: f64,
    refused: f64,
    queue: f64,
    inflight: f64,
    uptime: f64,
    hits: f64,
    misses: f64,
    evictions: f64,
    coalesced: f64,
    runs: f64,
    refs: f64,
    /// Cumulative `(le µs, count)` buckets of the `/run` latency
    /// histogram, ascending; quantiles between two snapshots come from
    /// the bucket-count deltas.
    run_buckets: Vec<(f64, f64)>,
}

impl TopSnapshot {
    fn take(samples: &[Sample]) -> TopSnapshot {
        let sum = |name: &str| samples_sum(samples, name, &[]);
        let cache = |event: &str| {
            samples_sum(samples, "dircc_result_cache_events_total", &[("event", event)])
        };
        let mut run_buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|s| {
                s.name == "dircc_http_request_duration_us_bucket"
                    && s.label("route") == Some("/run")
            })
            .map(|s| {
                let le = match s.label("le") {
                    Some("+Inf") => f64::INFINITY,
                    Some(v) => v.parse().unwrap_or(f64::INFINITY),
                    None => f64::INFINITY,
                };
                (le, s.value)
            })
            .collect();
        run_buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        TopSnapshot {
            at: Instant::now(),
            requests: sum("dircc_http_requests_total"),
            errors: sum("dircc_http_errors_total"),
            refused: sum("dircc_http_refused_total"),
            queue: sum("dircc_queue_depth"),
            inflight: sum("dircc_inflight_requests"),
            uptime: sum("dircc_uptime_seconds"),
            hits: cache("hit"),
            misses: cache("miss"),
            evictions: cache("eviction"),
            coalesced: cache("coalesced"),
            runs: sum("dircc_runs_executed_total"),
            refs: sum("dircc_refs_replayed_total"),
            run_buckets,
        }
    }

    /// The q-th quantile (µs) of `/run` latencies observed since `prev`
    /// (pass an all-zero baseline for since-start quantiles). `None`
    /// when no request completed in the interval.
    fn run_quantile_since(&self, prev: Option<&TopSnapshot>, q: f64) -> Option<f64> {
        let prev_at = |le: f64| {
            prev.and_then(|p| p.run_buckets.iter().find(|(l, _)| *l == le)).map_or(0.0, |(_, n)| *n)
        };
        // Cumulative minus cumulative is the delta distribution's
        // cumulative counts, so one ascending walk finds the rank.
        let total = self.run_buckets.last().map(|&(_, n)| n - prev_at(f64::INFINITY))?;
        if total <= 0.0 {
            return None;
        }
        let rank = (q * total).ceil().max(1.0);
        self.run_buckets
            .iter()
            .find(|&&(le, n)| le.is_finite() && n - prev_at(le) >= rank)
            .map(|&(le, _)| le)
    }
}

/// Fetches and parses one `/metrics` page.
fn scrape_metrics(url: &str) -> Result<Vec<Sample>, String> {
    let resp = client::request(url, "GET", "/metrics", None).map_err(|e| format!("{url}: {e}"))?;
    if resp.status != 200 {
        return Err(format!("{url}: /metrics: HTTP {}", resp.status));
    }
    parse_exposition(&resp.text()).map_err(|e| format!("{url}: /metrics: {e}"))
}

/// `dircc top --serve URL`: a polling terminal dashboard over a running
/// daemon's `/metrics`. Every `--interval` seconds (default 2) it
/// scrapes, diffs against the previous scrape and prints one line:
/// request throughput, `/run` latency quantiles from the histogram
/// bucket deltas, queue depth, in-flight count, interval cache hit
/// rate and a throughput sparkline. `--once` instead prints a single
/// machine-readable `key value` snapshot (absolute totals,
/// since-start quantiles) and exits — what the CI gate consumes.
fn top_cmd(args: &Args) -> Result<(), String> {
    let url = args
        .serve_url
        .as_ref()
        .ok_or("top needs --serve URL (e.g. --serve http://127.0.0.1:4888)")?;
    let samples = scrape_metrics(url)?;
    let first = TopSnapshot::take(&samples);
    if args.once {
        let q = |q: f64| first.run_quantile_since(None, q).map_or(0.0, |us| us / 1e3);
        println!("uptime_s {:.0}", first.uptime);
        println!("requests_total {:.0}", first.requests);
        println!("errors_total {:.0}", first.errors);
        println!("refused_total {:.0}", first.refused);
        println!("queue_depth {:.0}", first.queue);
        println!("inflight {:.0}", first.inflight);
        println!("cache_hits {:.0}", first.hits);
        println!("cache_misses {:.0}", first.misses);
        println!("cache_evictions {:.0}", first.evictions);
        println!("coalesced {:.0}", first.coalesced);
        println!("runs_executed {:.0}", first.runs);
        println!("refs_replayed {:.0}", first.refs);
        println!("run_p50_ms {:.3}", q(0.50));
        println!("run_p90_ms {:.3}", q(0.90));
        println!("run_p99_ms {:.3}", q(0.99));
        return Ok(());
    }
    let interval = Duration::from_secs_f64(args.interval.unwrap_or(2.0));
    println!(
        "dircc top: {url} every {:.1}s — rps, /run p50/p90/p99 (ms), queue, inflight, \
         hit% over each interval; ctrl-c to quit",
        interval.as_secs_f64()
    );
    let mut prev = first;
    let mut history: Vec<f64> = Vec::new();
    loop {
        std::thread::sleep(interval);
        let samples = match scrape_metrics(url) {
            Ok(s) => s,
            Err(e) => {
                // A drained daemon closes its listener; that is the
                // normal end of a watch session, not a failure.
                println!("dircc top: daemon unreachable ({e}); exiting");
                return Ok(());
            }
        };
        let cur = TopSnapshot::take(&samples);
        let dt = cur.at.duration_since(prev.at).as_secs_f64().max(1e-9);
        let rps = (cur.requests - prev.requests).max(0.0) / dt;
        history.push(rps);
        if history.len() > 32 {
            history.remove(0);
        }
        let peak = history.iter().cloned().fold(0.0f64, f64::max);
        let q = |q: f64| cur.run_quantile_since(Some(&prev), q).map_or(0.0, |us| us / 1e3);
        let hits_d = (cur.hits - prev.hits).max(0.0);
        let misses_d = (cur.misses - prev.misses).max(0.0);
        let hit_pct =
            if hits_d + misses_d > 0.0 { 100.0 * hits_d / (hits_d + misses_d) } else { 0.0 };
        println!(
            "up {:>5.0}s  rps {rps:>7.1}  p50 {:>7.2}  p90 {:>7.2}  p99 {:>7.2}  \
             q {:>3.0}  infl {:>3.0}  hit% {hit_pct:>5.1}  err {:>3.0}  {}",
            cur.uptime,
            q(0.50),
            q(0.90),
            q(0.99),
            cur.queue,
            cur.inflight,
            cur.errors,
            report::sparkline(&history, peak.max(1.0)),
        );
        prev = cur;
    }
}

/// `dircc check`: bounded exhaustive model check of every scheme (or a
/// single one via `--scheme`). Any invariant violation prints a minimal
/// counterexample and fails the process.
fn check(args: &Args) -> Result<(), String> {
    let base = if args.smoke { CheckConfig::smoke() } else { CheckConfig::default() };
    let cfg = CheckConfig {
        cpus: args.cpus.unwrap_or(base.cpus),
        blocks: args.blocks.unwrap_or(base.blocks),
        depth: args.depth.unwrap_or(base.depth),
    };
    if cfg.cpus == 0 || cfg.cpus > 64 {
        return Err("--cpus must be in 1..=64".to_string());
    }
    if cfg.blocks == 0 || cfg.blocks > 64 {
        return Err("--blocks must be in 1..=64".to_string());
    }
    if cfg.depth == 0 {
        return Err("--depth must be at least 1".to_string());
    }
    let mut kinds = dircc_check::default_kinds().to_vec();
    if let Some(want) = &args.scheme {
        let want = want.to_ascii_lowercase();
        kinds.retain(|k| dircc_core::build(*k, cfg.cpus).name().to_ascii_lowercase() == want);
        if kinds.is_empty() {
            let names: Vec<String> = dircc_check::default_kinds()
                .iter()
                .map(|k| dircc_core::build(*k, cfg.cpus).name().to_string())
                .collect();
            return Err(format!(
                "unknown scheme {}; one of: {}",
                args.scheme.as_ref().unwrap(),
                names.join(" ")
            ));
        }
    }
    println!("model check: {} cpus x {} blocks, depth {}", cfg.cpus, cfg.blocks, cfg.depth);
    println!("{:<12} {:>10} {:>12}  result", "scheme", "states", "transitions");
    let reports =
        dircc_sim::par_map_indexed(kinds.len(), args.jobs, |i| check_protocol(kinds[i], &cfg));
    let mut failed = 0usize;
    for r in &reports {
        println!(
            "{:<12} {:>10} {:>12}  {}",
            r.name,
            r.states,
            r.transitions,
            if r.passed() { "PASS" } else { "FAIL" }
        );
        if let Some(ce) = &r.counterexample {
            println!("  counterexample: {ce}");
            failed += 1;
        }
    }
    if failed > 0 {
        return Err(format!("model check: {failed} of {} scheme(s) FAILED", reports.len()));
    }
    println!("model check: all {} scheme(s) PASS", reports.len());
    shard_check(&kinds, args)?;
    Ok(())
}

/// Replay-equivalence pass run after the model-check table: every checked
/// scheme replays a short trace through the sharded engine (one protocol
/// instance per shard via `split_shards`) and must reproduce the serial
/// replay's counters, first-ref classification and verifier verdicts bit
/// for bit. Uses `--shards` (at least 2, so the per-shard construction
/// path is always exercised — including in `--smoke --scheme X` CI runs).
fn shard_check(kinds: &[ProtocolKind], args: &Args) -> Result<(), String> {
    let shards = args.shards.max(2);
    let total_refs = if args.smoke { 5_000 } else { 20_000 };
    let records: Vec<dircc_trace::TraceRecord> =
        Generator::new(Profile::pops().with_total_refs(total_refs), args.seed).collect();
    let cfg = RunConfig { verify: true, ..RunConfig::default().with_process_sharing() };
    let interner = dircc_trace::BlockInterner::from_records(records.iter(), cfg.geometry);
    let dense = interner.dense_stream(&records);
    let num_blocks = interner.num_blocks();
    let sharded = shard_stream(&records, &dense, num_blocks, shards, &cfg);
    let n_caches = usize::from(Profile::pops().cpus);
    for &kind in kinds {
        let mut p = dircc_core::build_sized(kind, n_caches, num_blocks);
        let serial = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg)
            .map_err(|e| format!("shard check: {kind}: serial replay failed: {e}"))?;
        let split = run_sharded(kind, n_caches, &sharded, &cfg)
            .map_err(|e| format!("shard check: {kind}: sharded replay failed: {e}"))?;
        if serial.counters != split.counters
            || serial.refs != split.refs
            || serial.violations != split.violations
        {
            return Err(format!(
                "shard check: {kind}: sharded replay diverged from serial at {shards} shards"
            ));
        }
    }
    println!(
        "shard check: {} scheme(s) x {} refs: counters, first-ref classes and verifier \
         verdicts bit-identical at {shards} shards",
        kinds.len(),
        total_refs
    );
    Ok(())
}

/// One run row of a `dircc bench` JSON report.
struct BenchRun {
    scheme: String,
    trace: String,
    filter: String,
    /// `None` when the report predates the `shards` schema field.
    shards: Option<u64>,
    /// `None` when the report predates the monomorphized-replay schema.
    /// Deliberately **excluded** from the comparison key: digests are
    /// engine-invariant, so one baseline gates both engines.
    digest: Option<String>,
    refs: u64,
    wall_ms: f64,
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One ingest row of a `dircc bench` JSON report. Only the deterministic
/// fields are parsed; the throughput fields are informational.
struct IngestRow {
    trace: String,
    refs: u64,
    bytes: u64,
}

/// Extracts the ingest rows (they carry `mb_per_sec`; run rows carry
/// `scheme`, so neither parser sees the other's lines).
fn parse_ingest_rows(text: &str) -> Vec<IngestRow> {
    text.lines()
        .filter(|l| l.contains("\"mb_per_sec\""))
        .filter_map(|l| {
            Some(IngestRow {
                trace: json_str_field(l, "trace")?,
                refs: json_num_field(l, "refs")? as u64,
                bytes: json_num_field(l, "bytes")? as u64,
            })
        })
        .collect()
}

/// An `io::Write` sink that only counts bytes — `benchcmp` re-derives the
/// deterministic v2 encoded size without touching the filesystem.
struct CountingWriter(u64);

impl std::io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0 += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Extracts the per-run rows from a `dircc bench` JSON report (one run
/// object per line, hand-rolled to match the hand-rolled writer).
fn parse_bench_runs(text: &str) -> Vec<BenchRun> {
    text.lines()
        .filter(|l| l.contains("\"scheme\""))
        .filter_map(|l| {
            Some(BenchRun {
                scheme: json_str_field(l, "scheme")?,
                trace: json_str_field(l, "trace")?,
                filter: json_str_field(l, "filter")?,
                shards: json_num_field(l, "shards").map(|s| s as u64),
                digest: json_str_field(l, "digest"),
                refs: json_num_field(l, "refs")? as u64,
                wall_ms: json_num_field(l, "wall_ms")?,
            })
        })
        .collect()
}

/// Writes `contents` to `path`, creating parent directories as needed.
fn write_output(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

/// The (protocol, filter) work list a `dircc profile` target names.
fn profile_workload(
    target: &str,
    wb: &Workbench,
) -> Result<Vec<(ProtocolKind, TraceFilter)>, String> {
    match target {
        "all" | "bench" => Ok(wb.paper_workload()),
        "scaling" | "scalability" => {
            Ok(workload_for("scalability", wb).expect("scalability has a workload"))
        }
        "headline" => Ok(wb.paper_kinds().into_iter().map(|k| (k, TraceFilter::Full)).collect()),
        other => Err(format!(
            "unknown profile target {other}; one of: all bench scaling scalability headline"
        )),
    }
}

/// `dircc profile <experiment>`: replays the experiment's work list with
/// windowed counter sampling. Writes one JSONL line per window (`--out`,
/// default `PROFILE_timeseries.jsonl`) and a Chrome trace-event span
/// profile of every workbench phase (`--spans`, default
/// `PROFILE_spans.json`), then prints one cycles-per-reference sparkline
/// per run. stdout is byte-identical across `--jobs`; counters are
/// unaffected by the instrumentation (pinned by `benchcmp`).
fn profile(args: &Args) -> Result<(), String> {
    let target = args.target.clone().ok_or_else(|| {
        format!(
            "profile needs a target experiment; one of: all bench scaling scalability headline\n{}",
            usage()
        )
    })?;
    let wb = match (args.refs, args.smoke) {
        (Some(n), _) => Workbench::paper_scaled(n, args.seed),
        (None, true) => Workbench::paper_scaled(20_000, args.seed),
        (None, false) => Workbench::paper(args.seed),
    };
    let total_refs = wb.profiles()[0].total_refs;
    let window = args.window.unwrap_or_else(|| (total_refs / 64).max(1));
    let wb = wb.with_window(window);
    let work = profile_workload(&target, &wb)?;
    let executed = wb.warm(&work, args.jobs);
    let series = wb.time_series();
    let (model, cost_cfg) = (CostModel::pipelined(), CostConfig::PAPER);

    // Series complete in scheduler order; walk the work list instead so
    // the JSONL file and the stdout table are independent of --jobs.
    println!("profile {target}: {executed} runs, window {window} refs");
    let mut jsonl = String::new();
    let mut windows_written = 0usize;
    for &(kind, filter) in &work {
        for trace in 0..wb.num_traces() {
            let s = series
                .iter()
                .find(|s| s.kind == kind && s.trace == trace && s.filter == filter)
                .ok_or("profile: a warmed run left no time series")?;
            let label = filter_label(filter);
            let meta = RunMeta {
                scheme: s.scheme.clone(),
                trace: s.trace_name.clone(),
                filter: label.to_string(),
                refs: s.refs,
                shard: None,
                request: None,
            };
            // Price each window's delta under the paper's pipelined model
            // (the fifth phase, `price`, in the span profile).
            let cprs: Vec<f64> = wb.span_log().time("price", Some(meta), || {
                s.windows
                    .iter()
                    .map(|w| {
                        Evaluation::new(s.scheme.clone(), kind, wb.n_caches(), w.counters.clone())
                            .cycles_per_ref(&model, &cost_cfg)
                    })
                    .collect()
            });
            for (w, cpr) in s.windows.iter().zip(&cprs) {
                jsonl.push_str(&window_jsonl_line(&s.scheme, &s.trace_name, label, w, *cpr));
                jsonl.push('\n');
                windows_written += 1;
            }
            let max = cprs.iter().copied().fold(0.0f64, f64::max);
            println!(
                "  {:<10} {:<6} {:<9} {:>4} windows  max {:>7.4} cyc/ref  |{}|",
                s.scheme,
                s.trace_name,
                label,
                s.windows.len(),
                max,
                report::sparkline(&cprs, max)
            );
        }
    }

    let out_path = args.out.clone().unwrap_or_else(|| "PROFILE_timeseries.jsonl".to_string());
    write_output(&out_path, &jsonl)?;
    let spans = wb.span_log().spans();
    let spans_path = args.spans_out.clone().unwrap_or_else(|| "PROFILE_spans.json".to_string());
    write_output(&spans_path, &chrome_trace(&spans))?;
    println!("time series -> {out_path} ({windows_written} windows)");
    println!("spans       -> {spans_path} ({} spans)", spans.len());
    if args.verbose {
        let summary = wb.timing_summary();
        if !summary.is_empty() {
            eprint!("{summary}");
        }
    }
    Ok(())
}

/// `dircc benchcmp`: re-runs the bench matrix (on `--engine`, default
/// mono) and compares the deterministic per-run fields (scheme, trace,
/// filter, shards, refs, counter digest) against a baseline report
/// (`--in`, default `BENCH_smoke.json` with `--smoke`, else
/// `BENCH_replay.json`). Runs are matched by sorted key — a bench report
/// lists runs in completion order, which varies with `--jobs`. The
/// baseline's engine is ignored: digests are engine-invariant, so one
/// baseline gates both engines (the mono-vs-dyn bit-identity check CI
/// leans on). A baseline whose schema predates the `shards` or `digest`
/// field is rejected with a pointer to regenerate it. Any drift fails the
/// process; wall-clock changes are reported but never fatal.
fn benchcmp(args: &Args) -> Result<(), String> {
    let path = args.input.clone().unwrap_or_else(|| {
        if args.smoke {
            "BENCH_smoke.json".to_string()
        } else {
            "BENCH_replay.json".to_string()
        }
    });
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let baseline = parse_bench_runs(&text);
    if baseline.is_empty() {
        return Err(format!("{path}: no runs found (not a dircc bench report?)"));
    }
    let missing = baseline.iter().filter(|b| b.shards.is_none()).count();
    if missing > 0 {
        return Err(format!(
            "{path}: {missing} of {} run(s) lack the \"shards\" field — the baseline predates \
             the sharded-replay schema; regenerate it with `dircc bench`",
            baseline.len()
        ));
    }
    let missing = baseline.iter().filter(|b| b.digest.is_none()).count();
    if missing > 0 {
        return Err(format!(
            "{path}: {missing} of {} run(s) lack the \"digest\" field — the baseline predates \
             the monomorphized-replay schema; regenerate it with `dircc bench`",
            baseline.len()
        ));
    }
    let base_ingest = parse_ingest_rows(&text);
    if base_ingest.is_empty() {
        return Err(format!(
            "{path}: no \"ingest\" rows — the baseline predates the streaming-ingest schema; \
             regenerate it with `dircc bench`"
        ));
    }

    let wb = match (args.refs, args.smoke) {
        (Some(n), _) => Workbench::paper_scaled(n, args.seed),
        (None, true) => Workbench::paper_scaled(20_000, args.seed),
        (None, false) => Workbench::paper(args.seed),
    }
    .with_shards(args.shards)
    .with_engine(args.engine.unwrap_or_default());
    wb.warm(&wb.paper_workload(), args.jobs);
    let timings = wb.timings();
    let digests = run_digests(&wb);

    let mut drift = Vec::new();
    if timings.len() != baseline.len() {
        drift.push(format!("run count: baseline {}, fresh {}", baseline.len(), timings.len()));
    }
    // The comparison key carries the counter digest but not the engine:
    // mono and dyn are bit-identical, so a baseline written by either
    // engine gates both.
    let mut base_keys: Vec<(String, String, String, u64, u64, String)> = baseline
        .iter()
        .map(|b| {
            (
                b.scheme.clone(),
                b.trace.clone(),
                b.filter.clone(),
                b.shards.unwrap_or(1),
                b.refs,
                b.digest.clone().unwrap_or_default(),
            )
        })
        .collect();
    let mut fresh_keys: Vec<(String, String, String, u64, u64, String)> = timings
        .iter()
        .map(|t| {
            let filter = filter_label(t.filter).to_string();
            let digest = digests
                .get(&(t.scheme.clone(), t.trace.clone(), filter.clone()))
                .map(|d| format!("{d:016x}"))
                .unwrap_or_default();
            (t.scheme.clone(), t.trace.clone(), filter, args.shards as u64, t.refs, digest)
        })
        .collect();
    base_keys.sort();
    fresh_keys.sort();
    for (b, f) in base_keys.iter().zip(fresh_keys.iter()) {
        if b != f {
            drift.push(format!(
                "baseline {}/{}/{} shards={} refs={} digest={} vs fresh {}/{}/{} shards={} \
                 refs={} digest={}",
                b.0, b.1, b.2, b.3, b.4, b.5, f.0, f.1, f.2, f.3, f.4, f.5
            ));
        }
    }
    // Ingest rows: re-derive each trace's deterministic v2 encoded size
    // (same generator, same default chunking) and compare (trace, refs,
    // bytes). No replay needed — only the encoding is pinned here.
    let mut fresh_ingest = Vec::new();
    for profile in wb.profiles().to_vec() {
        let name = profile.name.to_string();
        let mut w = ChunkedWriter::new(CountingWriter(0));
        for r in Generator::new(profile, args.seed) {
            w.write(&r).map_err(|e| format!("ingest encode: {e}"))?;
        }
        let refs = w.records_written();
        let counter = w.finish().map_err(|e| format!("ingest encode: {e}"))?;
        fresh_ingest.push(IngestRow { trace: name, refs, bytes: counter.0 });
    }
    if base_ingest.len() != fresh_ingest.len() {
        drift.push(format!(
            "ingest row count: baseline {}, fresh {}",
            base_ingest.len(),
            fresh_ingest.len()
        ));
    }
    for (b, f) in base_ingest.iter().zip(fresh_ingest.iter()) {
        if (&b.trace, b.refs, b.bytes) != (&f.trace, f.refs, f.bytes) {
            drift.push(format!(
                "ingest baseline {} refs={} bytes={} vs fresh {} refs={} bytes={}",
                b.trace, b.refs, b.bytes, f.trace, f.refs, f.bytes
            ));
        }
    }
    let base_wall: f64 = baseline.iter().map(|r| r.wall_ms).sum();
    let fresh_wall: f64 = timings.iter().map(|t| t.wall.as_secs_f64() * 1e3).sum();
    let delta = if base_wall > 0.0 { 100.0 * (fresh_wall - base_wall) / base_wall } else { 0.0 };
    println!(
        "benchcmp: wall {base_wall:.1} ms -> {fresh_wall:.1} ms ({delta:+.1}%, informational)"
    );
    if drift.is_empty() {
        println!("benchcmp: PASS — {} run(s) match {path}", baseline.len());
        Ok(())
    } else {
        for d in &drift {
            eprintln!("benchcmp: drift: {d}");
        }
        Err(format!("benchcmp: {} drifted run(s) vs {path}", drift.len()))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = spec_for(&args.command) else {
        eprintln!("unknown command {}\n{}", args.command, usage());
        return ExitCode::FAILURE;
    };
    let result = match spec.kind {
        Kind::Gen => generate(&args),
        Kind::Record => record(&args),
        Kind::Replay => replay(&args),
        Kind::Stats => stats(&args),
        Kind::Sharing => sharing(&args),
        Kind::Scaling => {
            println!("{}", extensions::scaling(args.refs.unwrap_or(300_000), args.seed, args.jobs));
            Ok(())
        }
        Kind::Network => {
            println!(
                "{}",
                network::network_study(args.refs.unwrap_or(300_000), args.seed, args.jobs)
            );
            Ok(())
        }
        Kind::BlockSize => {
            println!(
                "{}",
                extensions::block_size(args.refs.unwrap_or(400_000), args.seed, args.jobs)
            );
            Ok(())
        }
        Kind::Workbench => run_workbench_command(&args, false),
        Kind::All => run_workbench_command(&args, true),
        Kind::Bench => bench(&args),
        Kind::BenchCmp => benchcmp(&args),
        Kind::Check => check(&args),
        Kind::Profile => profile(&args),
        Kind::Serve => serve_cmd(&args),
        Kind::Submit => submit_cmd(&args),
        Kind::Top => top_cmd(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

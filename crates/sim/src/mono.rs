//! Monomorphized structure-of-arrays replay — the fast path.
//!
//! [`run_indexed`](crate::engine::run_indexed) already replays a dense-id
//! stream with zero hashing, but still pays three per-reference costs the
//! configuration makes constant:
//!
//! 1. **a vtable call** — `Box<dyn Protocol>` forces every
//!    [`Protocol::access`] through dynamic dispatch, which also walls off
//!    inlining;
//! 2. **AoS record walking** — 16-byte [`TraceRecord`]s plus the
//!    sharing-model match and `geometry.block_of` address math per
//!    reference;
//! 3. **cold-path branches** — verifier, finite-cache, invariant-cadence
//!    and recorder tests that are dead in the common bench configuration.
//!
//! This module removes all three. [`run_indexed_mono`] resolves the
//! [`ProtocolKind`] to its *concrete* type once (via
//! [`dircc_core::dispatch_sized`]) and monomorphizes the replay loop per
//! scheme, so `access` is statically dispatched and inlinable. The loop
//! reads a [`SoaStream`] — flat `kind`/`cache_idx`/`block_id`/`first_ref`
//! arrays with sharing and address math precomputed — and when the
//! configuration is quiet (no verifier, infinite caches, no invariant
//! cadence, [`Recorder::IS_NOOP`], and the stream-wide `max_cache_idx`
//! proves the bounds check dead) it runs a branch-free batched loop with
//! every cold path specialized out. Any other configuration takes the
//! full loop below, which replicates
//! [`run_core`](crate::engine)'s semantics — counters, violations, error
//! messages — bit for bit; the dyn path stays as the reference
//! implementation, pinned against this one by the `mono` test suite and
//! the `benchcmp` CI gate.
//!
//! [`run_sharded_mono`] is the sharded twin: per-shard concrete instances
//! replay per-shard [`SoaStream`]s on scoped threads and merge through
//! the same fold as [`run_sharded`](crate::engine::run_sharded), attacking
//! the documented shard overhead from both the loop and sub-stream sides
//! (the SoA split is memoized in the
//! [`TraceStore`](dircc_trace::TraceStore) like the partition itself).

use crate::engine::{
    finish_result, merge_shard_results, noop_observer, verify_access, CoreResult, EngineError,
    RunConfig, RunResult, Verifier,
};
use dircc_cache::{Lookup, SetAssocCache};
use dircc_core::ProtocolVisitor;
use dircc_core::{dispatch_sized, Event, EventCounters, Outcome, Protocol, ProtocolKind};
use dircc_obs::{NoopRecorder, Recorder};
use dircc_trace::{ShardedSoa, ShardedStream, SoaStream, TraceRecord};
use dircc_types::{AccessKind, BlockAddr, CacheId};
use std::time::{Duration, Instant};

/// References per dispatch of the quiet batched loop. One batch's arrays
/// (4 × 8 bytes per ref) stay comfortably inside L1 alongside the
/// protocol's working set.
const BATCH: usize = 4096;

/// Replays a structure-of-arrays stream through a **monomorphized**
/// instance of `kind` — counters, violations and errors bit-identical to
/// [`run_indexed`](crate::engine::run_indexed) over the same records
/// (pinned by the `mono` test suite), typically severalfold faster.
///
/// `records` must be the stream `soa` was built from: the hot loop never
/// touches it, but finite-cache set selection and diagnostics do.
///
/// # Errors
///
/// As [`run_indexed`](crate::engine::run_indexed); additionally errs if
/// `soa` is misaligned with `records` or was built under a different
/// sharing model than `cfg` uses.
pub fn run_indexed_mono(
    kind: ProtocolKind,
    n_caches: usize,
    records: &[TraceRecord],
    soa: &SoaStream,
    cfg: &RunConfig,
) -> Result<RunResult, String> {
    run_indexed_mono_with(kind, n_caches, records, soa, cfg, &mut NoopRecorder)
}

/// [`run_indexed_mono`] with a [`Recorder`] observing the cumulative
/// counters after every reference. Counters are unaffected by the
/// recorder (a non-noop recorder routes through the full loop, which is
/// counter-identical to the quiet one).
///
/// # Errors
///
/// As [`run_indexed_mono`].
pub fn run_indexed_mono_with<R: Recorder>(
    kind: ProtocolKind,
    n_caches: usize,
    records: &[TraceRecord],
    soa: &SoaStream,
    cfg: &RunConfig,
    recorder: &mut R,
) -> Result<RunResult, String> {
    check_aligned(records, soa, cfg)?;
    struct Run<'a, R> {
        records: &'a [TraceRecord],
        soa: &'a SoaStream,
        cfg: &'a RunConfig,
        recorder: &'a mut R,
    }
    impl<R: Recorder> ProtocolVisitor for Run<'_, R> {
        type Output = Result<CoreResult, EngineError>;
        fn visit<P: Protocol>(self, mut protocol: P) -> Self::Output {
            run_soa_core(&mut protocol, self.records, self.soa, None, None, self.cfg, self.recorder)
        }
    }
    dispatch_sized(kind, n_caches, soa.num_blocks, Run { records, soa, cfg, recorder })
        .map(finish_result)
        .map_err(|e| e.msg)
}

/// Replays a block-sharded partition through **monomorphized** per-shard
/// instances of `kind` on scoped threads (inline for one shard), folding
/// the per-shard results exactly as
/// [`run_sharded`](crate::engine::run_sharded) does — the result is
/// bit-identical to both the dyn sharded path and the serial paths.
///
/// `soa` must be the SoA split of `sharded` (from
/// [`ShardedSoa::build`] or the
/// [`TraceStore::sharded_soa`](dircc_trace::TraceStore::sharded_soa)
/// memo).
///
/// # Errors
///
/// As [`run_sharded`](crate::engine::run_sharded); additionally errs on a
/// shard-count or sharing-model mismatch between `soa`, `sharded` and
/// `cfg`.
pub fn run_sharded_mono(
    kind: ProtocolKind,
    n_caches: usize,
    sharded: &ShardedStream,
    soa: &ShardedSoa,
    cfg: &RunConfig,
) -> Result<RunResult, String> {
    run_sharded_mono_with(kind, n_caches, sharded, soa, cfg, noop_observer)
}

/// [`run_sharded_mono`] with an observer called once per shard replay —
/// `observe(shard, started, wall, refs)` — from the thread that replayed
/// it, mirroring [`run_sharded_with`](crate::engine::run_sharded_with).
///
/// # Errors
///
/// As [`run_sharded_mono`].
pub fn run_sharded_mono_with<O>(
    kind: ProtocolKind,
    n_caches: usize,
    sharded: &ShardedStream,
    soa: &ShardedSoa,
    cfg: &RunConfig,
    observe: O,
) -> Result<RunResult, String>
where
    O: Fn(usize, Instant, Duration, u64) + Sync,
{
    let shards = sharded.shards();
    let soa_shards = soa.shards();
    if soa_shards.len() != shards.len() {
        return Err(format!(
            "soa partition has {} shard(s) for {} stream shard(s); rebuild it from the same \
             partition",
            soa_shards.len(),
            shards.len()
        ));
    }
    for (sh, so) in shards.iter().zip(soa_shards) {
        check_aligned(&sh.records, so, cfg)?;
    }

    struct RunShard<'a> {
        records: &'a [TraceRecord],
        soa: &'a SoaStream,
        grefs: &'a [u64],
        global_ids: &'a [u32],
        cfg: &'a RunConfig,
    }
    impl ProtocolVisitor for RunShard<'_> {
        type Output = Result<CoreResult, EngineError>;
        fn visit<P: Protocol>(self, mut protocol: P) -> Self::Output {
            run_soa_core(
                &mut protocol,
                self.records,
                self.soa,
                Some(self.grefs),
                Some(self.global_ids),
                self.cfg,
                &mut NoopRecorder,
            )
        }
    }

    let slots: Vec<std::sync::Mutex<Option<Result<CoreResult, EngineError>>>> =
        shards.iter().map(|_| std::sync::Mutex::new(None)).collect();
    {
        let run_one = |idx: usize| {
            let started = Instant::now();
            let sh = &shards[idx];
            // The concrete type is resolved per shard on its own worker:
            // no `Box<dyn Protocol>` ever crosses into the replay loop.
            let res = dispatch_sized(
                kind,
                n_caches,
                sh.num_blocks,
                RunShard {
                    records: &sh.records,
                    soa: &soa_shards[idx],
                    grefs: &sh.global_refs,
                    global_ids: &sh.global_ids,
                    cfg,
                },
            );
            let refs = match &res {
                Ok(o) => o.refs,
                Err(_) => sh.records.len() as u64,
            };
            observe(idx, started, started.elapsed(), refs);
            *slots[idx].lock().expect("shard slot poisoned") = Some(res);
        };
        if shards.len() == 1 {
            run_one(0);
        } else {
            std::thread::scope(|scope| {
                for idx in 0..shards.len() {
                    let run_one = &run_one;
                    scope.spawn(move || run_one(idx));
                }
            });
        }
    }
    merge_shard_results(slots)
}

fn check_aligned(records: &[TraceRecord], soa: &SoaStream, cfg: &RunConfig) -> Result<(), String> {
    if records.len() != soa.len() {
        return Err(format!(
            "soa stream has {} entries for {} records; rebuild it from the same stream",
            soa.len(),
            records.len()
        ));
    }
    if soa.sharing != cfg.sharing {
        return Err(format!(
            "soa stream was built under {:?} sharing but the run uses {:?}; rebuild it for this \
             sharing model",
            soa.sharing, cfg.sharing
        ));
    }
    Ok(())
}

/// The monomorphized replay core: quiet batched loop when every cold path
/// is provably dead, full [`run_core`](crate::engine)-equivalent loop
/// otherwise. `grefs`/`global_ids` are `None` for unsharded streams
/// (global reference number = loop count, violation labels = dense ids)
/// and the shard's tables for shard sub-streams.
fn run_soa_core<P: Protocol, R: Recorder>(
    protocol: &mut P,
    records: &[TraceRecord],
    soa: &SoaStream,
    grefs: Option<&[u64]>,
    global_ids: Option<&[u32]>,
    cfg: &RunConfig,
    recorder: &mut R,
) -> Result<CoreResult, EngineError> {
    let n = protocol.num_caches();
    let len = soa.len();

    // Every cold branch constant-false? Then no reference can error
    // (max_cache_idx proves the bounds check dead), no state beyond the
    // protocol and counters exists, and the whole configuration
    // specializes down to the quiet loop.
    let quiet = R::IS_NOOP
        && !cfg.verify
        && cfg.finite_cache.is_none()
        && cfg.check_invariants_every == 0
        && usize::from(soa.max_cache_idx) < n;
    if quiet {
        let kind = &soa.kind[..len];
        let cache_idx = &soa.cache_idx[..len];
        let block_id = &soa.block_id[..len];
        let first_ref = &soa.first_ref[..len];
        let mut counters = EventCounters::new();
        let mut i = 0usize;
        while i < len {
            let end = (i + BATCH).min(len);
            for j in i..end {
                let k = kind[j];
                if k == AccessKind::InstrFetch {
                    counters.observe(&Outcome::quiet(Event::Instr));
                    continue;
                }
                let out = protocol.access(
                    CacheId::new(cache_idx[j]),
                    k,
                    BlockAddr::from_index(u64::from(block_id[j])),
                    first_ref[j],
                );
                counters.observe(&out);
            }
            i = end;
        }
        recorder.finish(len as u64, &counters);
        return Ok(CoreResult { counters, refs: len as u64, violations: Vec::new() });
    }

    // Full loop: semantics of `run_core`, reference for reference — same
    // counters, violations, error text and invariant cadence — but over
    // the SoA arrays, with the invariant modulo test hoisted to batch
    // boundaries (batches end exactly where the serial cadence checks).
    let mut counters = EventCounters::new();
    let mut verifier = cfg.verify.then(|| Verifier::new(n, soa.num_blocks));
    let mut violations: Vec<(u64, String)> = Vec::new();
    let mut tag_stores: Option<Vec<SetAssocCache<BlockAddr>>> =
        cfg.finite_cache.map(|fc| (0..n).map(|_| SetAssocCache::new(fc)).collect());
    let every = cfg.check_invariants_every;
    let mut i = 0usize;
    while i < len {
        // Next reference count that is a multiple of `every` (or the whole
        // stream when the cadence is off).
        let end = (i as u64)
            .checked_div(every)
            .map_or(len, |q| ((q + 1) * every).min(len as u64) as usize);
        for j in i..end {
            let refs = (j + 1) as u64;
            let k = soa.kind[j];
            if k == AccessKind::InstrFetch {
                counters.observe(&Outcome::quiet(Event::Instr));
                recorder.record(refs, &counters);
                continue;
            }
            let gref = grefs.map_or(refs, |g| g[j]);
            let cache_idx = soa.cache_idx[j];
            if usize::from(cache_idx) >= n {
                let r = &records[j];
                return Err(EngineError {
                    gref,
                    msg: format!(
                        "reference {gref}: cache index {cache_idx} out of range for {n} caches \
                         ({}, {}, {:?} at {}; did you size the protocol for the sharing model?)",
                        r.cpu, r.pid, r.kind, r.addr
                    ),
                });
            }
            let cache = CacheId::new(cache_idx);
            let block = BlockAddr::from_index(u64::from(soa.block_id[j]));
            let out = protocol.access(cache, k, block, soa.first_ref[j]);
            counters.observe(&out);

            if let Some(v) = verifier.as_mut() {
                let shown = match global_ids {
                    None => block,
                    Some(g) => BlockAddr::from_index(u64::from(g[block.index() as usize])),
                };
                verify_access(protocol, v, cache, k, block, shown, &out, &mut violations, gref);
            }
            if let Some(stores) = tag_stores.as_mut() {
                // Set selection uses raw address bits, so the finite tag
                // stores key on the ORIGINAL block address — the one cold
                // path that still reads the AoS records.
                let orig_block = cfg.geometry.block_of(records[j].addr);
                let store = &mut stores[cache.index()];
                if let Lookup::Inserted { evicted: Some(victim) } =
                    store.lookup_or_insert(orig_block, block)
                {
                    let evo = protocol.evict(cache, victim.state);
                    counters.observe_eviction(&evo);
                    if evo.write_back {
                        if let Some(v) = verifier.as_mut() {
                            // The evicted copy holds the latest data in
                            // every protocol that answers WRITE_BACK.
                            let ver = v.copy_version(cache, victim.state);
                            v.set_memory(victim.state, ver);
                        }
                    }
                }
            }
            recorder.record(refs, &counters);
        }
        i = end;
        // The serial cadence only checks when the boundary reference is a
        // data reference (its instr path `continue`s past the check).
        if every > 0
            && i > 0
            && (i as u64).is_multiple_of(every)
            && soa.kind[i - 1] != AccessKind::InstrFetch
        {
            if let Err(e) = protocol.check_invariants() {
                let gref = grefs.map_or(i as u64, |g| g[i - 1]);
                return Err(EngineError {
                    gref,
                    msg: format!("invariant violation at reference {gref}: {e}"),
                });
            }
        }
    }
    if every > 0 {
        protocol.check_invariants().map_err(|e| EngineError {
            gref: u64::MAX,
            msg: format!("final invariant violation: {e}"),
        })?;
    }
    recorder.finish(len as u64, &counters);
    Ok(CoreResult { counters, refs: len as u64, violations })
}

//! End-to-end tests of the serve stack with the *real* simulation
//! handler: served counters must be bit-identical to a local replay,
//! repeats must be cache hits, and concurrent identical jobs must
//! execute the workbench exactly once.

use std::sync::Arc;

use dircc_serve::{client, json, JobEngine, JobHandler, JobSpec, Json, ServeConfig, Server};
use dircc_sim::{profile_by_name, run_indexed, RunConfig, WorkbenchHandler};
use dircc_trace::gen::Generator;
use dircc_trace::{BlockInterner, TraceRecord};

fn job(scheme: &str, trace: &str, refs: u64) -> JobSpec {
    JobSpec {
        scheme: scheme.to_string(),
        trace: trace.to_string(),
        refs: Some(refs),
        seed: dircc_serve::DEFAULT_SEED,
        filter: "full".to_string(),
        shards: 1,
        engine: JobEngine::Mono,
        window: None,
    }
}

/// Quiet config for tests: no request logging on stderr.
fn quiet() -> ServeConfig {
    ServeConfig { log: false, ..ServeConfig::default() }
}

fn start(
    config: ServeConfig,
) -> (String, Arc<WorkbenchHandler>, std::thread::JoinHandle<dircc_serve::ServeStats>) {
    let handler = Arc::new(WorkbenchHandler::new());
    let server = Server::bind("127.0.0.1:0", config, handler.clone() as Arc<dyn JobHandler>)
        .expect("bind loopback");
    let url = format!("http://{}", server.local_addr());
    let join = std::thread::spawn(move || server.run());
    (url, handler, join)
}

fn shutdown(url: &str) {
    client::request(url, "POST", "/shutdown", Some(b"{}")).expect("shutdown");
}

/// Digs `counters.digest` out of a `/run` response body.
fn digest_of(body: &str) -> String {
    let v = json::parse(body.as_bytes()).expect("response parses");
    v.as_obj()
        .and_then(|o| o.get("counters"))
        .and_then(Json::as_obj)
        .and_then(|c| c.get("digest"))
        .and_then(Json::as_str)
        .expect("counters.digest present")
        .to_string()
}

/// The handler's `/run` body carries the exact digest a direct
/// `run_indexed` replay of the same generated trace produces — the
/// service is a transport, not a different simulator.
#[test]
fn served_digest_matches_a_direct_run_indexed_replay() {
    let handler = WorkbenchHandler::new();
    let body = handler.run(&job("Dir1NB", "POPS", 4000), "test-req-1").expect("run");

    let profile = profile_by_name("pops").expect("pops").with_total_refs(4000);
    let cpus = usize::from(profile.cpus);
    let cfg = RunConfig::default().with_process_sharing();
    let records: Vec<TraceRecord> = Generator::new(profile, dircc_serve::DEFAULT_SEED).collect();
    let interner = BlockInterner::from_records(records.iter(), cfg.geometry);
    let dense = interner.dense_stream(&records);
    let mut p = dircc_core::build(dircc_core::ProtocolKind::DirNb { pointers: 1 }, cpus);
    let res =
        run_indexed(p.as_mut(), &records, &dense, interner.num_blocks(), &cfg).expect("replay");

    assert_eq!(digest_of(&body), format!("{:016x}", res.counters.digest()));
    assert!(body.contains(&format!("\"refs\": {}", res.refs)));
}

/// Counters are pinned shard- and engine-invariant, so any (shards,
/// engine) combination serves the same bytes for the same run.
#[test]
fn served_body_is_invariant_across_shards_and_engine() {
    let handler = WorkbenchHandler::new();
    let base = handler.run(&job("Wti", "THOR", 3000), "test-req-2").expect("run");
    for (shards, engine) in [(4, JobEngine::Mono), (1, JobEngine::Dyn), (2, JobEngine::Dyn)] {
        let spec = JobSpec { shards, engine, ..job("Wti", "THOR", 3000) };
        assert_eq!(
            handler.run(&spec, "test-req-2").expect("run"),
            base,
            "{shards} shard(s) {engine:?}"
        );
    }
}

/// Full loop through the real server: miss, then hit, byte-identical
/// bodies, and exactly one workbench execution.
#[test]
fn served_run_is_cached_and_bit_stable_over_http() {
    let (url, handler, join) = start(quiet());
    let body = br#"{"scheme": "Dir0B", "trace": "PERO", "refs": 2500}"#;

    let first = client::request(&url, "POST", "/run", Some(body)).expect("first");
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-cache"), Some("miss"));

    let second = client::request(&url, "POST", "/run", Some(body)).expect("second");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache must serve identical bytes");
    assert_eq!(handler.executed_runs(), 1, "the hit must not replay");

    shutdown(&url);
    join.join().expect("server thread");
}

/// Concurrent identical submissions coalesce onto one workbench run —
/// the result cache's single-flight fill, observed end to end.
#[test]
fn concurrent_identical_jobs_execute_the_workbench_once() {
    let (url, handler, join) = start(quiet());
    let body: &[u8] = br#"{"scheme": "Dragon", "trace": "POPS", "refs": 2000}"#;

    let bodies: Vec<Vec<u8>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let url = url.clone();
                s.spawn(move || {
                    let resp = client::request(&url, "POST", "/run", Some(body)).expect("request");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    resp.body
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "all clients see the same bytes");
    }
    assert_eq!(handler.executed_runs(), 1, "identical jobs must dedup");

    shutdown(&url);
    join.join().expect("server thread");
}

/// `/series` covers the whole trace in window-sized JSONL steps.
#[test]
fn series_windows_tile_the_requested_trace() {
    let handler = WorkbenchHandler::new();
    let spec = JobSpec { window: Some(1000), ..job("Tang", "THOR", 4000) };
    let lines = handler.series(&spec, "test-req-3").expect("series");
    assert_eq!(lines.len(), 4, "4000 refs / 1000-ref windows");
    let mut refs = 0;
    for (i, line) in lines.iter().enumerate() {
        assert!(line.ends_with('\n'), "JSONL lines are newline-terminated");
        let v = json::parse(line.trim_end().as_bytes()).expect("window line parses");
        let obj = v.as_obj().expect("object");
        assert_eq!(obj.get("window").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(obj.get("scheme").and_then(Json::as_str), Some("Tang"));
        refs += obj.get("refs").and_then(Json::as_u64).expect("refs");
    }
    assert_eq!(refs, 4000, "windows tile the trace exactly");
}

/// `/spans` is strictly valid JSON (the chrome-trace export once
/// emitted an unbalanced brace for runs with metadata), and carries the
/// request ID that triggered each run — the log/span join key.
#[test]
fn spans_export_parses_as_json_after_runs() {
    let handler = WorkbenchHandler::new();
    handler.run(&job("Dir1NB", "POPS", 2000), "span-join-id").expect("run");
    let spans = handler.spans();
    let v = json::parse(spans.as_bytes()).expect("chrome trace parses");
    match v {
        Json::Arr(events) => assert!(!events.is_empty(), "runs leave spans"),
        other => panic!("expected a JSON array, got {other:?}"),
    }
    assert!(
        spans.contains("span-join-id"),
        "span meta must carry the request id for log joins: {spans}"
    );
}

/// Unknown schemes and traces come back as 400s with the offending
/// field, straight from the simulation layer.
#[test]
fn handler_rejects_unknown_schemes_and_traces() {
    let handler = WorkbenchHandler::new();
    let err =
        handler.run(&job("no-such-scheme", "POPS", 1000), "test-req-4").expect_err("bad scheme");
    assert_eq!(err.status, 400);
    assert!(err.message.contains("no-such-scheme"), "{}", err.message);
    let err = handler.run(&job("Wti", "no-such-trace", 1000), "test-req-4").expect_err("bad trace");
    assert_eq!(err.status, 400);
}

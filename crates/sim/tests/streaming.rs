//! Bit-identity gates for the streaming replay paths: a trace replayed
//! chunk-by-chunk (from memory or from an on-disk v2 file) must produce
//! counters, refs and violation text byte-identical to the in-memory
//! `run_indexed`/`run_sharded` paths, for every scheme and filter.

use dircc_check::default_kinds;
use dircc_core::build;
use dircc_sim::engine::{
    run_chunked, run_indexed, run_sharded, run_sharded_spilled, shard_stream, spill_sharded,
    RunConfig,
};
use dircc_trace::chunk::{ChunkedReader, ChunkedWriter, SliceChunks};
use dircc_trace::gen::{Generator, Profile};
use dircc_trace::{BlockInterner, TraceFilter, TraceRecord, TraceStore};
use std::path::PathBuf;

fn store() -> TraceStore {
    TraceStore::new(
        vec![
            Profile::pops().with_total_refs(8_000),
            Profile::thor().with_total_refs(8_000),
            Profile::pero().with_total_refs(8_000),
        ],
        1988,
    )
}

fn cfg() -> RunConfig {
    RunConfig { verify: true, ..RunConfig::default().with_process_sharing() }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dircc_streaming_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn chunked_replay_is_bit_identical_for_every_scheme_trace_and_filter() {
    let store = store();
    let cfg = cfg();
    for trace in 0..store.num_traces() {
        for filter in [TraceFilter::Full, TraceFilter::ExcludeLockSpins] {
            let records = store.records(trace, filter);
            let dense = store.dense_blocks(trace, filter, cfg.geometry);
            let num_blocks = store.interner(trace, cfg.geometry).num_blocks();
            for kind in default_kinds() {
                let mut p = build(kind, 4);
                let serial = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg).unwrap();
                // Odd chunk size exercises chunk-boundary handling. The
                // streaming path interns its own (filtered) stream order
                // while the store's dense ids come from the full stream —
                // both are bijective renamings, so counters must agree.
                let mut source = SliceChunks::new(&records[..], 997);
                let mut p = build(kind, 4);
                let streamed = run_chunked(p.as_mut(), &mut source, &cfg).unwrap();
                assert_eq!(serial.counters, streamed.counters, "{kind} trace {trace} {filter:?}");
                assert_eq!(serial.refs, streamed.refs);
                assert_eq!(serial.violations, streamed.violations);
            }
        }
    }
}

#[test]
fn v2_file_replay_is_bit_identical_to_in_memory() {
    let store = store();
    let cfg = cfg();
    let records = store.records(1, TraceFilter::Full);
    let dense = store.dense_blocks(1, TraceFilter::Full, cfg.geometry);
    let num_blocks = store.interner(1, cfg.geometry).num_blocks();
    // Encode to an in-memory v2 "file" with a small chunk size, then
    // stream it back through the engine.
    let mut w = ChunkedWriter::with_chunk_records(Vec::new(), 1_024);
    w.write_all(records.iter()).unwrap();
    let bytes = w.finish().unwrap();
    for kind in default_kinds() {
        let mut p = build(kind, 4);
        let serial = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg).unwrap();
        let mut reader = ChunkedReader::new(&bytes[..]).unwrap();
        let mut p = build(kind, 4);
        let streamed = run_chunked(p.as_mut(), &mut reader, &cfg).unwrap();
        assert_eq!(serial.counters, streamed.counters, "{kind}");
        assert_eq!(serial.refs, streamed.refs);
        assert_eq!(serial.violations, streamed.violations);
    }
}

#[test]
fn spilled_sharded_replay_is_bit_identical_to_in_memory_sharding() {
    let store = store();
    let cfg = cfg();
    let records = store.records(0, TraceFilter::Full);
    let dense = store.dense_blocks(0, TraceFilter::Full, cfg.geometry);
    let num_blocks = store.interner(0, cfg.geometry).num_blocks();
    let dir = tmpdir("sharded");
    for shards in [1, 2, 3, 8] {
        let mut source = SliceChunks::new(&records[..], 513);
        let spilled = spill_sharded(&mut source, shards, &cfg, &dir).unwrap();
        let sharded = shard_stream(&records, &dense, num_blocks, shards, &cfg);
        for kind in default_kinds() {
            let mem = run_sharded(kind, 4, &sharded, &cfg).unwrap();
            let ooc = run_sharded_spilled(kind, 4, &spilled, &cfg).unwrap();
            assert_eq!(mem.counters, ooc.counters, "{kind} at {shards} shards");
            assert_eq!(mem.refs, ooc.refs);
            assert_eq!(mem.violations, ooc.violations);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spilled_finite_cache_sharding_matches_in_memory() {
    use dircc_cache::FiniteCacheConfig;
    use dircc_core::ProtocolKind;
    let records: Vec<TraceRecord> =
        Generator::new(Profile::pops().with_total_refs(5_000), 3).collect();
    let cfg = RunConfig {
        verify: true,
        ..RunConfig::default().with_finite_caches(FiniteCacheConfig::new(4, 2))
    };
    let interner = BlockInterner::from_records(records.iter(), cfg.geometry);
    let dense = interner.dense_stream(&records);
    let num_blocks = interner.num_blocks();
    let dir = tmpdir("finite");
    for shards in [2, 4, 8] {
        let mut source = SliceChunks::new(&records[..], 769);
        let spilled = spill_sharded(&mut source, shards, &cfg, &dir).unwrap();
        let sharded = shard_stream(&records, &dense, num_blocks, shards, &cfg);
        assert_eq!(spilled.num_shards(), sharded.num_shards(), "same set-count clamping");
        for kind in [ProtocolKind::Dir0B, ProtocolKind::Berkeley, ProtocolKind::Mesi] {
            let mem = run_sharded(kind, 4, &sharded, &cfg).unwrap();
            let ooc = run_sharded_spilled(kind, 4, &spilled, &cfg).unwrap();
            assert_eq!(mem.counters, ooc.counters, "{kind} at {shards} shards");
            assert_eq!(mem.violations, ooc.violations);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_v2_stream_is_an_error_not_a_short_trace() {
    let records: Vec<TraceRecord> =
        Generator::new(Profile::pops().with_total_refs(2_000), 7).collect();
    let mut w = ChunkedWriter::with_chunk_records(Vec::new(), 256);
    w.write_all(records.iter()).unwrap();
    let bytes = w.finish().unwrap();
    // Drop the footer and half the final chunk: the engine must surface a
    // read error, not silently replay a shorter trace.
    let cut = bytes.len() - 40;
    let mut reader = ChunkedReader::new(&bytes[..cut]).unwrap();
    let mut p = build(dircc_check::default_kinds()[0], 4);
    let err = run_chunked(p.as_mut(), &mut reader, &RunConfig::default()).unwrap_err();
    assert!(err.contains("trace read failed"), "got: {err}");
}

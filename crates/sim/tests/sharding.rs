//! Shard-equivalence properties of the block-sharded replay engine.
//!
//! The tentpole guarantee: for every protocol, `run_sharded` at any shard
//! count produces **bit-identical** results to the serial `run_indexed` —
//! same [`EventCounters`] (first-ref classification included: the
//! `rm_first_ref`/`wm_first_ref` counters and the first-ref events they
//! classify are part of the counter state), same verifier verdicts, same
//! errors. Random op sequences probe the engine across every scheme at
//! shards ∈ {1, 2, 3, 8}, with and without finite caches (set-index
//! sharding); a pinned matrix covers every scheme × trace × filter
//! through the `Workbench`.

use dircc_cache::FiniteCacheConfig;
use dircc_core::{build_sized, ProtocolKind};
use dircc_sim::{run_indexed, run_sharded, shard_stream, RunConfig, TraceFilter, Workbench};
use dircc_trace::{BlockInterner, TraceRecord};
use dircc_types::{AccessKind, Address, CpuId, ProcessId};
use proptest::prelude::*;

const CPUS: usize = 4;

/// Every taxonomy point the simulator replays.
const KINDS: [ProtocolKind; 13] = [
    ProtocolKind::DirNb { pointers: 1 },
    ProtocolKind::DirNb { pointers: 2 },
    ProtocolKind::DirNb { pointers: 4 },
    ProtocolKind::Dir0B,
    ProtocolKind::DirB { pointers: 1 },
    ProtocolKind::CodedSet,
    ProtocolKind::Tang,
    ProtocolKind::YenFu,
    ProtocolKind::Wti,
    ProtocolKind::Dragon,
    ProtocolKind::Berkeley,
    ProtocolKind::WriteOnce,
    ProtocolKind::Firefly,
];

#[derive(Debug, Clone, Copy)]
struct Op {
    cpu: u16,
    kind: u8,
    block: u64,
}

impl Op {
    fn record(self) -> TraceRecord {
        let kind = match self.kind {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => AccessKind::InstrFetch,
        };
        TraceRecord::new(
            CpuId::new(self.cpu),
            ProcessId::new(self.cpu),
            kind,
            Address::new(self.block * 16),
        )
    }
}

fn arb_trace() -> impl Strategy<Value = Vec<TraceRecord>> {
    // Reads and writes dominate; block range 0..24 keeps contention high
    // enough that shards genuinely interleave per-block histories.
    prop::collection::vec(
        (0..CPUS as u16, 0u8..5, 0u64..24).prop_map(|(cpu, k, block)| {
            Op { cpu, kind: if k >= 2 { k % 2 } else { k }, block }.record()
        }),
        20..200,
    )
}

/// Serial vs sharded replay of one trace under one config, for one kind.
fn assert_shard_equivalent(kind: ProtocolKind, records: &[TraceRecord], cfg: &RunConfig) {
    let interner = BlockInterner::from_records(records.iter(), cfg.geometry);
    let dense = interner.dense_stream(records);
    let num_blocks = interner.num_blocks();
    let mut p = build_sized(kind, CPUS, num_blocks);
    let serial = run_indexed(p.as_mut(), records, &dense, num_blocks, cfg);
    for shards in [1usize, 2, 3, 8] {
        let sharded = shard_stream(records, &dense, num_blocks, shards, cfg);
        let split = run_sharded(kind, CPUS, &sharded, cfg);
        match (&serial, &split) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.counters, b.counters, "{kind} counters at {shards} shards");
                assert_eq!(a.refs, b.refs, "{kind} refs at {shards} shards");
                assert_eq!(a.violations, b.violations, "{kind} verdicts at {shards} shards");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{kind} error at {shards} shards"),
            (a, b) => panic!("{kind} at {shards} shards: serial {a:?} vs sharded {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Infinite caches + verifier: every scheme, every shard count, the
    /// full result (counters, first-ref classes, verdicts) is identical.
    #[test]
    fn sharded_replay_matches_serial_on_random_traces(records in arb_trace()) {
        let cfg = RunConfig { verify: true, ..RunConfig::default().with_process_sharing() };
        for kind in KINDS {
            assert_shard_equivalent(kind, &records, &cfg);
        }
    }

    /// Finite caches shard by set index: eviction order, write-backs and
    /// verifier verdicts survive sharding exactly.
    #[test]
    fn set_sharded_finite_replay_matches_serial(records in arb_trace()) {
        let cfg = RunConfig {
            verify: true,
            ..RunConfig::default().with_finite_caches(FiniteCacheConfig::new(4, 2))
        };
        for kind in [ProtocolKind::Dir0B, ProtocolKind::Berkeley, ProtocolKind::Mesi] {
            assert_shard_equivalent(kind, &records, &cfg);
        }
    }
}

/// Pinned matrix: every scheme × every trace × both filters through the
/// `Workbench`, shards=4 vs shards=1, must agree counter for counter
/// (the `dircc bench --shards N` byte-identity guarantee).
#[test]
fn workbench_shard_matrix_is_bit_identical() {
    let serial = Workbench::paper_scaled(20_000, 1988);
    let sharded = Workbench::paper_scaled(20_000, 1988).with_shards(4);
    for kind in KINDS {
        for trace in 0..serial.num_traces() {
            for filter in TraceFilter::ALL {
                let a = serial.counters(kind, trace, filter);
                let b = sharded.counters(kind, trace, filter);
                assert_eq!(*a, *b, "{kind} trace {trace} {filter:?} diverged at 4 shards");
            }
        }
    }
}

/// Shard counts beyond the block count degrade gracefully: empty shards
/// replay zero records and merge an empty counter set.
#[test]
fn more_shards_than_blocks_still_merges_exactly() {
    let records: Vec<TraceRecord> = (0..40u64)
        .map(|i| Op { cpu: (i % 4) as u16, kind: (i % 2) as u8, block: i % 3 }.record())
        .collect();
    let cfg = RunConfig { verify: true, ..RunConfig::default() };
    let interner = BlockInterner::from_records(records.iter(), cfg.geometry);
    let dense = interner.dense_stream(&records);
    let num_blocks = interner.num_blocks();
    assert!(num_blocks < 8);
    let mut p = build_sized(ProtocolKind::Mesi, CPUS, num_blocks);
    let serial = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg).unwrap();
    let sharded = shard_stream(&records, &dense, num_blocks, 8, &cfg);
    let split = run_sharded(ProtocolKind::Mesi, CPUS, &sharded, &cfg).unwrap();
    assert_eq!(serial.counters, split.counters);
    assert_eq!(split.counters.total(), 40);
}

//! Pins the tentpole invariant of the dense-replay rewrite: interned
//! (dense-id) replay is bit-identical to on-the-fly replay for every
//! paper workload, protocol family, filter and cache model.

use dircc_core::{build, build_sized, ProtocolKind};
use dircc_sim::engine::{run, run_indexed, RunConfig};
use dircc_sim::{TraceFilter, Workbench};
use dircc_trace::gen::Profile;

const KINDS: &[ProtocolKind] = &[
    ProtocolKind::DirNb { pointers: 1 },
    ProtocolKind::Dir0B,
    ProtocolKind::DirB { pointers: 1 },
    ProtocolKind::CodedSet,
    ProtocolKind::Wti,
    ProtocolKind::Dragon,
    ProtocolKind::Berkeley,
];

#[test]
fn indexed_replay_matches_streaming_replay_on_all_workloads() {
    let wb = Workbench::paper_scaled(40_000, 5);
    let store = wb.store();
    let cfg = RunConfig::default().with_process_sharing();
    for trace in 0..wb.num_traces() {
        for filter in TraceFilter::ALL {
            let records = store.records(trace, filter);
            let dense = store.dense_blocks(trace, filter, cfg.geometry);
            let num_blocks = store.interner(trace, cfg.geometry).num_blocks();
            for &kind in KINDS {
                let mut raw = build(kind, wb.n_caches());
                let a = run(raw.as_mut(), records.iter().copied(), &cfg).expect("streaming run");
                let mut idx = build_sized(kind, wb.n_caches(), num_blocks);
                let b = run_indexed(idx.as_mut(), &records, &dense, num_blocks, &cfg)
                    .expect("indexed run");
                assert_eq!(
                    a.counters, b.counters,
                    "{kind} on trace {trace} {filter:?}: dense replay diverged"
                );
                assert_eq!(a.refs, b.refs);
            }
        }
    }
}

#[test]
fn indexed_replay_matches_with_finite_caches_and_verifier() {
    use dircc_cache::FiniteCacheConfig;
    let wb = Workbench::with_profiles(vec![Profile::thor().with_total_refs(30_000)], 9);
    let store = wb.store();
    // Finite tag stores select sets from raw address bits, so eviction
    // patterns must survive the renaming untouched.
    let cfg = RunConfig {
        verify: true,
        ..RunConfig::default()
            .with_process_sharing()
            .with_finite_caches(FiniteCacheConfig::new(64, 2))
    };
    let records = store.records(0, TraceFilter::Full);
    let dense = store.dense_blocks(0, TraceFilter::Full, cfg.geometry);
    let num_blocks = store.interner(0, cfg.geometry).num_blocks();
    for &kind in KINDS {
        let mut raw = build(kind, wb.n_caches());
        let a = run(raw.as_mut(), records.iter().copied(), &cfg).expect("streaming run");
        let mut idx = build_sized(kind, wb.n_caches(), num_blocks);
        let b = run_indexed(idx.as_mut(), &records, &dense, num_blocks, &cfg).expect("indexed run");
        assert_eq!(a.counters, b.counters, "{kind}: finite-cache dense replay diverged");
        assert!(a.violations.is_empty(), "{kind}: {:?}", a.violations);
        assert!(b.violations.is_empty(), "{kind}: {:?}", b.violations);
        assert!(a.counters.cache_evictions() > 0, "{kind}: thrash must evict");
    }
}

#[test]
fn misaligned_dense_stream_is_an_error() {
    let wb = Workbench::paper_scaled(1_000, 1);
    let store = wb.store();
    let cfg = RunConfig::default().with_process_sharing();
    let records = store.records(0, TraceFilter::Full);
    let dense = store.dense_blocks(0, TraceFilter::Full, cfg.geometry);
    let mut p = build(ProtocolKind::Dir0B, wb.n_caches());
    let err = run_indexed(p.as_mut(), &records, &dense[1..], 10, &cfg).unwrap_err();
    assert!(err.contains("dense-id stream"), "{err}");
}

#[test]
fn out_of_range_cache_error_reports_the_record() {
    use dircc_trace::TraceRecord;
    use dircc_types::{AccessKind, Address, CpuId, ProcessId};
    let trace = vec![TraceRecord::new(
        CpuId::new(7),
        ProcessId::new(9),
        AccessKind::Write,
        Address::new(0x1230),
    )];
    let mut p = build(ProtocolKind::Dir0B, 4);
    let err = run(p.as_mut(), trace, &RunConfig::default()).unwrap_err();
    for needle in ["cpu7", "pid9", "Write", "0x1230", "4 caches"] {
        assert!(err.contains(needle), "error {err:?} must mention {needle:?}");
    }
}

//! End-to-end tests of the `dircc` binary.

use std::process::Command;

fn dircc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dircc"))
}

#[test]
fn table1_prints_the_paper_constants() {
    let out = dircc().args(["table1"]).output().expect("run dircc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Wait for Directory"));
    assert!(text.contains("Transfer 1 data word"));
}

#[test]
fn table4_runs_at_reduced_scale() {
    let out = dircc()
        .args(["table4", "--refs", "30000", "--seed", "7"])
        .output()
        .expect("run dircc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rm-blk-cln"));
    assert!(text.contains("Dir1NB"));
    assert!(text.contains("Dragon"));
}

#[test]
fn gen_stats_sharing_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dircc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.dcct");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["gen", "--profile", "pero", "--refs", "20000", "--out", path_s])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 20000 references"));

    let out = dircc().args(["stats", "--in", path_s]).output().expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("references : 20000"));
    assert!(text.contains("cpus       : 4"));

    let out = dircc().args(["sharing", "--in", path_s]).output().expect("run sharing");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("refs to shared"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dircc().args(["frobnicate"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_flag_value_fails() {
    let out = dircc().args(["table1", "--refs"]).output().expect("run dircc");
    assert!(!out.status.success());
}

#[test]
fn determinism_across_invocations() {
    let run = || {
        let out = dircc()
            .args(["figure5", "--refs", "20000", "--seed", "3"])
            .output()
            .expect("run dircc");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(run(), run());
}

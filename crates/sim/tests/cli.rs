//! End-to-end tests of the `dircc` binary.

use std::process::Command;

fn dircc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dircc"))
}

#[test]
fn table1_prints_the_paper_constants() {
    let out = dircc().args(["table1"]).output().expect("run dircc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Wait for Directory"));
    assert!(text.contains("Transfer 1 data word"));
}

#[test]
fn table4_runs_at_reduced_scale() {
    let out =
        dircc().args(["table4", "--refs", "30000", "--seed", "7"]).output().expect("run dircc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rm-blk-cln"));
    assert!(text.contains("Dir1NB"));
    assert!(text.contains("Dragon"));
}

#[test]
fn gen_stats_sharing_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dircc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.dcct");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["gen", "--profile", "pero", "--refs", "20000", "--out", path_s])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 20000 references"));

    let out = dircc().args(["stats", "--in", path_s]).output().expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("references : 20000"));
    assert!(text.contains("cpus       : 4"));

    let out = dircc().args(["sharing", "--in", path_s]).output().expect("run sharing");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("refs to shared"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dircc().args(["frobnicate"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_flag_value_fails() {
    let out = dircc().args(["table1", "--refs"]).output().expect("run dircc");
    assert!(!out.status.success());
}

/// Every experiment subcommand runs to success and prints something at a
/// tiny trace scale.
#[test]
fn every_experiment_subcommand_smokes() {
    let commands = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "figure1",
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "sensitivity",
        "spinlock",
        "berkeley",
        "scalability",
        "system",
        "finitecache",
        "footnote2",
        "storage",
        "scaling",
        "network",
        "blocksize",
    ];
    for cmd in commands {
        let out = dircc()
            .args([cmd, "--refs", "3000", "--seed", "7", "--jobs", "2"])
            .output()
            .expect("run dircc");
        assert!(out.status.success(), "{cmd} failed: {}", String::from_utf8_lossy(&out.stderr));
        assert!(!out.stdout.is_empty(), "{cmd} printed nothing");
    }
}

/// `gen`/`stats`/`sharing` smoke at tiny scale (the trace-file commands).
#[test]
fn trace_file_subcommands_smoke() {
    let dir = std::env::temp_dir().join(format!("dircc_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.dcct");
    let path_s = path.to_str().unwrap();
    let out = dircc().args(["gen", "--refs", "3000", "--out", path_s]).output().expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for cmd in ["stats", "sharing"] {
        let out = dircc().args([cmd, "--in", path_s]).output().expect("run dircc");
        assert!(out.status.success(), "{cmd} failed");
        assert!(!out.stdout.is_empty(), "{cmd} printed nothing");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--jobs` must change wall-clock only: stdout is byte-identical for any
/// worker count (the timing summary goes to stderr).
#[test]
fn jobs_do_not_change_stdout() {
    let run = |jobs: &str| {
        let out = dircc()
            .args(["all", "--refs", "4000", "--seed", "3", "--jobs", jobs])
            .output()
            .expect("run dircc");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    assert_eq!(run("1"), run("8"), "stdout must not depend on --jobs");
}

/// The `all` output includes every experiment, footnote2 included (it was
/// once missing from the hardcoded list).
#[test]
fn all_covers_footnote2() {
    let out = dircc().args(["all", "--refs", "3000", "--seed", "3"]).output().expect("run dircc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("footnote 2"), "all must include the footnote2 study");
}

/// A workbench run reports per-run timings on stderr.
#[test]
fn timing_summary_lands_on_stderr() {
    let out =
        dircc().args(["table4", "--refs", "3000", "--seed", "7"]).output().expect("run dircc");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("run timings"), "stderr: {err}");
    assert!(err.contains("refs/sec"));
    assert!(!String::from_utf8_lossy(&out.stdout).contains("run timings"));
}

/// `--in`/`--out` must match the subcommand's data direction.
#[test]
fn wrong_direction_io_flags_are_rejected() {
    let cases: [(&[&str], &str); 3] = [
        (&["gen", "--in", "t.dcct"], "--out"),
        (&["stats", "--out", "t.dcct"], "--in"),
        (&["table1", "--out", "t.dcct"], "no --in/--out"),
    ];
    for (args, expect) in cases {
        let out = dircc().args(args).output().expect("run dircc");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(expect), "{args:?}: expected {expect:?} in {err}");
    }
}

/// The usage text lists every subcommand (it was once a stale hand-written
/// list missing footnote2, network, sharing, system and storage).
#[test]
fn usage_lists_every_subcommand() {
    let out = dircc().output().expect("run dircc");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    for cmd in [
        "table1",
        "table5",
        "figure1",
        "figure5",
        "sensitivity",
        "spinlock",
        "berkeley",
        "scalability",
        "system",
        "finitecache",
        "footnote2",
        "storage",
        "scaling",
        "network",
        "blocksize",
        "all",
        "bench",
        "benchcmp",
        "check",
        "gen",
        "stats",
        "sharing",
    ] {
        assert!(err.contains(cmd), "usage must mention {cmd}: {err}");
    }
    assert!(err.contains("--jobs"));
}

#[test]
fn determinism_across_invocations() {
    let run = || {
        let out = dircc()
            .args(["figure5", "--refs", "20000", "--seed", "3"])
            .output()
            .expect("run dircc");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(run(), run());
}

/// `dircc bench --smoke` writes the machine-readable throughput report
/// with every schema field present, plus the totals row.
#[test]
fn bench_smoke_writes_the_replay_report() {
    let dir = std::env::temp_dir().join(format!("dircc_bench_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_replay.json");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["bench", "--smoke", "--jobs", "2", "--out", path_s])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let headline = String::from_utf8_lossy(&out.stdout);
    assert!(headline.contains("bench: 42 runs"), "{headline}");
    assert!(headline.contains("refs/sec"), "{headline}");

    let json = std::fs::read_to_string(&path).expect("report written");
    for field in [
        "\"runs\"",
        "\"scheme\"",
        "\"trace\"",
        "\"filter\"",
        "\"refs\"",
        "\"wall_ms\"",
        "\"refs_per_sec\"",
        "\"totals\"",
    ] {
        assert!(json.contains(field), "report must carry {field}: {json}");
    }
    assert!(json.contains("\"Dir1NB\"") && json.contains("\"POPS\""), "{json}");
    assert!(json.trim_end().ends_with('}'), "well-formed JSON object");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--smoke` belongs to bench/benchcmp/check; other commands reject it.
#[test]
fn smoke_flag_is_rejected_outside_bench() {
    let out = dircc().args(["table1", "--smoke"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--smoke only applies to bench"));
}

/// `dircc bench --out` creates missing parent directories instead of
/// failing (it used to surface a raw ENOENT).
#[test]
fn bench_out_creates_parent_directories() {
    let dir = std::env::temp_dir().join(format!("dircc_bench_mkdir_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("nested/deeper/BENCH.json");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["bench", "--refs", "2000", "--jobs", "2", "--out", path_s])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(path.exists(), "report must land at the nested path");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `dircc check --smoke` model-checks every scheme and prints the
/// PASS/FAIL table.
#[test]
fn check_smoke_passes_every_scheme() {
    let out = dircc().args(["check", "--smoke", "--jobs", "2"]).output().expect("run check");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("model check: all 12 scheme(s) PASS"), "{text}");
    for scheme in ["Dir1NB", "Dir0B", "Dir1B", "DirCodedNB", "Tang", "YenFu", "WTI", "MESI"] {
        assert!(text.contains(scheme), "table must list {scheme}: {text}");
    }
    assert!(!text.contains("FAIL"), "{text}");
}

/// `--scheme` narrows the check to one protocol; unknown names error out
/// with the full list.
#[test]
fn check_scheme_filter() {
    let out = dircc()
        .args(["check", "--scheme", "mesi", "--depth", "4", "--jobs", "1"])
        .output()
        .expect("run check");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MESI") && text.contains("all 1 scheme(s) PASS"), "{text}");

    let out = dircc().args(["check", "--scheme", "bogus"]).output().expect("run check");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheme bogus") && err.contains("Berkeley"), "{err}");
}

/// The model-check bounds flags belong to `check` alone.
#[test]
fn check_flags_are_rejected_elsewhere() {
    for flag in ["--cpus", "--blocks", "--depth"] {
        let out = dircc().args(["table1", flag, "2"]).output().expect("run dircc");
        assert!(!out.status.success(), "{flag} must be rejected outside check");
        assert!(String::from_utf8_lossy(&out.stderr).contains("only apply to check"));
    }
}

/// `dircc benchcmp` passes against a fresh baseline and fails once a
/// deterministic counter is perturbed.
#[test]
fn benchcmp_detects_injected_drift() {
    let dir = std::env::temp_dir().join(format!("dircc_benchcmp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_smoke.json");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["bench", "--refs", "2000", "--jobs", "2", "--out", path_s])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = dircc()
        .args(["benchcmp", "--refs", "2000", "--jobs", "2", "--in", path_s])
        .output()
        .expect("run benchcmp");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("benchcmp: PASS"));

    // Perturb one run's refs counter: the gate must fail loudly.
    let json = std::fs::read_to_string(&path).unwrap();
    let drifted = json.replacen("\"refs\": 2000,", "\"refs\": 1999,", 1);
    assert_ne!(json, drifted, "the perturbation must hit a run row");
    std::fs::write(&path, drifted).unwrap();

    let out = dircc()
        .args(["benchcmp", "--refs", "2000", "--jobs", "2", "--in", path_s])
        .output()
        .expect("run benchcmp");
    assert!(!out.status.success(), "drifted baseline must fail the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("drift"), "names the drift");

    std::fs::remove_dir_all(&dir).unwrap();
}

//! End-to-end tests of the `dircc` binary.

use std::process::Command;

fn dircc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dircc"))
}

#[test]
fn table1_prints_the_paper_constants() {
    let out = dircc().args(["table1"]).output().expect("run dircc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Wait for Directory"));
    assert!(text.contains("Transfer 1 data word"));
}

#[test]
fn table4_runs_at_reduced_scale() {
    let out =
        dircc().args(["table4", "--refs", "30000", "--seed", "7"]).output().expect("run dircc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rm-blk-cln"));
    assert!(text.contains("Dir1NB"));
    assert!(text.contains("Dragon"));
}

#[test]
fn gen_stats_sharing_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dircc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.dcct");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["gen", "--profile", "pero", "--refs", "20000", "--out", path_s])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 20000 references"));

    let out = dircc().args(["stats", "--in", path_s]).output().expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("references : 20000"));
    assert!(text.contains("cpus       : 4"));

    let out = dircc().args(["sharing", "--in", path_s]).output().expect("run sharing");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("refs to shared"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dircc().args(["frobnicate"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_flag_value_fails() {
    let out = dircc().args(["table1", "--refs"]).output().expect("run dircc");
    assert!(!out.status.success());
}

/// Every experiment subcommand runs to success and prints something at a
/// tiny trace scale.
#[test]
fn every_experiment_subcommand_smokes() {
    let commands = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "figure1",
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "sensitivity",
        "spinlock",
        "berkeley",
        "scalability",
        "system",
        "finitecache",
        "footnote2",
        "storage",
        "scaling",
        "network",
        "blocksize",
    ];
    for cmd in commands {
        let out = dircc()
            .args([cmd, "--refs", "3000", "--seed", "7", "--jobs", "2"])
            .output()
            .expect("run dircc");
        assert!(out.status.success(), "{cmd} failed: {}", String::from_utf8_lossy(&out.stderr));
        assert!(!out.stdout.is_empty(), "{cmd} printed nothing");
    }
}

/// `gen`/`stats`/`sharing` smoke at tiny scale (the trace-file commands).
#[test]
fn trace_file_subcommands_smoke() {
    let dir = std::env::temp_dir().join(format!("dircc_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.dcct");
    let path_s = path.to_str().unwrap();
    let out = dircc().args(["gen", "--refs", "3000", "--out", path_s]).output().expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for cmd in ["stats", "sharing"] {
        let out = dircc().args([cmd, "--in", path_s]).output().expect("run dircc");
        assert!(out.status.success(), "{cmd} failed");
        assert!(!out.stdout.is_empty(), "{cmd} printed nothing");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--jobs` must change wall-clock only: stdout is byte-identical for any
/// worker count (the timing summary goes to stderr).
#[test]
fn jobs_do_not_change_stdout() {
    let run = |jobs: &str| {
        let out = dircc()
            .args(["all", "--refs", "4000", "--seed", "3", "--jobs", jobs])
            .output()
            .expect("run dircc");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    assert_eq!(run("1"), run("8"), "stdout must not depend on --jobs");
}

/// `--shards` must change wall-clock only: `dircc all` stdout is
/// byte-identical across every (--jobs, --shards) combination.
#[test]
fn shards_do_not_change_stdout() {
    let run = |jobs: &str, shards: &str| {
        let out = dircc()
            .args(["all", "--refs", "4000", "--seed", "3", "--jobs", jobs, "--shards", shards])
            .output()
            .expect("run dircc");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let reference = run("1", "1");
    for (jobs, shards) in [("1", "4"), ("2", "2"), ("8", "3")] {
        assert_eq!(
            reference,
            run(jobs, shards),
            "stdout must not depend on --jobs {jobs} --shards {shards}"
        );
    }
}

/// `--shards` belongs to the replaying commands; trace-file and profile
/// commands reject it (profile with the windowed-sampling explanation).
#[test]
fn shards_flag_validation() {
    let out = dircc().args(["table1", "--shards", "0"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards must be at least 1"));

    let out = dircc().args(["gen", "--shards", "2"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards only applies"));

    let out = dircc().args(["profile", "all", "--shards", "2"]).output().expect("run dircc");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("profile rejects --shards"), "{err}");
    assert!(err.contains("one shard"), "explains the windowed pin: {err}");
}

/// A pre-shards baseline fails `benchcmp` with a readable schema error,
/// not a drift list.
#[test]
fn benchcmp_rejects_baseline_without_shards_field() {
    let dir = std::env::temp_dir().join(format!("dircc_benchcmp_old_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("OLD.json");

    let out = dircc()
        .args(["bench", "--refs", "2000", "--jobs", "2", "--out", path.to_str().unwrap()])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Strip the shards field, simulating a report from before the schema
    // carried it.
    let json = std::fs::read_to_string(&path).unwrap();
    let old = json.replace("\"shards\": 1, ", "");
    assert_ne!(json, old);
    std::fs::write(&path, old).unwrap();

    let out = dircc()
        .args(["benchcmp", "--refs", "2000", "--jobs", "2", "--in", path.to_str().unwrap()])
        .output()
        .expect("run benchcmp");
    assert!(!out.status.success(), "old-schema baseline must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lack the \"shards\" field"), "{err}");
    assert!(err.contains("regenerate it with `dircc bench`"), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `all` output includes every experiment, footnote2 included (it was
/// once missing from the hardcoded list).
#[test]
fn all_covers_footnote2() {
    let out = dircc().args(["all", "--refs", "3000", "--seed", "3"]).output().expect("run dircc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("footnote 2"), "all must include the footnote2 study");
}

/// With `--verbose`, a workbench run reports per-run timings on stderr.
#[test]
fn timing_summary_lands_on_stderr() {
    let out = dircc()
        .args(["table4", "--refs", "3000", "--seed", "7", "--verbose"])
        .output()
        .expect("run dircc");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("run timings"), "stderr: {err}");
    assert!(err.contains("refs/sec"));
    assert!(!String::from_utf8_lossy(&out.stdout).contains("run timings"));
}

/// Without `--verbose`, the timing summary is suppressed entirely.
#[test]
fn timing_summary_needs_verbose() {
    let out =
        dircc().args(["table4", "--refs", "3000", "--seed", "7"]).output().expect("run dircc");
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("run timings"), "quiet by default");
}

/// `--in`/`--out` must match the subcommand's data direction.
#[test]
fn wrong_direction_io_flags_are_rejected() {
    let cases: [(&[&str], &str); 3] = [
        (&["gen", "--in", "t.dcct"], "--out"),
        (&["stats", "--out", "t.dcct"], "--in"),
        (&["table1", "--out", "t.dcct"], "no --in/--out"),
    ];
    for (args, expect) in cases {
        let out = dircc().args(args).output().expect("run dircc");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(expect), "{args:?}: expected {expect:?} in {err}");
    }
}

/// The usage text lists every subcommand (it was once a stale hand-written
/// list missing footnote2, network, sharing, system and storage).
#[test]
fn usage_lists_every_subcommand() {
    let out = dircc().output().expect("run dircc");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    for cmd in [
        "table1",
        "table5",
        "figure1",
        "figure5",
        "sensitivity",
        "spinlock",
        "berkeley",
        "scalability",
        "system",
        "finitecache",
        "footnote2",
        "storage",
        "scaling",
        "network",
        "blocksize",
        "all",
        "bench",
        "benchcmp",
        "check",
        "profile",
        "serve",
        "submit",
        "top",
        "gen",
        "record",
        "replay",
        "stats",
        "sharing",
    ] {
        assert!(err.contains(cmd), "usage must mention {cmd}: {err}");
    }
    assert!(err.contains("--jobs"));
    assert!(err.contains("--window") && err.contains("--spans") && err.contains("--verbose"));
    assert!(err.contains("--serve") && err.contains("--expect-cache") && err.contains("--addr"));
}

/// The serve/submit/bench-over-HTTP flags are gated to their commands,
/// and `submit` insists on the flags it cannot run without.
#[test]
fn serve_flags_are_validated() {
    let cases: [(&[&str], &str); 11] = [
        (&["replay", "--addr", "127.0.0.1:0"], "only apply to serve"),
        (&["table1", "--serve", "http://x"], "only applies to submit, bench and top"),
        (&["replay", "--op", "run"], "only apply to submit"),
        (&["replay", "--clients", "4"], "only apply to bench"),
        (&["replay", "--log-json"], "only apply to serve"),
        (&["serve", "--once"], "only apply to top"),
        (&["top", "--serve", "http://x", "--interval", "0"], "--interval must be"),
        (&["submit", "--serve", "http://x", "--op", "teapot"], "--op must be"),
        (&["submit", "--serve", "http://x", "--expect-cache", "warm"], "--expect-cache must be"),
        (&["submit", "--op", "run"], "needs --serve"),
        (&["submit", "--serve", "http://127.0.0.1:1", "--op", "run"], "needs --scheme"),
    ];
    for (args, expect) in cases {
        let out = dircc().args(args).output().expect("run dircc");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(expect), "{args:?}: expected {expect:?} in {err}");
    }
}

/// `--json` is replay-only, needs the in-memory profile mode, and
/// `bench --serve` rejects the local-bench tuning flags.
#[test]
fn replay_json_and_bench_serve_flag_gating() {
    let cases: [(&[&str], &str); 3] = [
        (&["gen", "--json"], "only applies to replay"),
        (&["replay", "--json", "--in", "t.dcct"], "drop --in"),
        (&["bench", "--serve", "http://127.0.0.1:1", "--repeat", "5"], "local replay bench"),
    ];
    for (args, expect) in cases {
        let out = dircc().args(args).output().expect("run dircc");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(expect), "{args:?}: expected {expect:?} in {err}");
    }
}

/// `replay --json` emits one parseable response line per scheme with
/// the canonical job echo — the serve daemon's `/run` schema.
#[test]
fn replay_json_prints_the_run_response_schema() {
    let out = dircc()
        .args(["replay", "--json", "--profile", "pops", "--refs", "5000", "--scheme", "Dir1NB"])
        .output()
        .expect("run dircc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 1, "one line per scheme: {text}");
    assert!(text.starts_with(r#"{"job": {"scheme": "Dir1NB", "trace": "POPS", "refs": 5000"#));
    assert!(text.contains("\"digest\": \""));
    assert!(text.contains("\"cycles_per_ref\": "));
}

#[test]
fn determinism_across_invocations() {
    let run = || {
        let out = dircc()
            .args(["figure5", "--refs", "20000", "--seed", "3"])
            .output()
            .expect("run dircc");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(run(), run());
}

/// `dircc bench --smoke` writes the machine-readable throughput report
/// with every schema field present, plus the totals row.
#[test]
fn bench_smoke_writes_the_replay_report() {
    let dir = std::env::temp_dir().join(format!("dircc_bench_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_replay.json");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["bench", "--smoke", "--jobs", "2", "--out", path_s])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let headline = String::from_utf8_lossy(&out.stdout);
    assert!(headline.contains("bench: 42 runs"), "{headline}");
    assert!(headline.contains("refs/sec"), "{headline}");

    let json = std::fs::read_to_string(&path).expect("report written");
    for field in [
        "\"runs\"",
        "\"scheme\"",
        "\"trace\"",
        "\"filter\"",
        "\"shards\"",
        "\"refs\"",
        "\"wall_ms\"",
        "\"refs_per_sec\"",
        "\"totals\"",
    ] {
        assert!(json.contains(field), "report must carry {field}: {json}");
    }
    assert!(json.contains("\"Dir1NB\"") && json.contains("\"POPS\""), "{json}");
    assert!(json.contains("\"shards\": 1"), "default shard count recorded: {json}");
    assert!(json.trim_end().ends_with('}'), "well-formed JSON object");
    assert!(!json.contains("inf") && !json.contains("NaN"), "throughput fields stay finite");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--smoke` belongs to bench/benchcmp/check; other commands reject it.
#[test]
fn smoke_flag_is_rejected_outside_bench() {
    let out = dircc().args(["table1", "--smoke"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--smoke only applies to bench"));
}

/// `dircc bench --out` creates missing parent directories instead of
/// failing (it used to surface a raw ENOENT).
#[test]
fn bench_out_creates_parent_directories() {
    let dir = std::env::temp_dir().join(format!("dircc_bench_mkdir_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("nested/deeper/BENCH.json");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["bench", "--refs", "2000", "--jobs", "2", "--out", path_s])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(path.exists(), "report must land at the nested path");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `dircc check --smoke` model-checks every scheme and prints the
/// PASS/FAIL table.
#[test]
fn check_smoke_passes_every_scheme() {
    let out = dircc().args(["check", "--smoke", "--jobs", "2"]).output().expect("run check");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("model check: all 12 scheme(s) PASS"), "{text}");
    for scheme in ["Dir1NB", "Dir0B", "Dir1B", "DirCodedNB", "Tang", "YenFu", "WTI", "MESI"] {
        assert!(text.contains(scheme), "table must list {scheme}: {text}");
    }
    assert!(!text.contains("FAIL"), "{text}");
    assert!(
        text.contains("bit-identical at 2 shards"),
        "the replay-equivalence pass runs after the table: {text}"
    );
}

/// `--scheme` narrows the check to one protocol; unknown names error out
/// with the full list.
#[test]
fn check_scheme_filter() {
    // `--smoke --scheme` also exercises the sharded engine's per-shard
    // protocol construction (the shard check honours `--shards`).
    let out = dircc()
        .args(["check", "--smoke", "--scheme", "mesi", "--shards", "3", "--jobs", "1"])
        .output()
        .expect("run check");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MESI") && text.contains("all 1 scheme(s) PASS"), "{text}");
    assert!(text.contains("shard check: 1 scheme(s)"), "{text}");
    assert!(text.contains("bit-identical at 3 shards"), "{text}");

    let out = dircc().args(["check", "--scheme", "bogus"]).output().expect("run check");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheme bogus") && err.contains("Berkeley"), "{err}");
}

/// The model-check bounds flags belong to `check` alone.
#[test]
fn check_flags_are_rejected_elsewhere() {
    let cases = [
        ("--cpus", "only applies to check and replay"),
        ("--blocks", "only apply to check"),
        ("--depth", "only apply to check"),
    ];
    for (flag, expect) in cases {
        let out = dircc().args(["table1", flag, "2"]).output().expect("run dircc");
        assert!(!out.status.success(), "{flag} must be rejected outside check");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(expect), "{flag}: expected {expect:?} in {err}");
    }
}

/// `dircc benchcmp` passes against a fresh baseline and fails once a
/// deterministic counter is perturbed.
#[test]
fn benchcmp_detects_injected_drift() {
    let dir = std::env::temp_dir().join(format!("dircc_benchcmp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_smoke.json");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["bench", "--refs", "2000", "--jobs", "2", "--out", path_s])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = dircc()
        .args(["benchcmp", "--refs", "2000", "--jobs", "2", "--in", path_s])
        .output()
        .expect("run benchcmp");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("benchcmp: PASS"));

    // Perturb one run's refs counter: the gate must fail loudly.
    let json = std::fs::read_to_string(&path).unwrap();
    let drifted = json.replacen("\"refs\": 2000,", "\"refs\": 1999,", 1);
    assert_ne!(json, drifted, "the perturbation must hit a run row");
    std::fs::write(&path, drifted).unwrap();

    let out = dircc()
        .args(["benchcmp", "--refs", "2000", "--jobs", "2", "--in", path_s])
        .output()
        .expect("run benchcmp");
    assert!(!out.status.success(), "drifted baseline must fail the gate");
    assert!(String::from_utf8_lossy(&out.stderr).contains("drift"), "names the drift");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The engine's no-op recorder must leave the deterministic counters
/// exactly where the checked-in smoke baseline pinned them before the
/// observability layer existed.
#[test]
fn benchcmp_matches_the_checked_in_smoke_baseline() {
    // The checked-in baseline was generated with `--shards 2`, so the
    // sharded replay path is what must reproduce its counters.
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_smoke.json");
    let out = dircc()
        .args(["benchcmp", "--smoke", "--jobs", "2", "--shards", "2", "--in", baseline])
        .output()
        .expect("run benchcmp");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("benchcmp: PASS"));
}

/// Pulls a number field out of a hand-rolled JSON line.
fn num_field(line: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag).unwrap_or_else(|| panic!("{key} in {line}")) + tag.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().unwrap()
}

fn str_field(line: &str, key: &str) -> String {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag).unwrap_or_else(|| panic!("{key} in {line}")) + tag.len();
    let end = line[start..].find('"').unwrap() + start;
    line[start..end].to_string()
}

/// `dircc profile scaling --smoke` writes a windowed JSONL time series
/// whose windows partition each run exactly, plus a Chrome trace-event
/// span profile covering every phase of every run.
#[test]
fn profile_smoke_writes_time_series_and_spans() {
    let dir = std::env::temp_dir().join(format!("dircc_profile_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ts = dir.join("ts.jsonl");
    let sp = dir.join("spans.json");

    let out = dircc()
        .args([
            "profile",
            "scaling",
            "--smoke",
            "--jobs",
            "2",
            "--window",
            "2500",
            "--out",
            ts.to_str().unwrap(),
            "--spans",
            sp.to_str().unwrap(),
        ])
        .output()
        .expect("run profile");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // Scalability work list: Dir0B + Dir1..4NB + Dir1..3B + coded, x3 traces.
    assert!(text.contains("profile scaling: 27 runs, window 2500 refs"), "{text}");
    assert!(text.contains("cyc/ref"), "{text}");

    // Every run's windows are contiguous, start at 0 and sum to the run.
    let jsonl = std::fs::read_to_string(&ts).expect("time series written");
    let mut runs: std::collections::HashMap<String, Vec<(u64, u64, u64)>> =
        std::collections::HashMap::new();
    for line in jsonl.lines() {
        let key = format!(
            "{}/{}/{}",
            str_field(line, "scheme"),
            str_field(line, "trace"),
            str_field(line, "filter")
        );
        runs.entry(key).or_default().push((
            num_field(line, "start_ref"),
            num_field(line, "end_ref"),
            num_field(line, "refs"),
        ));
    }
    assert_eq!(runs.len(), 27, "one group per run");
    for (key, windows) in &runs {
        assert_eq!(windows.len(), 8, "{key}: 20000 refs / 2500 = 8 windows");
        let mut expect_start = 0;
        for &(start, end, refs) in windows {
            assert_eq!(start, expect_start, "{key}: windows must be contiguous");
            assert_eq!(end - start, refs, "{key}: refs is the window width");
            expect_start = end;
        }
        assert_eq!(expect_start, 20_000, "{key}: windows must partition the run");
        assert_eq!(windows.iter().map(|w| w.2).sum::<u64>(), 20_000, "{key}");
    }

    // The span profile is a Chrome trace-event array covering every phase
    // of every run.
    let spans = std::fs::read_to_string(&sp).expect("spans written");
    assert!(spans.trim_start().starts_with('['));
    assert!(spans.trim_end().ends_with(']'));
    assert!(spans.contains("\"ph\": \"X\""));
    for phase in ["generate", "filter", "intern", "replay", "price"] {
        assert!(spans.contains(&format!("\"name\": \"{phase}\"")), "missing phase {phase}");
    }
    assert_eq!(
        spans.matches("\"name\": \"replay\"").count(),
        27,
        "one replay span per executed run"
    );
    assert_eq!(spans.matches("\"name\": \"price\"").count(), 27);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `dircc profile` stdout is deterministic: byte-identical across
/// `--jobs` (wall-clock lives in the span file, not on stdout).
#[test]
fn profile_stdout_does_not_depend_on_jobs() {
    let dir = std::env::temp_dir().join(format!("dircc_profile_jobs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |jobs: &str| {
        let ts = dir.join("ts.jsonl");
        let sp = dir.join("sp.json");
        let out = dircc()
            .args([
                "profile",
                "headline",
                "--refs",
                "4000",
                "--seed",
                "3",
                "--jobs",
                jobs,
                "--out",
                ts.to_str().unwrap(),
                "--spans",
                sp.to_str().unwrap(),
            ])
            .output()
            .expect("run profile");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let jsonl = std::fs::read_to_string(&ts).unwrap();
        (out.stdout, jsonl)
    };
    let (stdout1, jsonl1) = run("1");
    let (stdout8, jsonl8) = run("8");
    assert_eq!(stdout1, stdout8, "stdout must not depend on --jobs");
    assert_eq!(jsonl1, jsonl8, "the time series must not depend on --jobs");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `dircc record` writes a chunked v2 trace that `replay --in` streams
/// to stdout byte-identical to the in-memory profile replay — the
/// end-to-end gate on the streaming trace pipeline.
#[test]
fn record_replay_roundtrip_matches_in_memory() {
    let dir = std::env::temp_dir().join(format!("dircc_replay_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.dcct");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["record", "--profile", "thor", "--refs", "20000", "--out", path_s])
        .output()
        .expect("run record");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wrote 20000 references"), "{text}");
    assert!(text.contains("v2"), "names the format: {text}");

    let streamed =
        dircc().args(["replay", "--in", path_s, "--verify"]).output().expect("run replay --in");
    assert!(streamed.status.success(), "{}", String::from_utf8_lossy(&streamed.stderr));
    let in_memory = dircc()
        .args(["replay", "--profile", "thor", "--refs", "20000", "--verify"])
        .output()
        .expect("run replay in-memory");
    assert!(in_memory.status.success(), "{}", String::from_utf8_lossy(&in_memory.stderr));
    assert_eq!(
        streamed.stdout, in_memory.stdout,
        "file replay must match the in-memory path byte for byte"
    );
    let text = String::from_utf8_lossy(&streamed.stdout);
    for scheme in ["Dir1NB", "WTI", "Dir0B", "Dragon"] {
        assert!(text.contains(scheme), "headline scheme {scheme} in {text}");
    }
    assert!(text.contains("no violations"), "{text}");

    // Sharded replay spills to temp files but must not change stdout.
    let sharded = dircc()
        .args(["replay", "--in", path_s, "--verify", "--shards", "3"])
        .output()
        .expect("run replay --shards");
    assert!(sharded.status.success(), "{}", String::from_utf8_lossy(&sharded.stderr));
    assert_eq!(streamed.stdout, sharded.stdout, "stdout must not depend on --shards");

    // `--scheme` narrows the table to one protocol.
    let one = dircc()
        .args(["replay", "--in", path_s, "--scheme", "dir0b"])
        .output()
        .expect("run replay --scheme");
    assert!(one.status.success(), "{}", String::from_utf8_lossy(&one.stderr));
    let text = String::from_utf8_lossy(&one.stdout);
    assert!(text.contains("Dir0B") && !text.contains("Dragon"), "{text}");

    let bogus = dircc()
        .args(["replay", "--in", path_s, "--scheme", "bogus"])
        .output()
        .expect("run replay bogus scheme");
    assert!(!bogus.status.success());
    assert!(String::from_utf8_lossy(&bogus.stderr).contains("unknown scheme bogus"));

    // `stats` auto-detects the v2 container.
    let stats = dircc().args(["stats", "--in", path_s]).output().expect("run stats");
    assert!(stats.status.success(), "{}", String::from_utf8_lossy(&stats.stderr));
    assert!(String::from_utf8_lossy(&stats.stdout).contains("references : 20000"));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A truncated v2 file is a replay error, not a silently shorter trace;
/// a missing file reports the path.
#[test]
fn replay_rejects_truncated_and_missing_traces() {
    let dir = std::env::temp_dir().join(format!("dircc_replay_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cut.dcct");
    let path_s = path.to_str().unwrap();
    let out =
        dircc().args(["record", "--refs", "5000", "--out", path_s]).output().expect("run record");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();

    let out = dircc().args(["replay", "--in", path_s]).output().expect("run replay");
    assert!(!out.status.success(), "truncated trace must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("trace read failed"));

    let missing = dir.join("nope.dcct");
    let out =
        dircc().args(["replay", "--in", missing.to_str().unwrap()]).output().expect("run replay");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope.dcct"));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `replay` also streams the flat v1 format (auto-detected), and the v1
/// reader points v2 files at `dircc replay --in`.
#[test]
fn replay_accepts_both_trace_versions() {
    let dir = std::env::temp_dir().join(format!("dircc_replay_v1_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1 = dir.join("v1.dcct");
    let v1_s = v1.to_str().unwrap();
    let out = dircc()
        .args(["gen", "--profile", "thor", "--refs", "20000", "--out", v1_s])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let from_v1 = dircc().args(["replay", "--in", v1_s]).output().expect("run replay v1");
    assert!(from_v1.status.success(), "{}", String::from_utf8_lossy(&from_v1.stderr));
    let in_memory = dircc()
        .args(["replay", "--profile", "thor", "--refs", "20000"])
        .output()
        .expect("run replay in-memory");
    assert_eq!(from_v1.stdout, in_memory.stdout, "v1 replay matches the in-memory path");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The streaming flags belong to their subcommands: `--chunk` to record,
/// `--verify` to replay; `--scheme` still errors elsewhere with the
/// check-and-replay wording.
#[test]
fn streaming_flag_validation() {
    let out = dircc().args(["gen", "--chunk", "512"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chunk only applies to record"));

    let out = dircc().args(["record", "--chunk", "0"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chunk must be in 1..="));

    let out = dircc().args(["table1", "--verify"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--verify only applies to replay"));

    let out = dircc().args(["table1", "--scheme", "mesi"]).output().expect("run dircc");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("only applies to check, replay and submit"), "{err}");

    // replay writes nothing: --out is the wrong direction.
    let out = dircc().args(["replay", "--out", "t.dcct"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("pass --in FILE, not --out"));
}

/// The bench report carries the streaming-ingest row family, and
/// `benchcmp` rejects a baseline that predates it.
#[test]
fn bench_reports_ingest_rows() {
    let dir = std::env::temp_dir().join(format!("dircc_bench_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("B.json");
    let path_s = path.to_str().unwrap();

    let out = dircc()
        .args(["bench", "--refs", "2000", "--jobs", "2", "--out", path_s])
        .output()
        .expect("run bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).unwrap();
    for field in ["\"ingest\"", "\"bytes\"", "\"mb_per_sec\""] {
        assert!(json.contains(field), "report must carry {field}: {json}");
    }
    for trace in ["POPS", "THOR", "PERO"] {
        assert!(
            json.lines().any(|l| l.contains("mb_per_sec") && l.contains(trace)),
            "ingest row for {trace}: {json}"
        );
    }

    // Strip the ingest section: benchcmp must ask for a regenerate, not
    // report drift.
    let stripped: String =
        json.lines().filter(|l| !l.contains("mb_per_sec")).collect::<Vec<_>>().join("\n");
    std::fs::write(&path, &stripped).unwrap();
    let out = dircc()
        .args(["benchcmp", "--refs", "2000", "--jobs", "2", "--in", path_s])
        .output()
        .expect("run benchcmp");
    assert!(!out.status.success(), "ingest-less baseline must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no \"ingest\" rows"), "{err}");
    assert!(err.contains("regenerate it with `dircc bench`"), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Unknown profile targets and a missing target fail with the option
/// list; the profile-only flags are rejected elsewhere.
#[test]
fn profile_flag_and_target_validation() {
    let out = dircc().args(["profile", "bogus", "--refs", "100"]).output().expect("run profile");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile target bogus"));

    let out = dircc().args(["profile"]).output().expect("run profile");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("profile needs a target"));

    let flag_cases: [([&str; 3], &str); 2] = [
        (["table1", "--window", "100"], "only applies to profile and submit"),
        (["bench", "--spans", "x.json"], "only applies to profile"),
    ];
    for (args, expect) in flag_cases {
        let out = dircc().args(args).output().expect("run dircc");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(expect), "{args:?}: expected {expect:?} in {err}");
    }

    let out = dircc().args(["table1", "extra"]).output().expect("run dircc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no positional argument"));

    let out = dircc().args(["profile", "all", "--window", "0"]).output().expect("run profile");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--window must be at least 1"));
}

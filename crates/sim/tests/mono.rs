//! Bit-identity of the monomorphized SoA replay against the dyn engine.
//!
//! The tentpole guarantee of the mono fast path: for every scheme, trace,
//! filter, geometry, sharing model and shard count, `run_indexed_mono` /
//! `run_sharded_mono` produce **bit-identical** results to the reference
//! `run_indexed` / `run_sharded` — same [`EventCounters`], same verifier
//! verdicts, same error text, same windowed deltas. The SoA arrays
//! themselves are pinned against an independent AoS-derived recomputation
//! first, so a precompute bug cannot hide behind a matching replay bug.

use dircc_cache::FiniteCacheConfig;
use dircc_core::{build_sized, ProtocolKind};
use dircc_obs::WindowedRecorder;
use dircc_sim::engine::run_indexed_with;
use dircc_sim::mono::run_indexed_mono_with;
use dircc_sim::{
    run_indexed, run_indexed_mono, run_sharded, run_sharded_mono, shard_stream, ReplayEngine,
    RunConfig, SharingModel, TraceFilter, Workbench,
};
use dircc_trace::gen::Profile;
use dircc_trace::soa::{soa_reference_values, SoaStream};
use dircc_trace::store::TraceStore;
use dircc_trace::{ShardedSoa, TraceRecord};
use dircc_types::BlockGeometry;
use std::sync::Arc;

const CPUS: usize = 4;

/// Every taxonomy point the simulator replays.
const KINDS: [ProtocolKind; 13] = [
    ProtocolKind::DirNb { pointers: 1 },
    ProtocolKind::DirNb { pointers: 2 },
    ProtocolKind::DirNb { pointers: 4 },
    ProtocolKind::Dir0B,
    ProtocolKind::DirB { pointers: 1 },
    ProtocolKind::CodedSet,
    ProtocolKind::Tang,
    ProtocolKind::YenFu,
    ProtocolKind::Wti,
    ProtocolKind::Dragon,
    ProtocolKind::Berkeley,
    ProtocolKind::WriteOnce,
    ProtocolKind::Firefly,
];

fn store() -> TraceStore {
    let profiles = Profile::paper_suite().into_iter().map(|p| p.with_total_refs(6_000)).collect();
    TraceStore::new(profiles, 9)
}

/// The SoA precompute equals an independent AoS-derived recomputation for
/// every trace × filter × geometry × sharing model — cache indices,
/// first-reference bits, kinds, and the dense block ids themselves.
#[test]
fn soa_streams_match_aos_derivation_across_the_matrix() {
    let store = store();
    for trace in 0..store.num_traces() {
        for filter in TraceFilter::ALL {
            for geometry in [BlockGeometry::PAPER, BlockGeometry::new(5)] {
                for sharing in [SharingModel::Processor, SharingModel::Process] {
                    let records = store.records(trace, filter);
                    let soa = store.soa(trace, filter, geometry, sharing);
                    let (cache_idx, first_ref) = soa_reference_values(&records, geometry, sharing);
                    let label = format!("trace {trace} {filter:?} {geometry:?} {sharing:?}");
                    assert_eq!(soa.len(), records.len(), "{label}: length");
                    assert_eq!(soa.cache_idx, cache_idx, "{label}: cache indices");
                    assert_eq!(soa.first_ref, first_ref, "{label}: first-ref bits");
                    let kinds: Vec<_> = records.iter().map(|r| r.kind).collect();
                    assert_eq!(soa.kind, kinds, "{label}: kinds");
                    let dense = store.dense_blocks(trace, filter, geometry);
                    for (j, r) in records.iter().enumerate() {
                        if r.is_data() {
                            assert_eq!(soa.block_id[j], dense[j], "{label}: block id at {j}");
                        }
                    }
                    assert_eq!(
                        soa.max_cache_idx,
                        cache_idx
                            .iter()
                            .zip(&records[..])
                            .filter(|(_, r)| r.is_data())
                            .map(|(&i, _)| i)
                            .max()
                            .unwrap_or(0),
                        "{label}: max cache index"
                    );
                }
            }
        }
    }
}

/// Serial and sharded mono replay vs the dyn reference, full result
/// compared (counters, refs, verifier verdicts) — every scheme, every
/// trace, shards ∈ {1, 2, 8}, verifier on.
#[test]
fn mono_replay_is_bit_identical_to_dyn_for_every_scheme() {
    let store = store();
    let cfg = RunConfig { verify: true, ..RunConfig::default().with_process_sharing() };
    for trace in 0..store.num_traces() {
        let records = store.records(trace, TraceFilter::Full);
        let dense = store.dense_blocks(trace, TraceFilter::Full, cfg.geometry);
        let num_blocks = store.interner(trace, cfg.geometry).num_blocks();
        let soa = store.soa(trace, TraceFilter::Full, cfg.geometry, cfg.sharing);
        for kind in KINDS {
            let mut p = build_sized(kind, CPUS, num_blocks);
            let dy = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg).unwrap();
            let mo = run_indexed_mono(kind, CPUS, &records, &soa, &cfg).unwrap();
            assert_eq!(dy.counters, mo.counters, "{kind} trace {trace} serial counters");
            assert_eq!(dy.refs, mo.refs, "{kind} trace {trace} serial refs");
            assert_eq!(dy.violations, mo.violations, "{kind} trace {trace} serial verdicts");
            for shards in [1usize, 2, 8] {
                let sharded = store.sharded(trace, TraceFilter::Full, cfg.geometry, shards);
                let ssoa =
                    store.sharded_soa(trace, TraceFilter::Full, cfg.geometry, shards, cfg.sharing);
                let ds = run_sharded(kind, CPUS, &sharded, &cfg).unwrap();
                let ms = run_sharded_mono(kind, CPUS, &sharded, &ssoa, &cfg).unwrap();
                assert_eq!(ds.counters, ms.counters, "{kind} trace {trace} @{shards} counters");
                assert_eq!(ds.violations, ms.violations, "{kind} trace {trace} @{shards} verdicts");
                assert_eq!(dy.counters, ms.counters, "{kind} trace {trace} @{shards} vs serial");
            }
        }
    }
}

/// Finite caches route mono through the full loop: eviction order,
/// write-back traffic and verifier verdicts must match the dyn engine.
#[test]
fn finite_cache_mono_matches_dyn() {
    let store = store();
    let cfg = RunConfig {
        verify: true,
        ..RunConfig::default()
            .with_process_sharing()
            .with_finite_caches(FiniteCacheConfig::new(4, 2))
    };
    for kind in [ProtocolKind::Dir0B, ProtocolKind::Berkeley, ProtocolKind::Mesi] {
        for trace in 0..store.num_traces() {
            let records = store.records(trace, TraceFilter::Full);
            let dense = store.dense_blocks(trace, TraceFilter::Full, cfg.geometry);
            let num_blocks = store.interner(trace, cfg.geometry).num_blocks();
            let soa = store.soa(trace, TraceFilter::Full, cfg.geometry, cfg.sharing);
            let mut p = build_sized(kind, CPUS, num_blocks);
            let dy = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg).unwrap();
            let mo = run_indexed_mono(kind, CPUS, &records, &soa, &cfg).unwrap();
            assert_eq!(dy.counters, mo.counters, "{kind} trace {trace} finite counters");
            assert_eq!(dy.violations, mo.violations, "{kind} trace {trace} finite verdicts");
        }
    }
}

/// A windowed mono replay produces the same window deltas as the dyn one
/// (the recorder sees identical cumulative counters after every ref).
#[test]
fn windowed_mono_matches_dyn_sample_for_sample() {
    let store = store();
    let cfg = RunConfig::default().with_process_sharing();
    let records = store.records(0, TraceFilter::Full);
    let dense = store.dense_blocks(0, TraceFilter::Full, cfg.geometry);
    let num_blocks = store.interner(0, cfg.geometry).num_blocks();
    let soa = store.soa(0, TraceFilter::Full, cfg.geometry, cfg.sharing);
    for kind in [ProtocolKind::Dir0B, ProtocolKind::Dragon] {
        let mut dy_rec = WindowedRecorder::new(700);
        let mut p = build_sized(kind, CPUS, num_blocks);
        let dy =
            run_indexed_with(p.as_mut(), &records, &dense, num_blocks, &cfg, &mut dy_rec).unwrap();
        let mut mo_rec = WindowedRecorder::new(700);
        let mo = run_indexed_mono_with(kind, CPUS, &records, &soa, &cfg, &mut mo_rec).unwrap();
        assert_eq!(dy.counters, mo.counters, "{kind} windowed counters");
        assert_eq!(dy_rec.into_samples(), mo_rec.into_samples(), "{kind} window deltas");
    }
}

/// An undersized protocol fails with byte-identical error text on both
/// engines (the SoA loop reads the AoS record back for diagnostics).
#[test]
fn bounds_error_text_is_identical_across_engines() {
    let store = store();
    let cfg = RunConfig::default().with_process_sharing();
    let records = store.records(0, TraceFilter::Full);
    let dense = store.dense_blocks(0, TraceFilter::Full, cfg.geometry);
    let num_blocks = store.interner(0, cfg.geometry).num_blocks();
    let soa = store.soa(0, TraceFilter::Full, cfg.geometry, cfg.sharing);
    let kind = ProtocolKind::Dir0B;
    let mut p = build_sized(kind, 2, num_blocks);
    let dy = run_indexed(p.as_mut(), &records, &dense, num_blocks, &cfg).unwrap_err();
    let mo = run_indexed_mono(kind, 2, &records, &soa, &cfg).unwrap_err();
    assert_eq!(dy, mo, "undersized-protocol error text diverged");
    assert!(dy.contains("out of range for 2 caches"), "unexpected error: {dy}");
}

/// Misaligned or wrong-sharing SoA streams are rejected up front.
#[test]
fn mismatched_soa_streams_are_rejected() {
    let records: Vec<TraceRecord> = Vec::new();
    let empty = SoaStream::build(&[], &[], 0, SharingModel::Process);
    let cfg = RunConfig::default();
    // Sharing mismatch: cfg defaults to Processor, stream is Process.
    let err = run_indexed_mono(ProtocolKind::Wti, CPUS, &records, &empty, &cfg).unwrap_err();
    assert!(err.contains("sharing"), "unexpected error: {err}");
    // Length mismatch.
    let store = store();
    let recs = store.records(0, TraceFilter::Full);
    let err = run_indexed_mono(
        ProtocolKind::Wti,
        CPUS,
        &recs,
        &empty,
        &RunConfig::default().with_process_sharing(),
    )
    .unwrap_err();
    assert!(err.contains("rebuild it from the same stream"), "unexpected error: {err}");
    // Shard-count mismatch.
    let dense = store.dense_blocks(0, TraceFilter::Full, cfg.geometry);
    let num_blocks = store.interner(0, cfg.geometry).num_blocks();
    let sharded = shard_stream(&recs, &dense, num_blocks, 4, &cfg);
    let ssoa = ShardedSoa::build(
        &shard_stream(&recs, &dense, num_blocks, 2, &cfg),
        SharingModel::Processor,
    );
    let err = run_sharded_mono(ProtocolKind::Wti, CPUS, &sharded, &ssoa, &cfg).unwrap_err();
    assert!(err.contains("shard"), "unexpected error: {err}");
}

/// The workbench produces identical counters under both engines, and two
/// workbenches sharing one store generate each trace only once.
#[test]
fn workbench_engines_agree_and_share_the_store() {
    let profiles: Vec<Profile> =
        Profile::paper_suite().into_iter().map(|p| p.with_total_refs(6_000)).collect();
    let store = Arc::new(TraceStore::new(profiles, 9));
    let dy = Workbench::with_store(Arc::clone(&store)).with_engine(ReplayEngine::Dyn);
    let mo = Workbench::with_store(Arc::clone(&store));
    assert_eq!(mo.engine(), ReplayEngine::Mono, "mono is the default engine");
    for kind in [ProtocolKind::DirNb { pointers: 1 }, ProtocolKind::Dragon, ProtocolKind::Tang] {
        for trace in 0..dy.num_traces() {
            for filter in TraceFilter::ALL {
                assert_eq!(
                    *dy.counters(kind, trace, filter),
                    *mo.counters(kind, trace, filter),
                    "{kind} trace {trace} {filter:?} diverged across engines"
                );
            }
        }
    }
    assert_eq!(store.generations(), store.num_traces() as u64, "each trace generated once");

    // Sharded workbenches agree across engines too.
    let dy4 =
        Workbench::with_store(Arc::clone(&store)).with_engine(ReplayEngine::Dyn).with_shards(4);
    let mo4 = Workbench::with_store(Arc::clone(&store)).with_shards(4);
    for trace in 0..dy4.num_traces() {
        assert_eq!(
            *dy4.counters(ProtocolKind::Dir0B, trace, TraceFilter::Full),
            *mo4.counters(ProtocolKind::Dir0B, trace, TraceFilter::Full),
            "sharded engines diverged on trace {trace}"
        );
    }
}

/// Engine labels round-trip (the CLI flag surface).
#[test]
fn engine_labels_round_trip() {
    for e in [ReplayEngine::Dyn, ReplayEngine::Mono] {
        assert_eq!(ReplayEngine::from_label(e.label()), Some(e));
    }
    assert_eq!(ReplayEngine::from_label("bogus"), None);
    assert_eq!(ReplayEngine::default(), ReplayEngine::Mono);
}

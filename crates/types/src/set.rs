//! A compact set of cache indices.
//!
//! Directory schemes reason constantly about "which caches hold this block":
//! full-map directories store one presence bit per cache, limited-pointer
//! directories store a few indices, and the coded-set scheme of §6 stores a
//! superset. [`CacheIdSet`] is the common currency: a 64-bit bitset, enough
//! for the machine sizes the paper's methodology targets (its traces had 4
//! CPUs; its scaling discussion reaches tens of processors).

use crate::CacheId;
use core::fmt;

/// A set of [`CacheId`]s backed by a single `u64`.
///
/// ```
/// use dircc_types::{CacheId, CacheIdSet};
///
/// let mut s = CacheIdSet::new();
/// s.insert(CacheId::new(0));
/// s.insert(CacheId::new(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(CacheId::new(3)));
/// let ids: Vec<_> = s.iter().collect();
/// assert_eq!(ids, vec![CacheId::new(0), CacheId::new(3)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CacheIdSet(u64);

/// Maximum cache index representable in a [`CacheIdSet`].
pub const MAX_CACHES: usize = 64;

impl CacheIdSet {
    /// Creates an empty set.
    #[inline]
    pub const fn new() -> Self {
        CacheIdSet(0)
    }

    /// Creates a set from a raw presence-bit mask (bit *i* ⇔ cache *i*).
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        CacheIdSet(bits)
    }

    /// Returns the raw presence-bit mask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Creates a set containing a single cache.
    ///
    /// # Panics
    ///
    /// Panics if `id.index() >= 64`.
    #[inline]
    pub fn singleton(id: CacheId) -> Self {
        let mut s = CacheIdSet::new();
        s.insert(id);
        s
    }

    /// Inserts a cache; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id.index() >= 64`.
    #[inline]
    pub fn insert(&mut self, id: CacheId) -> bool {
        assert!(id.index() < MAX_CACHES, "cache index {} out of range", id);
        let bit = 1u64 << id.index();
        let newly = self.0 & bit == 0;
        self.0 |= bit;
        newly
    }

    /// Removes a cache; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: CacheId) -> bool {
        if id.index() >= MAX_CACHES {
            return false;
        }
        let bit = 1u64 << id.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Returns `true` if the cache is in the set.
    #[inline]
    pub const fn contains(self, id: CacheId) -> bool {
        id.index() < MAX_CACHES && self.0 & (1u64 << id.index()) != 0
    }

    /// Returns the number of caches in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Removes all caches.
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Returns the set of caches present in `self` but not in `other`.
    #[inline]
    #[must_use]
    pub const fn difference(self, other: CacheIdSet) -> CacheIdSet {
        CacheIdSet(self.0 & !other.0)
    }

    /// Returns the union of the two sets.
    #[inline]
    #[must_use]
    pub const fn union(self, other: CacheIdSet) -> CacheIdSet {
        CacheIdSet(self.0 | other.0)
    }

    /// Returns the intersection of the two sets.
    #[inline]
    #[must_use]
    pub const fn intersection(self, other: CacheIdSet) -> CacheIdSet {
        CacheIdSet(self.0 & other.0)
    }

    /// Returns `true` if every cache in `self` is also in `other`.
    #[inline]
    pub const fn is_subset_of(self, other: CacheIdSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `self` without `id` (non-mutating convenience).
    #[inline]
    #[must_use]
    pub fn without(self, id: CacheId) -> CacheIdSet {
        let mut s = self;
        s.remove(id);
        s
    }

    /// Returns the lowest-indexed cache in the set, if any.
    #[inline]
    pub fn first(self) -> Option<CacheId> {
        if self.0 == 0 {
            None
        } else {
            Some(CacheId::new(self.0.trailing_zeros() as u16))
        }
    }

    /// Returns the only element if the set is a singleton.
    #[inline]
    pub fn sole(self) -> Option<CacheId> {
        if self.len() == 1 {
            self.first()
        } else {
            None
        }
    }

    /// Iterates over the caches in ascending index order.
    #[inline]
    pub fn iter(self) -> CacheIdSetIter {
        CacheIdSetIter(self.0)
    }
}

impl fmt::Debug for CacheIdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct D(CacheId);
        impl fmt::Debug for D {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        f.debug_set().entries(self.iter().map(D)).finish()
    }
}

impl fmt::Display for CacheIdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", id)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CacheId> for CacheIdSet {
    fn from_iter<I: IntoIterator<Item = CacheId>>(iter: I) -> Self {
        let mut s = CacheIdSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

impl Extend<CacheId> for CacheIdSet {
    fn extend<I: IntoIterator<Item = CacheId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl IntoIterator for CacheIdSet {
    type Item = CacheId;
    type IntoIter = CacheIdSetIter;

    fn into_iter(self) -> CacheIdSetIter {
        self.iter()
    }
}

/// Iterator over a [`CacheIdSet`] in ascending index order.
#[derive(Debug, Clone)]
pub struct CacheIdSetIter(u64);

impl Iterator for CacheIdSetIter {
    type Item = CacheId;

    fn next(&mut self) -> Option<CacheId> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(CacheId::new(idx as u16))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CacheIdSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(ids: &[u16]) -> CacheIdSet {
        ids.iter().map(|&i| CacheId::new(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = CacheIdSet::new();
        assert!(s.is_empty());
        assert!(s.insert(CacheId::new(5)));
        assert!(!s.insert(CacheId::new(5)));
        assert!(s.contains(CacheId::new(5)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(CacheId::new(5)));
        assert!(!s.remove(CacheId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = set_of(&[0, 1, 2]);
        let b = set_of(&[2, 3]);
        assert_eq!(a.union(b), set_of(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), set_of(&[2]));
        assert_eq!(a.difference(b), set_of(&[0, 1]));
        assert!(set_of(&[1]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn first_and_sole() {
        assert_eq!(CacheIdSet::new().first(), None);
        assert_eq!(set_of(&[3, 9]).first(), Some(CacheId::new(3)));
        assert_eq!(set_of(&[7]).sole(), Some(CacheId::new(7)));
        assert_eq!(set_of(&[1, 2]).sole(), None);
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let s = set_of(&[63, 0, 17]);
        let v: Vec<u16> = s.iter().map(|c| c.raw()).collect();
        assert_eq!(v, vec![0, 17, 63]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        CacheIdSet::new().insert(CacheId::new(64));
    }

    #[test]
    fn display_and_debug() {
        let s = set_of(&[1, 4]);
        assert_eq!(s.to_string(), "{C1,C4}");
        assert_eq!(format!("{:?}", s), "{C1, C4}");
        assert_eq!(CacheIdSet::new().to_string(), "{}");
    }

    #[test]
    fn without_is_non_mutating() {
        let s = set_of(&[1, 2]);
        assert_eq!(s.without(CacheId::new(1)), set_of(&[2]));
        assert_eq!(s, set_of(&[1, 2]));
    }

    #[test]
    fn from_bits_round_trips() {
        let s = CacheIdSet::from_bits(0b1010);
        assert_eq!(s.bits(), 0b1010);
        assert_eq!(s.len(), 2);
    }
}

//! Identity spaces: caches, CPUs and processes.
//!
//! The paper is careful to separate *processor* sharing from *process*
//! sharing ("a block is considered shared only if it is accessed by more
//! than one process"), so the workspace keeps three distinct id types even
//! though a small-scale machine maps them 1:1.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u16);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(raw: u16) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn raw(self) -> u16 {
                self.0
            }

            /// Returns the raw index widened to `usize` for container
            /// indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(raw: u16) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u16 {
            fn from(id: $name) -> Self {
                id.0
            }
        }
    };
}

id_type! {
    /// Index of a hardware cache (one per processor board in the paper's
    /// machine model). Directory presence bits and pointers refer to caches.
    CacheId, "C"
}

id_type! {
    /// Index of a CPU issuing memory references. The ATUM traces carried a
    /// CPU number with each reference; so do dircc trace records.
    CpuId, "cpu"
}

id_type! {
    /// Identifier of a software process. Used to classify sharing
    /// per-process (the paper's default) and to model process migration.
    ProcessId, "pid"
}

impl CpuId {
    /// Returns the cache attached to this CPU under the identity mapping
    /// used by small-scale machines (cache *i* serves CPU *i*).
    #[inline]
    pub const fn cache(self) -> CacheId {
        CacheId::new(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_raw() {
        assert_eq!(CacheId::new(3).raw(), 3);
        assert_eq!(CpuId::new(7).index(), 7);
        assert_eq!(ProcessId::new(11).raw(), 11);
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(CacheId::new(2).to_string(), "C2");
        assert_eq!(CpuId::new(0).to_string(), "cpu0");
        assert_eq!(ProcessId::new(5).to_string(), "pid5");
    }

    #[test]
    fn cpu_identity_cache_mapping() {
        assert_eq!(CpuId::new(3).cache(), CacheId::new(3));
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(CacheId::new(1) < CacheId::new(2));
    }

    #[test]
    fn conversions() {
        let c: CacheId = 9u16.into();
        let r: u16 = c.into();
        assert_eq!(r, 9);
    }
}

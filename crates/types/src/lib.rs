//! # dircc-types
//!
//! Foundation types for the `dircc` workspace, a reproduction of
//! *"An Evaluation of Directory Schemes for Cache Coherence"*
//! (Agarwal, Simoni, Hennessy, Horowitz — ISCA 1988).
//!
//! Every other crate in the workspace builds on the newtypes defined here:
//!
//! * [`Address`] / [`BlockAddr`] — byte addresses and cache-block addresses,
//!   related through a [`BlockGeometry`] (the paper uses 4-word / 16-byte
//!   blocks throughout).
//! * [`BlockId`] — a dense (interned) block index; the replay hot path
//!   renames sparse block addresses to dense ids so per-block state lives
//!   in flat vectors instead of hash maps.
//! * [`CacheId`] / [`CpuId`] / [`ProcessId`] — the three identity spaces the
//!   paper distinguishes: hardware caches, CPUs that issue references, and
//!   software processes (sharing is classified *per process* in the paper).
//! * [`AccessKind`] — instruction fetch, data read, data write.
//! * [`CacheIdSet`] — a compact set of cache indices, used for directory
//!   full-map presence bits and residency tracking.
//!
//! # Examples
//!
//! ```
//! use dircc_types::{Address, BlockGeometry};
//!
//! let geom = BlockGeometry::default(); // 16-byte blocks, as in the paper
//! let a = Address::new(0x1234);
//! let b = geom.block_of(a);
//! assert_eq!(b.index(), 0x123);
//! assert_eq!(geom.block_base(b), Address::new(0x1230));
//! ```

mod access;
mod addr;
mod ids;
mod set;
mod sharing;

pub use access::AccessKind;
pub use addr::{Address, BlockAddr, BlockGeometry, BlockId, WordIndex};
pub use ids::{CacheId, CpuId, ProcessId};
pub use set::{CacheIdSet, CacheIdSetIter};
pub use sharing::SharingModel;

/// The number of bytes in a machine word (32 bits), as in the paper's
/// VAX-derived traces and one-word-wide bus models.
pub const WORD_BYTES: u64 = 4;

/// The paper's block size in words ("The block size used throughout this
/// paper is 4 words (16 bytes)").
pub const PAPER_BLOCK_WORDS: u64 = 4;

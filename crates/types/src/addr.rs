//! Byte addresses, block addresses and block geometry.

use core::fmt;

/// A byte address in the shared physical address space.
///
/// Addresses are plain 64-bit byte addresses; the traces the paper used were
/// VAX (32-bit) but nothing in the methodology depends on the width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte address.
    ///
    /// ```
    /// # use dircc_types::Address;
    /// assert_eq!(Address::new(16).raw(), 16);
    /// ```
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow (debug builds), wrapping otherwise,
    /// matching standard integer arithmetic semantics.
    #[inline]
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Address(self.0 + bytes)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

/// The address of a cache block (an [`Address`] with the intra-block offset
/// bits stripped).
///
/// A `BlockAddr` is only meaningful relative to the [`BlockGeometry`] that
/// produced it; all dircc components use a single geometry per simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address directly from a block index.
    #[inline]
    pub const fn from_index(index: u64) -> Self {
        BlockAddr(index)
    }

    /// Returns the block index (address divided by block size).
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// A dense block index assigned by an interner.
///
/// [`BlockAddr`]s are sparse — whatever block numbers a trace's address
/// stream happens to touch. A `BlockId` is the dense renaming of those
/// blocks in first-appearance order (`0..num_blocks`), which lets every
/// per-block table in the replay hot path be a flat `Vec` instead of a
/// hash map. The mapping is bijective per (trace, geometry), so replaying
/// with dense ids produces bit-identical event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a dense block id.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        BlockId(raw)
    }

    /// Returns the raw dense index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the dense index widened to `usize` for container indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reinterprets the dense id as a [`BlockAddr`], the currency of the
    /// protocol API. The result is only meaningful to components fed by
    /// the same interner.
    #[inline]
    pub const fn as_block_addr(self) -> BlockAddr {
        BlockAddr::from_index(self.0 as u64)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// Index of a word within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordIndex(u8);

impl WordIndex {
    /// Creates a word index. The caller is responsible for keeping it below
    /// the geometry's words-per-block.
    #[inline]
    pub const fn new(i: u8) -> Self {
        WordIndex(i)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }
}

/// Block geometry: how byte addresses map onto cache blocks.
///
/// The paper fixes 4-word (16-byte) blocks; that is the [`Default`]. Other
/// powers of two are supported for ablation studies.
///
/// ```
/// use dircc_types::{Address, BlockGeometry};
///
/// let geom = BlockGeometry::new(5); // 32-byte blocks
/// assert_eq!(geom.block_bytes(), 32);
/// assert_eq!(geom.block_of(Address::new(63)).index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockGeometry {
    offset_bits: u32,
}

impl BlockGeometry {
    /// Creates a geometry with `offset_bits` low address bits inside a block
    /// (block size = `2^offset_bits` bytes).
    ///
    /// # Panics
    ///
    /// Panics if `offset_bits >= 32` (blocks of 4 GiB or more are certainly
    /// a configuration error).
    pub const fn new(offset_bits: u32) -> Self {
        assert!(offset_bits < 32, "unreasonable block size");
        BlockGeometry { offset_bits }
    }

    /// The paper's geometry: 16-byte (4-word) blocks.
    pub const PAPER: BlockGeometry = BlockGeometry::new(4);

    /// Returns the number of bytes per block.
    #[inline]
    pub const fn block_bytes(self) -> u64 {
        1 << self.offset_bits
    }

    /// Returns the number of 32-bit words per block.
    #[inline]
    pub const fn block_words(self) -> u64 {
        self.block_bytes() / crate::WORD_BYTES
    }

    /// Returns the number of intra-block offset bits.
    #[inline]
    pub const fn offset_bits(self) -> u32 {
        self.offset_bits
    }

    /// Maps a byte address to its containing block.
    #[inline]
    pub const fn block_of(self, a: Address) -> BlockAddr {
        BlockAddr(a.raw() >> self.offset_bits)
    }

    /// Returns the first byte address of a block.
    #[inline]
    pub const fn block_base(self, b: BlockAddr) -> Address {
        Address::new(b.index() << self.offset_bits)
    }

    /// Returns the word-within-block of a byte address.
    #[inline]
    pub const fn word_of(self, a: Address) -> WordIndex {
        WordIndex(((a.raw() >> 2) & ((1 << (self.offset_bits - 2)) - 1)) as u8)
    }
}

impl Default for BlockGeometry {
    /// Returns [`BlockGeometry::PAPER`] (16-byte blocks).
    fn default() -> Self {
        BlockGeometry::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_16_bytes() {
        let g = BlockGeometry::default();
        assert_eq!(g.block_bytes(), 16);
        assert_eq!(g.block_words(), 4);
        assert_eq!(g.offset_bits(), 4);
    }

    #[test]
    fn block_mapping_round_trips() {
        let g = BlockGeometry::PAPER;
        for raw in [0u64, 1, 15, 16, 17, 0xffff, 0x1234_5678] {
            let a = Address::new(raw);
            let b = g.block_of(a);
            let base = g.block_base(b);
            assert!(base.raw() <= raw);
            assert!(raw < base.raw() + g.block_bytes());
        }
    }

    #[test]
    fn word_of_extracts_word_within_block() {
        let g = BlockGeometry::PAPER;
        assert_eq!(g.word_of(Address::new(0)).raw(), 0);
        assert_eq!(g.word_of(Address::new(4)).raw(), 1);
        assert_eq!(g.word_of(Address::new(7)).raw(), 1);
        assert_eq!(g.word_of(Address::new(12)).raw(), 3);
        assert_eq!(g.word_of(Address::new(16)).raw(), 0);
    }

    #[test]
    fn address_offset_advances() {
        let a = Address::new(100);
        assert_eq!(a.offset(28).raw(), 128);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0x10).to_string(), "0x10");
        assert_eq!(BlockAddr::from_index(0x2).to_string(), "blk:0x2");
    }

    #[test]
    fn larger_geometry() {
        let g = BlockGeometry::new(6); // 64-byte blocks
        assert_eq!(g.block_bytes(), 64);
        assert_eq!(g.block_words(), 16);
        assert_eq!(g.block_of(Address::new(64)).index(), 1);
        assert_eq!(g.word_of(Address::new(60)).raw(), 15);
    }

    #[test]
    fn conversions() {
        let a: Address = 42u64.into();
        let r: u64 = a.into();
        assert_eq!(r, 42);
    }

    #[test]
    fn block_id_round_trips() {
        let id = BlockId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.as_block_addr(), BlockAddr::from_index(7));
        assert_eq!(id.to_string(), "blk#7");
        assert!(BlockId::new(1) < BlockId::new(2));
    }
}

//! Memory-access classification.

use core::fmt;

/// The kind of a memory reference.
///
/// The paper's methodology treats instruction fetches as coherence-free
/// ("we assume that instructions do not cause any cache consistency related
/// traffic") but still counts them in the reference total, so they must be
/// present in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Instruction fetch. Never generates coherence traffic.
    InstrFetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

impl AccessKind {
    /// All access kinds, in trace-encoding order.
    pub const ALL: [AccessKind; 3] = [AccessKind::InstrFetch, AccessKind::Read, AccessKind::Write];

    /// Returns `true` for data references (reads and writes).
    ///
    /// ```
    /// # use dircc_types::AccessKind;
    /// assert!(AccessKind::Read.is_data());
    /// assert!(!AccessKind::InstrFetch.is_data());
    /// ```
    #[inline]
    pub const fn is_data(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Write)
    }

    /// Returns `true` for writes.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Returns a stable single-character code used by the text trace format
    /// (`I`, `R`, `W`).
    #[inline]
    pub const fn code(self) -> char {
        match self {
            AccessKind::InstrFetch => 'I',
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        }
    }

    /// Parses the single-character code produced by [`AccessKind::code`].
    pub const fn from_code(c: char) -> Option<Self> {
        match c {
            'I' => Some(AccessKind::InstrFetch),
            'R' => Some(AccessKind::Read),
            'W' => Some(AccessKind::Write),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "instr",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_classification() {
        assert!(!AccessKind::InstrFetch.is_data());
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn code_round_trips() {
        for k in AccessKind::ALL {
            assert_eq!(AccessKind::from_code(k.code()), Some(k));
        }
        assert_eq!(AccessKind::from_code('x'), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(AccessKind::InstrFetch.to_string(), "instr");
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}

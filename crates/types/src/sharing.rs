//! The CPU→cache sharing model (§4.4).
//!
//! Lives in `dircc-types` (rather than the engine) because the trace layer
//! precomputes sharing-dependent cache indices when it builds
//! structure-of-arrays replay streams.

/// How trace CPUs map onto protocol caches (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SharingModel {
    /// One cache per CPU: hardware's view.
    #[default]
    Processor,
    /// One cache per *process*: the paper's sharing definition ("a block is
    /// considered shared only if it is accessed by more than one process").
    /// The protocol must have at least as many caches as there are
    /// processes.
    Process,
}

//! The event taxonomy: how each data reference is classified.
//!
//! The paper's key methodological move is splitting a protocol into a
//! *state-change specification* and a *cost model*: "The frequency with
//! which each of the events ... occurs depends only on the state change
//! specification, not on the method used to implement it." [`Event`] is the
//! state-change half — every protocol classifies each data reference into
//! one of these events (Table 4's rows) — while the bus crate supplies the
//! cost half.

use core::fmt;

/// Why a miss happened: what the rest of the system held at miss time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissContext {
    /// First reference to this block anywhere in the trace. Counted but
    /// charged zero cost ("these occur in a uniprocessor infinite cache as
    /// well").
    FirstRef,
    /// The block is clean in `copies` other caches; memory is current.
    CleanElsewhere {
        /// Number of other caches holding the block.
        copies: u32,
    },
    /// The block is dirty in exactly one other cache (memory is stale).
    DirtyElsewhere,
    /// The block has been referenced before but is cached nowhere; memory
    /// is current. (Occurs in protocols that evict copies, e.g. limited-
    /// pointer directories.)
    MemoryOnly,
}

/// What the writer's cache and the rest of the system held on a write hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteHitContext {
    /// The local copy is already dirty (`wh-blk-drty`): proceeds with no
    /// bus traffic in every scheme evaluated.
    Dirty,
    /// The local copy is clean and no other cache has the block.
    CleanExclusive,
    /// The local copy is clean and `others` other caches hold it
    /// (Dragon's `wh-distrib`; an invalidation situation elsewhere).
    CleanShared {
        /// Number of other caches holding the block.
        others: u32,
    },
}

/// Classification of one memory reference under a particular protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Instruction fetch (never generates coherence traffic).
    Instr,
    /// Data read that hit in the local cache.
    ReadHit,
    /// Data read that missed.
    ReadMiss(MissContext),
    /// Data write that hit.
    WriteHit(WriteHitContext),
    /// Data write that missed.
    WriteMiss(MissContext),
}

impl Event {
    /// Returns `true` if this is any kind of miss.
    pub fn is_miss(&self) -> bool {
        matches!(self, Event::ReadMiss(_) | Event::WriteMiss(_))
    }

    /// Returns `true` for first-reference misses, which the paper counts
    /// but excludes from cost ("we exclude the misses caused by the first
    /// reference to a block").
    pub fn is_first_ref(&self) -> bool {
        matches!(
            self,
            Event::ReadMiss(MissContext::FirstRef) | Event::WriteMiss(MissContext::FirstRef)
        )
    }

    /// Returns the Table 4 row label for this event.
    pub fn label(&self) -> &'static str {
        match self {
            Event::Instr => "instr",
            Event::ReadHit => "rd-hit",
            Event::ReadMiss(MissContext::FirstRef) => "rm-first-ref",
            Event::ReadMiss(MissContext::CleanElsewhere { .. }) => "rm-blk-cln",
            Event::ReadMiss(MissContext::DirtyElsewhere) => "rm-blk-drty",
            Event::ReadMiss(MissContext::MemoryOnly) => "rm-blk-mem",
            Event::WriteHit(WriteHitContext::Dirty) => "wh-blk-drty",
            Event::WriteHit(WriteHitContext::CleanExclusive) => "wh-cln-excl",
            Event::WriteHit(WriteHitContext::CleanShared { .. }) => "wh-cln-shrd",
            Event::WriteMiss(MissContext::FirstRef) => "wm-first-ref",
            Event::WriteMiss(MissContext::CleanElsewhere { .. }) => "wm-blk-cln",
            Event::WriteMiss(MissContext::DirtyElsewhere) => "wm-blk-drty",
            Event::WriteMiss(MissContext::MemoryOnly) => "wm-blk-mem",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a protocol maintains coherence by invalidating stale copies or
/// by updating them in place (Dragon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceStyle {
    /// Stale copies are removed from other caches.
    Invalidate,
    /// Stale copies are overwritten with the new value.
    Update,
}

/// Everything a protocol did in response to one data reference.
///
/// The simulation engine turns a stream of `Outcome`s into event
/// frequencies (Table 4), bus-cycle costs (Table 5, Figures 2-5) and
/// verification checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The state-change classification of the reference.
    pub event: Event,
    /// Directed one-cycle control messages sent (sequential invalidates,
    /// write-back/flush requests, pointer-eviction invalidates).
    pub control_messages: u32,
    /// `true` if the protocol resorted to a broadcast for invalidation or
    /// write-back request delivery.
    pub used_broadcast: bool,
    /// `true` if a dirty block was written back to memory.
    pub write_back: bool,
    /// `true` if main memory now holds the current data for this block
    /// (write-back, or a write-through write).
    pub memory_updated: bool,
    /// `true` if the missing block was supplied cache-to-cache rather than
    /// from memory.
    pub cache_supplied: bool,
    /// Number of word-update transactions distributed to sharers (Dragon).
    pub updates: u32,
    /// Protocol-specific maintenance messages costing one cycle each
    /// (e.g. Yen & Fu single-bit updates).
    pub aux_messages: u32,
    /// Copies invalidated purely because a limited directory ran out of
    /// pointers (Dir-i-NB overflow evictions). Also included in
    /// `control_messages`.
    pub directory_evictions: u32,
}

impl Outcome {
    /// An outcome with the given event and no side effects.
    pub fn quiet(event: Event) -> Self {
        Outcome {
            event,
            control_messages: 0,
            used_broadcast: false,
            write_back: false,
            memory_updated: false,
            cache_supplied: false,
            updates: 0,
            aux_messages: 0,
            directory_evictions: 0,
        }
    }

    /// Builder-style setter for control messages.
    #[must_use]
    pub fn with_control(mut self, n: u32) -> Self {
        self.control_messages = n;
        self
    }

    /// Builder-style setter for the broadcast flag.
    #[must_use]
    pub fn with_broadcast(mut self) -> Self {
        self.used_broadcast = true;
        self
    }

    /// Builder-style setter marking a write-back (also marks memory
    /// updated).
    #[must_use]
    pub fn with_write_back(mut self) -> Self {
        self.write_back = true;
        self.memory_updated = true;
        self
    }
}

/// What a protocol did when a finite cache replaced (evicted) a block.
///
/// The paper's headline experiments use infinite caches, so evictions
/// never happen there; the finite-cache extension drives this path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictOutcome {
    /// A dirty/owned copy was written back to memory.
    pub write_back: bool,
    /// Directed control messages sent (e.g. a replacement hint clearing a
    /// directory pointer).
    pub control_messages: u32,
}

impl EvictOutcome {
    /// An eviction of a clean, silently droppable copy.
    pub const SILENT: EvictOutcome = EvictOutcome { write_back: false, control_messages: 0 };

    /// An eviction requiring a dirty write-back.
    pub const WRITE_BACK: EvictOutcome = EvictOutcome { write_back: true, control_messages: 0 };

    /// A clean eviction that sends a replacement hint to the directory.
    pub const NOTIFY: EvictOutcome = EvictOutcome { write_back: false, control_messages: 1 };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_ref_detection() {
        assert!(Event::ReadMiss(MissContext::FirstRef).is_first_ref());
        assert!(Event::WriteMiss(MissContext::FirstRef).is_first_ref());
        assert!(!Event::ReadMiss(MissContext::MemoryOnly).is_first_ref());
        assert!(!Event::ReadHit.is_first_ref());
    }

    #[test]
    fn miss_detection() {
        assert!(Event::ReadMiss(MissContext::DirtyElsewhere).is_miss());
        assert!(Event::WriteMiss(MissContext::CleanElsewhere { copies: 2 }).is_miss());
        assert!(!Event::WriteHit(WriteHitContext::Dirty).is_miss());
        assert!(!Event::Instr.is_miss());
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(
            Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }).label(),
            "rm-blk-cln"
        );
        assert_eq!(Event::WriteHit(WriteHitContext::Dirty).label(), "wh-blk-drty");
        assert_eq!(Event::WriteMiss(MissContext::DirtyElsewhere).to_string(), "wm-blk-drty");
    }

    #[test]
    fn outcome_builders() {
        let o = Outcome::quiet(Event::ReadHit).with_control(3).with_broadcast().with_write_back();
        assert_eq!(o.control_messages, 3);
        assert!(o.used_broadcast);
        assert!(o.write_back);
        assert!(o.memory_updated, "write-back implies memory updated");
        assert_eq!(o.updates, 0);
    }
}

//! Snoopy coherence protocols (the paper's comparison points).
//!
//! "These particular snoopy cache techniques were selected because they
//! represent two extremes of performance and complexity": [`Wti`]
//! (write-through-with-invalidate, "generally considered to be one of the
//! lowest-performance snooping cache consistency protocols") and
//! [`Dragon`] ("often considered to have the best performance among snoopy
//! cache schemes"). [`Berkeley`] implements the ownership scheme the paper
//! estimates as an aside in §5; [`WriteOnce`] (Goodman, reference \[2\]) and
//! [`Firefly`] (reference \[3\]) round out the snoopy design space the
//! paper's related work surveys.

mod berkeley;
mod dragon;
mod firefly;
mod mesi;
mod write_once;
mod wti;

pub use berkeley::Berkeley;
pub use dragon::Dragon;
pub use firefly::Firefly;
pub use mesi::Mesi;
pub use write_once::WriteOnce;
pub use wti::Wti;

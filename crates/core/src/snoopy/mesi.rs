//! The Illinois protocol (Papamarcos & Patel — the paper's reference \[5\]),
//! known today as MESI.
//!
//! Its contribution over WTI/write-once is the **exclusive-clean (E)**
//! state: a cache that misses on a block held by no one else installs it
//! exclusive, so a later write upgrades to Modified *silently* — no bus
//! transaction at all. Caches also supply blocks to each other directly
//! (a dirty supplier writes memory back in the same transfer).
//!
//! Within this workspace MESI is the snoopy analogue of what Yen & Fu's
//! single bit buys a directory scheme: writes to clean exclusive blocks
//! become free.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::CacheArray;
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// MESI copy states (Invalid is represented by absence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Copy {
    Modified,
    Exclusive,
    Shared,
}

/// The Illinois / MESI snoopy protocol.
///
/// ```
/// use dircc_core::snoopy::Mesi;
/// use dircc_core::Protocol;
///
/// assert_eq!(Mesi::new(4).name(), "MESI");
/// ```
#[derive(Debug, Clone)]
pub struct Mesi {
    caches: CacheArray<Copy>,
}

impl Mesi {
    /// Creates a MESI protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        Mesi { caches: CacheArray::new(n_caches) }
    }

    fn modified_owner(&self, block: BlockAddr) -> Option<CacheId> {
        self.caches
            .holders(block)
            .iter()
            .find(|c| self.caches.state(*c, block) == Some(&Copy::Modified))
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.modified_owner(block).is_some() {
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }

    /// Demotes every current holder to Shared (after a read joins).
    fn demote_all_to_shared(&mut self, block: BlockAddr) {
        for h in self.caches.holders(block).iter() {
            self.caches.set(h, block, Copy::Shared);
        }
    }
}

impl Protocol for Mesi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Mesi
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => {
                if self.caches.state(cache, block).is_some() {
                    return Outcome::quiet(Event::ReadHit);
                }
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::ReadMiss(ctx));
                let holders = self.caches.holders(block);
                if holders.is_empty() {
                    // Nobody has it: install Exclusive (the Illinois trick).
                    self.caches.set(cache, block, Copy::Exclusive);
                } else {
                    // A cache supplies; a Modified supplier writes memory
                    // back in the same transfer; everyone ends Shared.
                    out.cache_supplied = true;
                    if self.modified_owner(block).is_some() {
                        out = out.with_write_back();
                    }
                    self.demote_all_to_shared(block);
                    self.caches.set(cache, block, Copy::Shared);
                }
                out
            }
            AccessKind::Write => {
                let local = self.caches.state(cache, block).copied();
                let others = self.caches.other_holders(cache, block);
                match local {
                    Some(Copy::Modified) => Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)),
                    Some(Copy::Exclusive) => {
                        // Silent E -> M upgrade: the headline MESI benefit.
                        self.caches.set(cache, block, Copy::Modified);
                        Outcome::quiet(Event::WriteHit(WriteHitContext::CleanExclusive))
                    }
                    Some(Copy::Shared) => {
                        // Invalidation bus transaction; other copies snoop
                        // it and drop out.
                        let event = if others.is_empty() {
                            // Possible when a supplier's peers were
                            // invalidated meanwhile; still costs the
                            // upgrade transaction in real MESI, classified
                            // shared-0 here.
                            Event::WriteHit(WriteHitContext::CleanShared { others: 0 })
                        } else {
                            Event::WriteHit(WriteHitContext::CleanShared {
                                others: others.len() as u32,
                            })
                        };
                        let mut out = Outcome::quiet(event);
                        out.control_messages = 1; // the upgrade/invalidate transaction
                        for h in others.iter() {
                            self.caches.remove(h, block);
                        }
                        self.caches.set(cache, block, Copy::Modified);
                        out
                    }
                    None => {
                        let ctx = self.classify_miss(block, first_ref);
                        let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                        if self.modified_owner(block).is_some() {
                            out.cache_supplied = true;
                            out = out.with_write_back();
                        } else if !others.is_empty() {
                            out.cache_supplied = true;
                        }
                        // The read-for-ownership transaction invalidates
                        // every other copy as it passes.
                        self.caches.remove_all_except(block, None);
                        self.caches.set(cache, block, Copy::Modified);
                        out
                    }
                }
            }
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        match self.caches.remove(cache, block) {
            Some(Copy::Modified) => EvictOutcome::WRITE_BACK,
            Some(_) => EvictOutcome::SILENT,
            None => EvictOutcome::SILENT,
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        for (block, holders) in self.caches.iter_blocks() {
            let exclusive = holders
                .iter()
                .filter(|c| {
                    matches!(
                        self.caches.state(*c, block),
                        Some(&Copy::Modified) | Some(&Copy::Exclusive)
                    )
                })
                .count();
            if exclusive > 1 {
                return Err(format!("{block}: {exclusive} M/E copies"));
            }
            if exclusive == 1 && holders.len() > 1 {
                return Err(format!("{block}: M/E copy coexists with sharers"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |s| match s {
            Copy::Shared => 0,
            Copy::Exclusive => 1,
            Copy::Modified => 2,
        });
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut Mesi, c: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(c), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut Mesi, c: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(c), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn exclusive_upgrade_is_silent() {
        let mut p = Mesi::new(4);
        read(&mut p, 0, 1, true); // E
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
        assert_eq!(o.control_messages, 0, "E->M costs no bus transaction");
        assert!(!o.used_broadcast && !o.memory_updated);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::Dirty));
        p.check_invariants().unwrap();
    }

    #[test]
    fn shared_upgrade_costs_one_transaction() {
        let mut p = Mesi::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false); // both Shared now
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        assert_eq!(o.control_messages, 1);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(0)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn second_reader_demotes_exclusive_and_is_cache_supplied() {
        let mut p = Mesi::new(4);
        read(&mut p, 0, 1, true); // E in cache 0
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert!(o.cache_supplied, "Illinois: caches supply each other");
        assert!(!o.write_back, "clean supplier, memory already current");
        // The old E copy is now S: its write costs a transaction.
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.control_messages, 1);
        p.check_invariants().unwrap();
    }

    #[test]
    fn modified_supplier_writes_back_while_supplying() {
        let mut p = Mesi::new(4);
        write(&mut p, 0, 1, true); // M
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.cache_supplied && o.write_back && o.memory_updated);
        assert_eq!(p.holders(b(1)).len(), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_invalidates_via_rfo() {
        let mut p = Mesi::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        let o = write(&mut p, 2, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 2 }));
        assert_eq!(o.control_messages, 0, "invalidation rides the fetch");
        assert!(o.cache_supplied);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(2)));
    }

    #[test]
    fn single_me_copy_invariant_holds_under_stress() {
        let mut p = Mesi::new(4);
        for i in 0..500u64 {
            let cache = (i % 4) as u16;
            if i % 3 == 0 {
                write(&mut p, cache, i % 6, i < 6);
            } else {
                read(&mut p, cache, i % 6, i < 6);
            }
            p.check_invariants().unwrap();
        }
    }
}

//! The Berkeley Ownership snoopy protocol.
//!
//! The paper estimates Berkeley's performance from the `Dir0B` event
//! frequencies "by trivially setting the directory access cost to 0 bus
//! cycles", noting that "the Berkeley scheme, in addition, uses a different
//! state for a dirty block that becomes shared to enable the cache to
//! supply a block rather than memory."
//!
//! This module implements the protocol itself: an invalidation snoopy
//! scheme with *ownership* — the owner of a dirty block supplies it
//! cache-to-cache on a miss and keeps ownership (state *shared-dirty*);
//! memory is never updated while the block stays cached. Because the
//! which-blocks-are-where evolution matches `Dir0B`'s state-change model,
//! the rm/wm/wh event totals coincide with `Dir0B` (asserted by
//! integration tests); only suppliers and costs differ.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::CacheArray;
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// Per-cache copy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Copy {
    /// Valid, not owned (memory or some owner has the canonical copy).
    Shared,
    /// Owned: this cache supplies the block and must eventually write it
    /// back (never, with infinite caches). May coexist with `Shared`
    /// copies (the shared-dirty state).
    Owned,
}

/// The Berkeley Ownership protocol.
///
/// ```
/// use dircc_core::snoopy::Berkeley;
/// use dircc_core::Protocol;
///
/// assert_eq!(Berkeley::new(4).name(), "Berkeley");
/// ```
#[derive(Debug, Clone)]
pub struct Berkeley {
    caches: CacheArray<Copy>,
}

impl Berkeley {
    /// Creates a Berkeley protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        Berkeley { caches: CacheArray::new(n_caches) }
    }

    fn owner(&self, block: BlockAddr) -> Option<CacheId> {
        self.caches
            .holders(block)
            .iter()
            .find(|c| self.caches.state(*c, block) == Some(&Copy::Owned))
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.owner(block).is_some() {
            // An owner exists: memory is stale, the owner supplies.
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }
}

impl Protocol for Berkeley {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Berkeley
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => {
                if self.caches.state(cache, block).is_some() {
                    return Outcome::quiet(Event::ReadHit);
                }
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::ReadMiss(ctx));
                // The owner (if any) supplies the block and *keeps
                // ownership* — no write-back to memory. Without an owner,
                // memory supplies.
                out.cache_supplied = self.owner(block).is_some();
                self.caches.set(cache, block, Copy::Shared);
                out
            }
            AccessKind::Write => {
                let local = self.caches.state(cache, block).copied();
                let others = self.caches.other_holders(cache, block);
                let event = match local {
                    Some(Copy::Owned) if others.is_empty() => {
                        // Exclusive owner: write proceeds silently.
                        return Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty));
                    }
                    Some(_) => {
                        // Shared (or shared-dirty) hit: one bus transaction
                        // invalidates the other copies.
                        if others.is_empty() {
                            Event::WriteHit(WriteHitContext::CleanExclusive)
                        } else {
                            Event::WriteHit(WriteHitContext::CleanShared {
                                others: others.len() as u32,
                            })
                        }
                    }
                    None => Event::WriteMiss(self.classify_miss(block, first_ref)),
                };
                let mut out = Outcome::quiet(event);
                // On a write miss, the previous owner (if any) supplies.
                if local.is_none() {
                    out.cache_supplied = self.owner(block).is_some();
                }
                // Invalidations are snooped off the single bus transaction.
                for h in others.iter() {
                    self.caches.remove(h, block);
                }
                self.caches.set(cache, block, Copy::Owned);
                out
            }
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        match self.caches.remove(cache, block) {
            // Ownership returns to memory with the data.
            Some(Copy::Owned) => EvictOutcome::WRITE_BACK,
            Some(Copy::Shared) => EvictOutcome::SILENT,
            None => EvictOutcome::SILENT,
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        // At most one owner per block.
        for (block, holders) in self.caches.iter_blocks() {
            let owners = holders
                .iter()
                .filter(|c| self.caches.state(*c, block) == Some(&Copy::Owned))
                .count();
            if owners > 1 {
                return Err(format!("{block}: {owners} owners"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |s| u64::from(*s == Copy::Owned));
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut Berkeley, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut Berkeley, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn owner_supplies_without_write_back() {
        let mut p = Berkeley::new(4);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.cache_supplied, "the owner supplies the block");
        assert!(!o.write_back, "memory stays stale: that's the Berkeley point");
        assert!(!o.memory_updated);
        assert_eq!(p.holders(b(1)).len(), 2);
        p.check_invariants().unwrap();
    }

    #[test]
    fn ownership_persists_through_sharing() {
        let mut p = Berkeley::new(4);
        write(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        // Cache 0 is shared-dirty: its next write must invalidate cache 1.
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(0)));
        p.check_invariants().unwrap();
    }

    #[test]
    fn ownership_transfers_on_write_miss() {
        let mut p = Berkeley::new(4);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::DirtyElsewhere));
        assert!(o.cache_supplied);
        assert!(!o.write_back);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(1)));
        // New owner writes silently now.
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::Dirty));
    }

    #[test]
    fn unowned_shared_read_comes_from_memory() {
        let mut p = Berkeley::new(4);
        read(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert!(!o.cache_supplied, "no owner: memory supplies");
    }

    #[test]
    fn shared_write_hit_takes_ownership() {
        let mut p = Berkeley::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(1)));
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::Dirty));
        p.check_invariants().unwrap();
    }
}

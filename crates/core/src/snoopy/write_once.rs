//! Goodman's Write-Once snoopy protocol (the paper's reference \[2\]).
//!
//! Write-Once is the historical middle ground between WTI and full
//! copy-back: the *first* write to a clean block is written through to
//! memory (invalidating other copies as a side effect of the bus write),
//! leaving the block *reserved* — exclusive and consistent with memory —
//! so subsequent writes proceed locally, making the block dirty. Misses to
//! dirty blocks are supplied by the owning cache while memory is updated.
//!
//! Relative to `Dir0B`/WTI, the holder evolution is identical; the cost
//! profile sits between them: one-word write-throughs only on first
//! writes, full write-backs only when a dirty block is re-shared.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::CacheArray;
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// Per-cache copy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Copy {
    /// Valid, potentially shared, consistent with memory.
    Valid,
    /// Exclusive and consistent with memory (written through once).
    Reserved,
    /// Exclusive and inconsistent with memory.
    Dirty,
}

/// The Write-Once snoopy protocol.
///
/// ```
/// use dircc_core::snoopy::WriteOnce;
/// use dircc_core::Protocol;
///
/// assert_eq!(WriteOnce::new(4).name(), "WriteOnce");
/// ```
#[derive(Debug, Clone)]
pub struct WriteOnce {
    caches: CacheArray<Copy>,
}

impl WriteOnce {
    /// Creates a Write-Once protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        WriteOnce { caches: CacheArray::new(n_caches) }
    }

    fn dirty_owner(&self, block: BlockAddr) -> Option<CacheId> {
        self.caches
            .holders(block)
            .iter()
            .find(|c| self.caches.state(*c, block) == Some(&Copy::Dirty))
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.dirty_owner(block).is_some() {
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }
}

impl Protocol for WriteOnce {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::WriteOnce
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => {
                if self.caches.state(cache, block).is_some() {
                    return Outcome::quiet(Event::ReadHit);
                }
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::ReadMiss(ctx));
                if let Some(owner) = self.dirty_owner(block) {
                    // The owner supplies the block; memory is updated by
                    // the same bus transfer; both copies become Valid.
                    out.cache_supplied = true;
                    out = out.with_write_back();
                    self.caches.set(owner, block, Copy::Valid);
                } else if let Some(sole) = self.caches.holders(block).sole() {
                    // A Reserved copy loses exclusivity.
                    self.caches.set(sole, block, Copy::Valid);
                }
                self.caches.set(cache, block, Copy::Valid);
                out
            }
            AccessKind::Write => {
                let local = self.caches.state(cache, block).copied();
                let others = self.caches.other_holders(cache, block);
                match local {
                    Some(Copy::Dirty) => Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty)),
                    Some(Copy::Reserved) => {
                        // Second write: goes dirty locally, no bus traffic.
                        self.caches.set(cache, block, Copy::Dirty);
                        Outcome::quiet(Event::WriteHit(WriteHitContext::Dirty))
                    }
                    Some(Copy::Valid) => {
                        // First write: write through one word; snoopers
                        // invalidate on it for free; block becomes Reserved.
                        let event = if others.is_empty() {
                            Event::WriteHit(WriteHitContext::CleanExclusive)
                        } else {
                            Event::WriteHit(WriteHitContext::CleanShared {
                                others: others.len() as u32,
                            })
                        };
                        let mut out = Outcome::quiet(event);
                        out.memory_updated = true;
                        for h in others.iter() {
                            self.caches.remove(h, block);
                        }
                        self.caches.set(cache, block, Copy::Reserved);
                        out
                    }
                    None => {
                        let ctx = self.classify_miss(block, first_ref);
                        let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                        if let Some(owner) = self.dirty_owner(block) {
                            out.cache_supplied = true;
                            out = out.with_write_back();
                            let _ = owner;
                        }
                        self.caches.remove_all_except(block, None);
                        // The write-through of the written word leaves the
                        // block Reserved (memory current).
                        out.memory_updated = true;
                        self.caches.set(cache, block, Copy::Reserved);
                        out
                    }
                }
            }
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        match self.caches.remove(cache, block) {
            Some(Copy::Dirty) => EvictOutcome::WRITE_BACK,
            // Reserved and Valid copies are consistent with memory.
            Some(_) => EvictOutcome::SILENT,
            None => EvictOutcome::SILENT,
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        for (block, holders) in self.caches.iter_blocks() {
            let exclusive = holders
                .iter()
                .filter(|c| {
                    matches!(
                        self.caches.state(*c, block),
                        Some(&Copy::Reserved) | Some(&Copy::Dirty)
                    )
                })
                .count();
            if exclusive > 1 {
                return Err(format!("{block}: {exclusive} exclusive copies"));
            }
            if exclusive == 1 && holders.len() > 1 {
                return Err(format!("{block}: exclusive copy coexists with sharers"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |s| match s {
            Copy::Valid => 0,
            Copy::Reserved => 1,
            Copy::Dirty => 2,
        });
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut WriteOnce, c: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(c), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut WriteOnce, c: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(c), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn first_write_goes_through_second_stays_local() {
        let mut p = WriteOnce::new(4);
        read(&mut p, 0, 1, true);
        let o1 = write(&mut p, 0, 1, false);
        assert_eq!(o1.event, Event::WriteHit(WriteHitContext::CleanExclusive));
        assert!(o1.memory_updated, "the first write is written through");
        let o2 = write(&mut p, 0, 1, false);
        assert_eq!(o2.event, Event::WriteHit(WriteHitContext::Dirty));
        assert!(!o2.memory_updated, "later writes stay local");
        p.check_invariants().unwrap();
    }

    #[test]
    fn first_write_invalidates_sharers_for_free() {
        let mut p = WriteOnce::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        read(&mut p, 2, 1, false);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 2 }));
        assert_eq!(o.control_messages, 0, "snooped off the write-through");
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(0)));
    }

    #[test]
    fn dirty_owner_supplies_and_memory_freshens() {
        let mut p = WriteOnce::new(4);
        read(&mut p, 0, 1, true);
        write(&mut p, 0, 1, false); // reserved
        write(&mut p, 0, 1, false); // dirty
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.cache_supplied && o.write_back && o.memory_updated);
        assert_eq!(p.holders(b(1)).len(), 2);
        // The old owner's copy is now plain Valid: its next write is a
        // first write again.
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        p.check_invariants().unwrap();
    }

    #[test]
    fn reserved_copy_loses_exclusivity_on_shared_read() {
        let mut p = WriteOnce::new(4);
        write(&mut p, 0, 1, true); // miss -> reserved
        let o = read(&mut p, 1, 1, false);
        // Reserved means memory is current: a clean miss, no write-back.
        assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert!(!o.write_back);
        p.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_takes_reserved_ownership() {
        let mut p = WriteOnce::new(4);
        read(&mut p, 0, 1, true);
        let o = write(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert!(o.memory_updated);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(1)));
        // Next write is local.
        assert_eq!(write(&mut p, 1, 1, false).event, Event::WriteHit(WriteHitContext::Dirty));
    }
}

//! Write-Through-With-Invalidate (WTI).
//!
//! "A simple snoopy cache protocol that relies on a write-through (as
//! opposed to copy-back) cache policy ... All writes to cache blocks are
//! transmitted to main memory. Other caches snooping on the bus check to
//! see if they have the block that is being written; if so, they invalidate
//! that block in their own cache. ... Like Dir0B, multiple cached copies of
//! clean blocks can exist simultaneously."
//!
//! Because every write goes to memory, memory is never stale and no block
//! is ever dirty; invalidations are free (piggy-backed on the snooped
//! write). The paper notes WTI shares `Dir0B`'s state-change model, so
//! their rm/wm/wh event totals are identical — an equivalence the
//! integration tests assert.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::CacheArray;
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// The WTI snoopy protocol.
///
/// ```
/// use dircc_core::snoopy::Wti;
/// use dircc_core::Protocol;
///
/// assert_eq!(Wti::new(4).name(), "WTI");
/// ```
#[derive(Debug, Clone)]
pub struct Wti {
    caches: CacheArray<()>,
}

impl Wti {
    /// Creates a WTI protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        Wti { caches: CacheArray::new(n_caches) }
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else {
            // Memory is always current under write-through, so a cached
            // block is by definition clean.
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }
}

impl Protocol for Wti {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Wti
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => {
                if self.caches.state(cache, block).is_some() {
                    Outcome::quiet(Event::ReadHit)
                } else {
                    let ctx = self.classify_miss(block, first_ref);
                    self.caches.set(cache, block, ());
                    Outcome::quiet(Event::ReadMiss(ctx))
                }
            }
            AccessKind::Write => {
                let hit = self.caches.state(cache, block).is_some();
                let others = self.caches.other_holders(cache, block);
                let event = if hit {
                    if others.is_empty() {
                        Event::WriteHit(WriteHitContext::CleanExclusive)
                    } else {
                        Event::WriteHit(WriteHitContext::CleanShared {
                            others: others.len() as u32,
                        })
                    }
                } else {
                    Event::WriteMiss(self.classify_miss(block, first_ref))
                };
                // Snooping caches invalidate for free on the write-through.
                for h in others.iter() {
                    self.caches.remove(h, block);
                }
                self.caches.set(cache, block, ());
                let mut out = Outcome::quiet(event);
                out.memory_updated = true; // the write-through itself
                out
            }
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        // Write-through: memory is always current; evictions are silent.
        self.caches.remove(cache, block);
        EvictOutcome::SILENT
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        // Write-through: residency is the whole state.
        self.caches.encode_states(out, |()| 0);
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut Wti, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut Wti, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn every_write_updates_memory() {
        let mut p = Wti::new(4);
        assert!(write(&mut p, 0, 1, true).memory_updated);
        assert!(write(&mut p, 0, 1, false).memory_updated);
        read(&mut p, 1, 1, false);
        assert!(write(&mut p, 1, 1, false).memory_updated);
    }

    #[test]
    fn writes_invalidate_other_copies_for_free() {
        let mut p = Wti::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        read(&mut p, 2, 1, false);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 2 }));
        assert_eq!(o.control_messages, 0, "snooped invalidations are free");
        assert!(!o.used_broadcast);
        assert_eq!(p.holders(b(1)).sole(), Some(CacheId::new(0)));
    }

    #[test]
    fn no_block_is_ever_dirty() {
        let mut p = Wti::new(4);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(
            o.event,
            Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }),
            "memory is current: never a dirty-elsewhere miss"
        );
        assert!(!o.write_back);
    }

    #[test]
    fn write_allocate_installs_the_block() {
        let mut p = Wti::new(2);
        let o = write(&mut p, 0, 1, true);
        assert_eq!(o.event, Event::WriteMiss(MissContext::FirstRef));
        assert_eq!(read(&mut p, 0, 1, false).event, Event::ReadHit);
    }

    #[test]
    fn repeat_exclusive_writes_classify_clean_exclusive() {
        let mut p = Wti::new(2);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
    }

    #[test]
    fn invariants_hold() {
        let mut p = Wti::new(3);
        for i in 0..100u64 {
            let cache = (i % 3) as u16;
            if i % 4 == 0 {
                write(&mut p, cache, i % 7, i < 7);
            } else {
                read(&mut p, cache, i % 7, i < 7);
            }
        }
        p.check_invariants().unwrap();
    }
}

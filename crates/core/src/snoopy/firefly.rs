//! The DEC Firefly snoopy update protocol (the paper's reference \[3\]).
//!
//! Like Dragon, Firefly maintains consistency by *updating* remote copies
//! rather than invalidating them; unlike Dragon, a write to a shared block
//! also updates **main memory** (the update is a bus write that memory
//! snarfs), so memory never goes stale for shared blocks. Only exclusive
//! blocks can be dirty, and they go clean-exclusive again the moment
//! another cache reads them (the supply transfer updates memory).
//!
//! The behavioural contrast with Dragon is visible in the events: Firefly
//! has no `rm-blk-drty` for blocks that are actively shared, and its
//! update traffic doubles as write-through traffic.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::{BlockSet, CacheArray};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// The Firefly update protocol.
///
/// ```
/// use dircc_core::snoopy::Firefly;
/// use dircc_core::{CoherenceStyle, Protocol};
///
/// let p = Firefly::new(4);
/// assert_eq!(p.name(), "Firefly");
/// assert_eq!(p.style(), CoherenceStyle::Update);
/// ```
#[derive(Debug, Clone)]
pub struct Firefly {
    caches: CacheArray<()>,
    /// Blocks whose sole copy is dirty (memory stale). Shared blocks are
    /// never stale: shared writes update memory.
    memory_stale: BlockSet,
}

impl Firefly {
    /// Creates a Firefly protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        Firefly { caches: CacheArray::new(n_caches), memory_stale: BlockSet::new() }
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.memory_stale.contains(block) {
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }
}

impl Protocol for Firefly {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Firefly
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => {
                if self.caches.state(cache, block).is_some() {
                    return Outcome::quiet(Event::ReadHit);
                }
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::ReadMiss(ctx));
                out.cache_supplied = !self.caches.holders(block).is_empty();
                // The supply transfer also refreshes memory if it was
                // stale (the previous owner's data goes on the bus).
                if self.memory_stale.remove(block) {
                    out.memory_updated = true;
                }
                self.caches.set(cache, block, ());
                out
            }
            AccessKind::Write => {
                let hit = self.caches.state(cache, block).is_some();
                let others = self.caches.other_holders(cache, block);
                let mut out = if hit {
                    let event = if others.is_empty() {
                        if self.memory_stale.contains(block) {
                            Event::WriteHit(WriteHitContext::Dirty)
                        } else {
                            Event::WriteHit(WriteHitContext::CleanExclusive)
                        }
                    } else {
                        Event::WriteHit(WriteHitContext::CleanShared {
                            others: others.len() as u32,
                        })
                    };
                    Outcome::quiet(event)
                } else {
                    let ctx = self.classify_miss(block, first_ref);
                    let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                    out.cache_supplied = !others.is_empty();
                    out
                };
                if others.is_empty() {
                    // Exclusive: the write stays local; memory goes stale.
                    self.memory_stale.insert(block);
                } else {
                    // Shared: the update is a bus write that memory snarfs.
                    out.updates = 1;
                    out.memory_updated = true;
                    self.memory_stale.remove(block);
                }
                self.caches.set(cache, block, ());
                out
            }
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        if self.caches.remove(cache, block).is_none() {
            return EvictOutcome::SILENT;
        }
        // Only a sole holder can be stale (shared writes update memory).
        if self.memory_stale.remove(block) {
            EvictOutcome::WRITE_BACK
        } else {
            EvictOutcome::SILENT
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
        self.memory_stale.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        for block in self.memory_stale.iter() {
            let holders = self.caches.holders(block);
            if holders.len() != 1 {
                return Err(format!(
                    "{block}: memory stale requires exactly one (dirty) holder, found {}",
                    holders.len()
                ));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |()| 0);
        out.push(self.memory_stale.len() as u64);
        out.extend(self.memory_stale.iter().map(|b| b.index()));
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut Firefly, c: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(c), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut Firefly, c: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(c), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn shared_writes_update_memory() {
        let mut p = Firefly::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        assert_eq!(o.updates, 1);
        assert!(o.memory_updated, "Firefly updates memory on shared writes");
        assert_eq!(p.holders(b(1)).len(), 2, "no copy is invalidated");
        p.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_writes_stay_local_and_stale() {
        let mut p = Firefly::new(4);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::Dirty));
        assert!(!o.memory_updated);
        // A later reader forces the supply to refresh memory.
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.cache_supplied && o.memory_updated);
        // Now shared and clean: writes are one-word bus updates.
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 1 }));
        p.check_invariants().unwrap();
    }

    #[test]
    fn shared_blocks_never_have_stale_memory() {
        let mut p = Firefly::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        for _ in 0..5 {
            write(&mut p, 0, 1, false);
            write(&mut p, 1, 1, false);
            p.check_invariants().unwrap();
        }
        // A third cache's miss is clean (memory current).
        let o = read(&mut p, 2, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 2 }));
    }

    #[test]
    fn copies_never_disappear() {
        let mut p = Firefly::new(4);
        for c in 0..4u16 {
            read(&mut p, c, 1, c == 0);
        }
        write(&mut p, 2, 1, false);
        assert_eq!(p.holders(b(1)).len(), 4);
    }
}

//! The Dragon snoopy **update** protocol.
//!
//! "Dragon is an update protocol, i.e., it maintains consistency by
//! updating stale cached data with the new value rather than by
//! invalidating the stale data. The cache keeps state with each block to
//! indicate whether or not each block is shared; all writes to shared
//! blocks must be broadcast on the bus so that the other copies can be
//! updated. Dragon uses a special 'shared' line to determine whether a
//! block is currently being shared."
//!
//! With infinite caches copies never disappear, so "once a block is loaded
//! into a cache, it remains there forever" — Dragon's misses are only the
//! per-cache cold misses, and its dominant bus events are the write
//! updates (`wh-distrib`).

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};
use crate::protocol::{Protocol, ProtocolKind};
use dircc_cache::{BlockSet, CacheArray};
use dircc_types::{AccessKind, BlockAddr, CacheId, CacheIdSet};

/// The Dragon update protocol.
///
/// ```
/// use dircc_core::snoopy::Dragon;
/// use dircc_core::{CoherenceStyle, Protocol};
///
/// let p = Dragon::new(4);
/// assert_eq!(p.name(), "Dragon");
/// assert_eq!(p.style(), CoherenceStyle::Update);
/// ```
#[derive(Debug, Clone)]
pub struct Dragon {
    caches: CacheArray<()>,
    /// Blocks whose memory copy is stale (written at least once; with
    /// infinite caches a written block is never flushed back).
    memory_stale: BlockSet,
}

impl Dragon {
    /// Creates a Dragon protocol over `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is out of `1..=64`.
    pub fn new(n_caches: usize) -> Self {
        Dragon { caches: CacheArray::new(n_caches), memory_stale: BlockSet::new() }
    }

    fn classify_miss(&self, block: BlockAddr, first_ref: bool) -> MissContext {
        let holders = self.caches.holders(block);
        if holders.is_empty() {
            if first_ref {
                MissContext::FirstRef
            } else {
                MissContext::MemoryOnly
            }
        } else if self.memory_stale.contains(block) {
            // An owner (shared-dirty) copy exists; it supplies the data.
            MissContext::DirtyElsewhere
        } else {
            MissContext::CleanElsewhere { copies: holders.len() as u32 }
        }
    }
}

impl Protocol for Dragon {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Dragon
    }

    fn num_caches(&self) -> usize {
        self.caches.num_caches()
    }

    fn access(
        &mut self,
        cache: CacheId,
        kind: AccessKind,
        block: BlockAddr,
        first_ref: bool,
    ) -> Outcome {
        match kind {
            AccessKind::Read => {
                if self.caches.state(cache, block).is_some() {
                    return Outcome::quiet(Event::ReadHit);
                }
                let ctx = self.classify_miss(block, first_ref);
                let mut out = Outcome::quiet(Event::ReadMiss(ctx));
                // The shared line tells the holders to supply the block
                // cache-to-cache whenever one exists.
                out.cache_supplied = !self.caches.holders(block).is_empty();
                self.caches.set(cache, block, ());
                out
            }
            AccessKind::Write => {
                let hit = self.caches.state(cache, block).is_some();
                let others = self.caches.other_holders(cache, block);
                let mut out = if hit {
                    let event = if others.is_empty() {
                        if self.memory_stale.contains(block) {
                            Event::WriteHit(WriteHitContext::Dirty)
                        } else {
                            Event::WriteHit(WriteHitContext::CleanExclusive)
                        }
                    } else {
                        Event::WriteHit(WriteHitContext::CleanShared {
                            others: others.len() as u32,
                        })
                    };
                    Outcome::quiet(event)
                } else {
                    let ctx = self.classify_miss(block, first_ref);
                    let mut out = Outcome::quiet(Event::WriteMiss(ctx));
                    out.cache_supplied = !others.is_empty();
                    out
                };
                // Writes to shared blocks broadcast a one-word update; no
                // copy is ever invalidated.
                if !others.is_empty() {
                    out.updates = 1;
                }
                self.caches.set(cache, block, ());
                self.memory_stale.insert(block);
                out
            }
            AccessKind::InstrFetch => panic!("instruction fetches never reach the protocol"),
        }
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> EvictOutcome {
        if self.caches.remove(cache, block).is_none() {
            return EvictOutcome::SILENT;
        }
        // Update protocol: every copy is current, so the *last* copy of a
        // stale-memory block must flush on its way out.
        if self.caches.holders(block).is_empty() && self.memory_stale.remove(block) {
            EvictOutcome::WRITE_BACK
        } else {
            EvictOutcome::SILENT
        }
    }

    fn reserve_blocks(&mut self, blocks: usize) {
        self.caches.reserve_blocks(blocks);
        self.memory_stale.reserve_blocks(blocks);
    }

    fn holders(&self, block: BlockAddr) -> CacheIdSet {
        self.caches.holders(block)
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.caches.check_residency()?;
        // A stale-memory block must still be cached somewhere (infinite
        // caches: the writer's copy cannot have vanished).
        for block in self.memory_stale.iter() {
            if self.caches.holders(block).is_empty() {
                return Err(format!("{block}: memory stale but no cached copy"));
            }
        }
        Ok(())
    }

    fn encode_state(&self, out: &mut Vec<u64>) {
        self.caches.encode_states(out, |()| 0);
        out.push(self.memory_stale.len() as u64);
        out.extend(self.memory_stale.iter().map(|b| b.index()));
    }

    fn boxed_clone(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }
    fn read(p: &mut Dragon, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Read, b(blk), first)
    }
    fn write(p: &mut Dragon, cache: u16, blk: u64, first: bool) -> Outcome {
        p.access(CacheId::new(cache), AccessKind::Write, b(blk), first)
    }

    #[test]
    fn copies_are_never_invalidated() {
        let mut p = Dragon::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        read(&mut p, 2, 1, false);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanShared { others: 2 }));
        assert_eq!(o.updates, 1, "one word-update broadcast");
        assert_eq!(p.holders(b(1)).len(), 3, "all copies remain");
        p.check_invariants().unwrap();
    }

    #[test]
    fn misses_only_happen_once_per_cache() {
        let mut p = Dragon::new(2);
        assert!(read(&mut p, 0, 1, true).event.is_miss());
        assert!(read(&mut p, 1, 1, false).event.is_miss());
        for _ in 0..10 {
            assert_eq!(read(&mut p, 0, 1, false).event, Event::ReadHit);
            assert_eq!(read(&mut p, 1, 1, false).event, Event::ReadHit);
            assert!(!write(&mut p, 0, 1, false).event.is_miss());
        }
    }

    #[test]
    fn cache_supplies_when_any_holder_exists() {
        let mut p = Dragon::new(4);
        read(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::CleanElsewhere { copies: 1 }));
        assert!(o.cache_supplied);
        // After a write, further cold misses classify dirty-elsewhere.
        write(&mut p, 0, 1, false);
        let o = read(&mut p, 2, 1, false);
        assert_eq!(o.event, Event::ReadMiss(MissContext::DirtyElsewhere));
        assert!(o.cache_supplied);
        assert!(!o.write_back, "Dragon never writes back in an infinite cache");
    }

    #[test]
    fn exclusive_writes_are_quiet() {
        let mut p = Dragon::new(4);
        write(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::Dirty));
        assert_eq!(o.updates, 0);
        assert_eq!(o.control_messages, 0);
    }

    #[test]
    fn write_miss_to_shared_block_updates() {
        let mut p = Dragon::new(4);
        read(&mut p, 0, 1, true);
        read(&mut p, 1, 1, false);
        let o = write(&mut p, 2, 1, false);
        assert_eq!(o.event, Event::WriteMiss(MissContext::CleanElsewhere { copies: 2 }));
        assert_eq!(o.updates, 1);
        assert!(o.cache_supplied);
        assert_eq!(p.holders(b(1)).len(), 3);
    }

    #[test]
    fn memory_never_freshened() {
        let mut p = Dragon::new(2);
        write(&mut p, 0, 1, true);
        let o = read(&mut p, 1, 1, false);
        assert!(!o.memory_updated);
        p.check_invariants().unwrap();
    }

    #[test]
    fn clean_exclusive_write_hit_after_read() {
        let mut p = Dragon::new(2);
        read(&mut p, 0, 1, true);
        let o = write(&mut p, 0, 1, false);
        assert_eq!(o.event, Event::WriteHit(WriteHitContext::CleanExclusive));
        assert_eq!(o.updates, 0);
    }
}

//! Event counting: the raw material of Table 4 and Figure 1.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};

/// Width of the invalidation histogram ([`EventCounters::inval_histogram`]);
/// counts of `MAX_HISTOGRAM - 1` or more sharers land in the last bucket.
pub const MAX_HISTOGRAM: usize = 17;

/// Accumulated event frequencies and side-effect counts for one protocol
/// over one trace.
///
/// All Table 4 rows are exposed as counts plus `*_frac` percentages of
/// total references; Figure 1's histogram of "caches to invalidate on a
/// write to a previously-clean block" is [`EventCounters::inval_histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounters {
    instr: u64,
    read_hit: u64,
    rm_first: u64,
    rm_clean: u64,
    rm_dirty: u64,
    rm_memory: u64,
    wh_dirty: u64,
    wh_clean_exclusive: u64,
    wh_clean_shared: u64,
    wm_first: u64,
    wm_clean: u64,
    wm_dirty: u64,
    wm_memory: u64,
    control_messages: u64,
    broadcasts: u64,
    write_backs: u64,
    cache_supplies: u64,
    updates: u64,
    aux_messages: u64,
    directory_evictions: u64,
    cache_evictions: u64,
    /// Histogram over writes to previously-clean blocks of the number of
    /// *other* caches holding the block (Figure 1).
    inval_hist: [u64; MAX_HISTOGRAM],
}

impl EventCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts for one protocol outcome.
    pub fn observe(&mut self, o: &Outcome) {
        match o.event {
            Event::Instr => self.instr += 1,
            Event::ReadHit => self.read_hit += 1,
            Event::ReadMiss(ctx) => match ctx {
                MissContext::FirstRef => self.rm_first += 1,
                MissContext::CleanElsewhere { .. } => self.rm_clean += 1,
                MissContext::DirtyElsewhere => self.rm_dirty += 1,
                MissContext::MemoryOnly => self.rm_memory += 1,
            },
            Event::WriteHit(ctx) => match ctx {
                WriteHitContext::Dirty => self.wh_dirty += 1,
                WriteHitContext::CleanExclusive => {
                    self.wh_clean_exclusive += 1;
                    self.bump_hist(0);
                }
                WriteHitContext::CleanShared { others } => {
                    self.wh_clean_shared += 1;
                    self.bump_hist(others);
                }
            },
            Event::WriteMiss(ctx) => match ctx {
                MissContext::FirstRef => self.wm_first += 1,
                MissContext::CleanElsewhere { copies } => {
                    self.wm_clean += 1;
                    self.bump_hist(copies);
                }
                MissContext::DirtyElsewhere => self.wm_dirty += 1,
                MissContext::MemoryOnly => self.wm_memory += 1,
            },
        }
        self.control_messages += u64::from(o.control_messages);
        self.broadcasts += u64::from(o.used_broadcast);
        self.write_backs += u64::from(o.write_back);
        self.cache_supplies += u64::from(o.cache_supplied);
        self.updates += u64::from(o.updates);
        self.aux_messages += u64::from(o.aux_messages);
        self.directory_evictions += u64::from(o.directory_evictions);
    }

    /// Accounts for a finite-cache replacement. Eviction traffic feeds the
    /// write-back and control-message totals (it occupies the bus) without
    /// touching any reference-event row, so per-reference rates stay
    /// correct.
    pub fn observe_eviction(&mut self, e: &EvictOutcome) {
        self.cache_evictions += 1;
        self.write_backs += u64::from(e.write_back);
        self.control_messages += u64::from(e.control_messages);
    }

    /// Finite-cache replacements observed (0 in infinite-cache runs).
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    fn bump_hist(&mut self, others: u32) {
        let idx = (others as usize).min(MAX_HISTOGRAM - 1);
        self.inval_hist[idx] += 1;
    }

    /// Merges another counter set into this one (e.g. across traces).
    pub fn merge(&mut self, other: &EventCounters) {
        self.instr += other.instr;
        self.read_hit += other.read_hit;
        self.rm_first += other.rm_first;
        self.rm_clean += other.rm_clean;
        self.rm_dirty += other.rm_dirty;
        self.rm_memory += other.rm_memory;
        self.wh_dirty += other.wh_dirty;
        self.wh_clean_exclusive += other.wh_clean_exclusive;
        self.wh_clean_shared += other.wh_clean_shared;
        self.wm_first += other.wm_first;
        self.wm_clean += other.wm_clean;
        self.wm_dirty += other.wm_dirty;
        self.wm_memory += other.wm_memory;
        self.control_messages += other.control_messages;
        self.broadcasts += other.broadcasts;
        self.write_backs += other.write_backs;
        self.cache_supplies += other.cache_supplies;
        self.updates += other.updates;
        self.aux_messages += other.aux_messages;
        self.directory_evictions += other.directory_evictions;
        self.cache_evictions += other.cache_evictions;
        for (a, b) in self.inval_hist.iter_mut().zip(other.inval_hist.iter()) {
            *a += b;
        }
    }

    /// Field-wise difference against an `earlier` snapshot of the same
    /// run (`self − earlier`) — the raw material of windowed time-series
    /// recording: the deltas of consecutive snapshots partition a run, so
    /// merging them reconstructs the final counters exactly.
    ///
    /// Counters are monotonic, so every field of a genuine earlier
    /// snapshot is ≤ the corresponding field of `self`; passing anything
    /// else is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if any field of `earlier` exceeds the corresponding field
    /// of `self` (i.e. `earlier` is not an earlier snapshot of this run).
    #[must_use]
    pub fn diff(&self, earlier: &EventCounters) -> EventCounters {
        fn sub(a: u64, b: u64) -> u64 {
            a.checked_sub(b).expect("diff: argument is not an earlier snapshot of this run")
        }
        let mut inval_hist = [0u64; MAX_HISTOGRAM];
        for (d, (a, b)) in
            inval_hist.iter_mut().zip(self.inval_hist.iter().zip(earlier.inval_hist.iter()))
        {
            *d = sub(*a, *b);
        }
        EventCounters {
            instr: sub(self.instr, earlier.instr),
            read_hit: sub(self.read_hit, earlier.read_hit),
            rm_first: sub(self.rm_first, earlier.rm_first),
            rm_clean: sub(self.rm_clean, earlier.rm_clean),
            rm_dirty: sub(self.rm_dirty, earlier.rm_dirty),
            rm_memory: sub(self.rm_memory, earlier.rm_memory),
            wh_dirty: sub(self.wh_dirty, earlier.wh_dirty),
            wh_clean_exclusive: sub(self.wh_clean_exclusive, earlier.wh_clean_exclusive),
            wh_clean_shared: sub(self.wh_clean_shared, earlier.wh_clean_shared),
            wm_first: sub(self.wm_first, earlier.wm_first),
            wm_clean: sub(self.wm_clean, earlier.wm_clean),
            wm_dirty: sub(self.wm_dirty, earlier.wm_dirty),
            wm_memory: sub(self.wm_memory, earlier.wm_memory),
            control_messages: sub(self.control_messages, earlier.control_messages),
            broadcasts: sub(self.broadcasts, earlier.broadcasts),
            write_backs: sub(self.write_backs, earlier.write_backs),
            cache_supplies: sub(self.cache_supplies, earlier.cache_supplies),
            updates: sub(self.updates, earlier.updates),
            aux_messages: sub(self.aux_messages, earlier.aux_messages),
            directory_evictions: sub(self.directory_evictions, earlier.directory_evictions),
            cache_evictions: sub(self.cache_evictions, earlier.cache_evictions),
            inval_hist,
        }
    }

    /// Total references observed (instructions + data).
    pub fn total(&self) -> u64 {
        self.instr + self.data_refs()
    }

    /// Total data references.
    pub fn data_refs(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Instruction fetches.
    pub fn instr(&self) -> u64 {
        self.instr
    }

    /// Total data reads.
    pub fn reads(&self) -> u64 {
        self.read_hit + self.rm() + self.rm_first
    }

    /// Total data writes.
    pub fn writes(&self) -> u64 {
        self.wh() + self.wm() + self.wm_first
    }

    /// Read hits.
    pub fn read_hits(&self) -> u64 {
        self.read_hit
    }

    /// Read misses excluding first references (the paper's `rm`).
    pub fn rm(&self) -> u64 {
        self.rm_clean + self.rm_dirty + self.rm_memory
    }

    /// Read misses to blocks clean in another cache.
    pub fn rm_blk_cln(&self) -> u64 {
        self.rm_clean
    }

    /// Read misses to blocks dirty in another cache.
    pub fn rm_blk_drty(&self) -> u64 {
        self.rm_dirty
    }

    /// Read misses satisfied from memory with no cached copies.
    pub fn rm_blk_mem(&self) -> u64 {
        self.rm_memory
    }

    /// First-reference read misses.
    pub fn rm_first_ref(&self) -> u64 {
        self.rm_first
    }

    /// Write hits.
    pub fn wh(&self) -> u64 {
        self.wh_dirty + self.wh_clean_exclusive + self.wh_clean_shared
    }

    /// Write hits to locally-dirty blocks.
    pub fn wh_blk_drty(&self) -> u64 {
        self.wh_dirty
    }

    /// Write hits to locally-clean blocks (the paper's `wh-blk-cln`,
    /// regardless of other sharers).
    pub fn wh_blk_cln(&self) -> u64 {
        self.wh_clean_exclusive + self.wh_clean_shared
    }

    /// Write hits to blocks also present in another cache (Dragon's
    /// `wh-distrib`).
    pub fn wh_distrib(&self) -> u64 {
        self.wh_clean_shared
    }

    /// Write hits to blocks in no other cache (Dragon's `wh-local`).
    pub fn wh_local(&self) -> u64 {
        self.wh_dirty + self.wh_clean_exclusive
    }

    /// Write misses excluding first references (the paper's `wm`).
    pub fn wm(&self) -> u64 {
        self.wm_clean + self.wm_dirty + self.wm_memory
    }

    /// Write misses to blocks clean in another cache.
    pub fn wm_blk_cln(&self) -> u64 {
        self.wm_clean
    }

    /// Write misses to blocks dirty in another cache.
    pub fn wm_blk_drty(&self) -> u64 {
        self.wm_dirty
    }

    /// Write misses satisfied from memory with no cached copies.
    pub fn wm_blk_mem(&self) -> u64 {
        self.wm_memory
    }

    /// First-reference write misses.
    pub fn wm_first_ref(&self) -> u64 {
        self.wm_first
    }

    /// Control messages (sequential invalidates, flush requests, pointer
    /// evictions).
    pub fn control_messages(&self) -> u64 {
        self.control_messages
    }

    /// Broadcast deliveries used.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Dirty write-backs to memory.
    pub fn write_backs(&self) -> u64 {
        self.write_backs
    }

    /// Cache-to-cache data supplies.
    pub fn cache_supplies(&self) -> u64 {
        self.cache_supplies
    }

    /// Word updates distributed (Dragon).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Protocol maintenance messages (Yen & Fu single-bit traffic).
    pub fn aux_messages(&self) -> u64 {
        self.aux_messages
    }

    /// Copies invalidated by limited-directory pointer overflow.
    pub fn directory_evictions(&self) -> u64 {
        self.directory_evictions
    }

    /// Figure 1 histogram: for each write to a previously-clean block, the
    /// number of other caches that held the block. Index = sharer count;
    /// the final bucket aggregates larger counts.
    pub fn inval_histogram(&self) -> &[u64; MAX_HISTOGRAM] {
        &self.inval_hist
    }

    /// Fraction of writes-to-previously-clean-blocks that required
    /// invalidations in at most `k` other caches (Figure 1's headline:
    /// "over 85% ... no more than one").
    pub fn inval_at_most(&self, k: usize) -> f64 {
        let total: u64 = self.inval_hist.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let within: u64 = self.inval_hist.iter().take(k + 1).sum();
        within as f64 / total as f64
    }

    /// A count expressed as a percentage of total references.
    pub fn pct(&self, count: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total() as f64
        }
    }

    /// A count expressed as a fraction (per reference).
    pub fn per_ref(&self, count: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            count as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};

    fn quiet(e: Event) -> Outcome {
        Outcome::quiet(e)
    }

    #[test]
    fn table4_rows_accumulate() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::Instr));
        c.observe(&quiet(Event::ReadHit));
        c.observe(&quiet(Event::ReadMiss(MissContext::CleanElsewhere { copies: 2 })));
        c.observe(&quiet(Event::ReadMiss(MissContext::DirtyElsewhere)));
        c.observe(&quiet(Event::ReadMiss(MissContext::FirstRef)));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::Dirty)));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        c.observe(&quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 3 })));
        assert_eq!(c.total(), 8);
        assert_eq!(c.instr(), 1);
        assert_eq!(c.reads(), 4);
        assert_eq!(c.writes(), 3);
        assert_eq!(c.rm(), 2);
        assert_eq!(c.rm_first_ref(), 1);
        assert_eq!(c.wh(), 2);
        assert_eq!(c.wh_blk_cln(), 1);
        assert_eq!(c.wh_distrib(), 1);
        assert_eq!(c.wh_local(), 1);
        assert_eq!(c.wm(), 1);
        assert_eq!(c.wm_blk_cln(), 1);
    }

    #[test]
    fn histogram_tracks_sharer_counts() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanExclusive)));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        c.observe(&quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 3 })));
        let h = c.inval_histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 2);
        assert_eq!(h[3], 1);
        assert!((c.inval_at_most(1) - 0.75).abs() < 1e-12);
        assert!((c.inval_at_most(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_saturates_last_bucket() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 60 })));
        assert_eq!(c.inval_histogram()[MAX_HISTOGRAM - 1], 1);
    }

    #[test]
    fn side_effects_accumulate() {
        let mut c = EventCounters::new();
        let o = Outcome {
            control_messages: 3,
            used_broadcast: true,
            updates: 1,
            aux_messages: 2,
            directory_evictions: 1,
            cache_supplied: true,
            ..Outcome::quiet(Event::ReadHit).with_write_back()
        };
        c.observe(&o);
        assert_eq!(c.control_messages(), 3);
        assert_eq!(c.broadcasts(), 1);
        assert_eq!(c.write_backs(), 1);
        assert_eq!(c.cache_supplies(), 1);
        assert_eq!(c.updates(), 1);
        assert_eq!(c.aux_messages(), 2);
        assert_eq!(c.directory_evictions(), 1);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = EventCounters::new();
        let mut b = EventCounters::new();
        a.observe(&quiet(Event::ReadHit));
        b.observe(&quiet(Event::ReadHit));
        b.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 2 })));
        a.merge(&b);
        assert_eq!(a.read_hits(), 2);
        assert_eq!(a.wh_distrib(), 1);
        assert_eq!(a.inval_histogram()[2], 1);
    }

    #[test]
    fn percentages() {
        let mut c = EventCounters::new();
        for _ in 0..3 {
            c.observe(&quiet(Event::ReadHit));
        }
        c.observe(&quiet(Event::Instr));
        assert!((c.pct(c.read_hits()) - 75.0).abs() < 1e-12);
        assert!((c.per_ref(c.read_hits()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn evictions_feed_traffic_totals_but_not_event_rows() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::ReadHit));
        c.observe_eviction(&EvictOutcome::WRITE_BACK);
        c.observe_eviction(&EvictOutcome::NOTIFY);
        c.observe_eviction(&EvictOutcome::SILENT);
        assert_eq!(c.total(), 1, "evictions are not references");
        assert_eq!(c.cache_evictions(), 3);
        assert_eq!(c.write_backs(), 1);
        assert_eq!(c.control_messages(), 1);
        // And they merge.
        let mut d = EventCounters::new();
        d.merge(&c);
        assert_eq!(d.cache_evictions(), 3);
    }

    #[test]
    fn diff_inverts_merge() {
        let mut early = EventCounters::new();
        early.observe(&quiet(Event::ReadHit));
        early.observe(&quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 2 })));
        let mut late = early.clone();
        late.observe(&quiet(Event::Instr));
        late.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        late.observe_eviction(&EvictOutcome::WRITE_BACK);
        let delta = late.diff(&early);
        assert_eq!(delta.total(), 2);
        assert_eq!(delta.instr(), 1);
        assert_eq!(delta.wh_distrib(), 1);
        assert_eq!(delta.cache_evictions(), 1);
        assert_eq!(delta.write_backs(), 1);
        assert_eq!(delta.inval_histogram()[1], 1);
        assert_eq!(delta.inval_histogram()[2], 0, "early histogram entries subtract out");
        // merge(diff) round-trips.
        let mut rebuilt = early.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, late);
        // Diffing against itself is zero.
        assert_eq!(late.diff(&late), EventCounters::new());
    }

    #[test]
    #[should_panic(expected = "earlier snapshot")]
    fn diff_rejects_a_later_snapshot() {
        let mut late = EventCounters::new();
        late.observe(&quiet(Event::ReadHit));
        let _ = EventCounters::new().diff(&late);
    }

    #[test]
    fn empty_counters_are_safe() {
        let c = EventCounters::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.pct(0), 0.0);
        assert_eq!(c.inval_at_most(0), 1.0);
    }
}

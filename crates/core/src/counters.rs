//! Event counting: the raw material of Table 4 and Figure 1.

use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};

/// Width of the invalidation histogram ([`EventCounters::inval_histogram`]);
/// counts of `MAX_HISTOGRAM - 1` or more sharers land in the last bucket.
pub const MAX_HISTOGRAM: usize = 17;

// Dense row indices for the Table 4 event classification. Keeping the
// rows in one array lets [`EventCounters::observe`] turn the nested
// event matches into a single table-driven classification plus an
// unconditional array increment.
const ROW_INSTR: usize = 0;
const ROW_READ_HIT: usize = 1;
const ROW_RM_FIRST: usize = 2;
const ROW_RM_CLEAN: usize = 3;
const ROW_RM_DIRTY: usize = 4;
const ROW_RM_MEMORY: usize = 5;
const ROW_WH_DIRTY: usize = 6;
const ROW_WH_CLEAN_EXCLUSIVE: usize = 7;
const ROW_WH_CLEAN_SHARED: usize = 8;
const ROW_WM_FIRST: usize = 9;
const ROW_WM_CLEAN: usize = 10;
const ROW_WM_DIRTY: usize = 11;
const ROW_WM_MEMORY: usize = 12;
const NUM_ROWS: usize = 13;

/// Accumulated event frequencies and side-effect counts for one protocol
/// over one trace.
///
/// All Table 4 rows are exposed as counts plus `*_frac` percentages of
/// total references; Figure 1's histogram of "caches to invalidate on a
/// write to a previously-clean block" is [`EventCounters::inval_histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Table 4 event rows, indexed by the `ROW_*` constants.
    rows: [u64; NUM_ROWS],
    control_messages: u64,
    broadcasts: u64,
    write_backs: u64,
    cache_supplies: u64,
    updates: u64,
    aux_messages: u64,
    directory_evictions: u64,
    cache_evictions: u64,
    /// Histogram over writes to previously-clean blocks of the number of
    /// *other* caches holding the block (Figure 1).
    inval_hist: [u64; MAX_HISTOGRAM],
}

/// Classifies an event into its row index plus the histogram update it
/// carries: `(row, hist_index, hist_add)`. Events that don't feed the
/// histogram return `hist_add == 0` (slot 0 is then incremented by zero),
/// so the caller's histogram update is unconditional — no branch on the
/// quiet outcomes.
#[inline(always)]
fn classify(e: Event) -> (usize, usize, u64) {
    match e {
        Event::Instr => (ROW_INSTR, 0, 0),
        Event::ReadHit => (ROW_READ_HIT, 0, 0),
        Event::ReadMiss(MissContext::FirstRef) => (ROW_RM_FIRST, 0, 0),
        Event::ReadMiss(MissContext::CleanElsewhere { .. }) => (ROW_RM_CLEAN, 0, 0),
        Event::ReadMiss(MissContext::DirtyElsewhere) => (ROW_RM_DIRTY, 0, 0),
        Event::ReadMiss(MissContext::MemoryOnly) => (ROW_RM_MEMORY, 0, 0),
        Event::WriteHit(WriteHitContext::Dirty) => (ROW_WH_DIRTY, 0, 0),
        Event::WriteHit(WriteHitContext::CleanExclusive) => (ROW_WH_CLEAN_EXCLUSIVE, 0, 1),
        Event::WriteHit(WriteHitContext::CleanShared { others }) => {
            (ROW_WH_CLEAN_SHARED, hist_slot(others), 1)
        }
        Event::WriteMiss(MissContext::FirstRef) => (ROW_WM_FIRST, 0, 0),
        Event::WriteMiss(MissContext::CleanElsewhere { copies }) => {
            (ROW_WM_CLEAN, hist_slot(copies), 1)
        }
        Event::WriteMiss(MissContext::DirtyElsewhere) => (ROW_WM_DIRTY, 0, 0),
        Event::WriteMiss(MissContext::MemoryOnly) => (ROW_WM_MEMORY, 0, 0),
    }
}

#[inline(always)]
fn hist_slot(others: u32) -> usize {
    (others as usize).min(MAX_HISTOGRAM - 1)
}

impl EventCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts for one protocol outcome.
    ///
    /// Branchless on the hot path: one table-driven event classification,
    /// one unconditional row increment, one unconditional histogram
    /// increment (adding zero for events outside the histogram), and the
    /// side-effect totals added via `u64::from(bool)` widening.
    #[inline]
    pub fn observe(&mut self, o: &Outcome) {
        let (row, hist_idx, hist_add) = classify(o.event);
        self.rows[row] += 1;
        self.inval_hist[hist_idx] += hist_add;
        self.control_messages += u64::from(o.control_messages);
        self.broadcasts += u64::from(o.used_broadcast);
        self.write_backs += u64::from(o.write_back);
        self.cache_supplies += u64::from(o.cache_supplied);
        self.updates += u64::from(o.updates);
        self.aux_messages += u64::from(o.aux_messages);
        self.directory_evictions += u64::from(o.directory_evictions);
    }

    /// Accounts for a finite-cache replacement. Eviction traffic feeds the
    /// write-back and control-message totals (it occupies the bus) without
    /// touching any reference-event row, so per-reference rates stay
    /// correct.
    pub fn observe_eviction(&mut self, e: &EvictOutcome) {
        self.cache_evictions += 1;
        self.write_backs += u64::from(e.write_back);
        self.control_messages += u64::from(e.control_messages);
    }

    /// Finite-cache replacements observed (0 in infinite-cache runs).
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Merges another counter set into this one (e.g. across traces).
    pub fn merge(&mut self, other: &EventCounters) {
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            *a += b;
        }
        self.control_messages += other.control_messages;
        self.broadcasts += other.broadcasts;
        self.write_backs += other.write_backs;
        self.cache_supplies += other.cache_supplies;
        self.updates += other.updates;
        self.aux_messages += other.aux_messages;
        self.directory_evictions += other.directory_evictions;
        self.cache_evictions += other.cache_evictions;
        for (a, b) in self.inval_hist.iter_mut().zip(other.inval_hist.iter()) {
            *a += b;
        }
    }

    /// Field-wise difference against an `earlier` snapshot of the same
    /// run (`self − earlier`) — the raw material of windowed time-series
    /// recording: the deltas of consecutive snapshots partition a run, so
    /// merging them reconstructs the final counters exactly.
    ///
    /// Counters are monotonic, so every field of a genuine earlier
    /// snapshot is ≤ the corresponding field of `self`; passing anything
    /// else is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if any field of `earlier` exceeds the corresponding field
    /// of `self` (i.e. `earlier` is not an earlier snapshot of this run).
    #[must_use]
    pub fn diff(&self, earlier: &EventCounters) -> EventCounters {
        fn sub(a: u64, b: u64) -> u64 {
            a.checked_sub(b).expect("diff: argument is not an earlier snapshot of this run")
        }
        let mut rows = [0u64; NUM_ROWS];
        for (d, (a, b)) in rows.iter_mut().zip(self.rows.iter().zip(earlier.rows.iter())) {
            *d = sub(*a, *b);
        }
        let mut inval_hist = [0u64; MAX_HISTOGRAM];
        for (d, (a, b)) in
            inval_hist.iter_mut().zip(self.inval_hist.iter().zip(earlier.inval_hist.iter()))
        {
            *d = sub(*a, *b);
        }
        EventCounters {
            rows,
            control_messages: sub(self.control_messages, earlier.control_messages),
            broadcasts: sub(self.broadcasts, earlier.broadcasts),
            write_backs: sub(self.write_backs, earlier.write_backs),
            cache_supplies: sub(self.cache_supplies, earlier.cache_supplies),
            updates: sub(self.updates, earlier.updates),
            aux_messages: sub(self.aux_messages, earlier.aux_messages),
            directory_evictions: sub(self.directory_evictions, earlier.directory_evictions),
            cache_evictions: sub(self.cache_evictions, earlier.cache_evictions),
            inval_hist,
        }
    }

    /// A deterministic 64-bit fingerprint over every counter (FNV-1a in
    /// field order). Two counter sets are digest-equal iff field-equal
    /// (up to hash collisions), so bench reports can pin per-run counters
    /// compactly and `benchcmp` can detect drift without re-listing every
    /// field.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, v: u64) -> u64 {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        }
        let mut h = OFFSET;
        for &r in &self.rows {
            h = mix(h, r);
        }
        for v in [
            self.control_messages,
            self.broadcasts,
            self.write_backs,
            self.cache_supplies,
            self.updates,
            self.aux_messages,
            self.directory_evictions,
            self.cache_evictions,
        ] {
            h = mix(h, v);
        }
        for &b in &self.inval_hist {
            h = mix(h, b);
        }
        h
    }

    /// Total references observed (instructions + data).
    pub fn total(&self) -> u64 {
        self.instr() + self.data_refs()
    }

    /// Total data references.
    pub fn data_refs(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Instruction fetches.
    pub fn instr(&self) -> u64 {
        self.rows[ROW_INSTR]
    }

    /// Total data reads.
    pub fn reads(&self) -> u64 {
        self.read_hits() + self.rm() + self.rm_first_ref()
    }

    /// Total data writes.
    pub fn writes(&self) -> u64 {
        self.wh() + self.wm() + self.wm_first_ref()
    }

    /// Read hits.
    pub fn read_hits(&self) -> u64 {
        self.rows[ROW_READ_HIT]
    }

    /// Read misses excluding first references (the paper's `rm`).
    pub fn rm(&self) -> u64 {
        self.rows[ROW_RM_CLEAN] + self.rows[ROW_RM_DIRTY] + self.rows[ROW_RM_MEMORY]
    }

    /// Read misses to blocks clean in another cache.
    pub fn rm_blk_cln(&self) -> u64 {
        self.rows[ROW_RM_CLEAN]
    }

    /// Read misses to blocks dirty in another cache.
    pub fn rm_blk_drty(&self) -> u64 {
        self.rows[ROW_RM_DIRTY]
    }

    /// Read misses satisfied from memory with no cached copies.
    pub fn rm_blk_mem(&self) -> u64 {
        self.rows[ROW_RM_MEMORY]
    }

    /// First-reference read misses.
    pub fn rm_first_ref(&self) -> u64 {
        self.rows[ROW_RM_FIRST]
    }

    /// Write hits.
    pub fn wh(&self) -> u64 {
        self.rows[ROW_WH_DIRTY] + self.rows[ROW_WH_CLEAN_EXCLUSIVE] + self.rows[ROW_WH_CLEAN_SHARED]
    }

    /// Write hits to locally-dirty blocks.
    pub fn wh_blk_drty(&self) -> u64 {
        self.rows[ROW_WH_DIRTY]
    }

    /// Write hits to locally-clean blocks (the paper's `wh-blk-cln`,
    /// regardless of other sharers).
    pub fn wh_blk_cln(&self) -> u64 {
        self.rows[ROW_WH_CLEAN_EXCLUSIVE] + self.rows[ROW_WH_CLEAN_SHARED]
    }

    /// Write hits to blocks also present in another cache (Dragon's
    /// `wh-distrib`).
    pub fn wh_distrib(&self) -> u64 {
        self.rows[ROW_WH_CLEAN_SHARED]
    }

    /// Write hits to blocks in no other cache (Dragon's `wh-local`).
    pub fn wh_local(&self) -> u64 {
        self.rows[ROW_WH_DIRTY] + self.rows[ROW_WH_CLEAN_EXCLUSIVE]
    }

    /// Write misses excluding first references (the paper's `wm`).
    pub fn wm(&self) -> u64 {
        self.rows[ROW_WM_CLEAN] + self.rows[ROW_WM_DIRTY] + self.rows[ROW_WM_MEMORY]
    }

    /// Write misses to blocks clean in another cache.
    pub fn wm_blk_cln(&self) -> u64 {
        self.rows[ROW_WM_CLEAN]
    }

    /// Write misses to blocks dirty in another cache.
    pub fn wm_blk_drty(&self) -> u64 {
        self.rows[ROW_WM_DIRTY]
    }

    /// Write misses satisfied from memory with no cached copies.
    pub fn wm_blk_mem(&self) -> u64 {
        self.rows[ROW_WM_MEMORY]
    }

    /// First-reference write misses.
    pub fn wm_first_ref(&self) -> u64 {
        self.rows[ROW_WM_FIRST]
    }

    /// Control messages (sequential invalidates, flush requests, pointer
    /// evictions).
    pub fn control_messages(&self) -> u64 {
        self.control_messages
    }

    /// Broadcast deliveries used.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Dirty write-backs to memory.
    pub fn write_backs(&self) -> u64 {
        self.write_backs
    }

    /// Cache-to-cache data supplies.
    pub fn cache_supplies(&self) -> u64 {
        self.cache_supplies
    }

    /// Word updates distributed (Dragon).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Protocol maintenance messages (Yen & Fu single-bit traffic).
    pub fn aux_messages(&self) -> u64 {
        self.aux_messages
    }

    /// Copies invalidated by limited-directory pointer overflow.
    pub fn directory_evictions(&self) -> u64 {
        self.directory_evictions
    }

    /// Figure 1 histogram: for each write to a previously-clean block, the
    /// number of other caches that held the block. Index = sharer count;
    /// the final bucket aggregates larger counts.
    pub fn inval_histogram(&self) -> &[u64; MAX_HISTOGRAM] {
        &self.inval_hist
    }

    /// Fraction of writes-to-previously-clean-blocks that required
    /// invalidations in at most `k` other caches (Figure 1's headline:
    /// "over 85% ... no more than one").
    pub fn inval_at_most(&self, k: usize) -> f64 {
        let total: u64 = self.inval_hist.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let within: u64 = self.inval_hist.iter().take(k + 1).sum();
        within as f64 / total as f64
    }

    /// A count expressed as a percentage of total references.
    pub fn pct(&self, count: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total() as f64
        }
    }

    /// A count expressed as a fraction (per reference).
    pub fn per_ref(&self, count: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            count as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EvictOutcome, MissContext, Outcome, WriteHitContext};

    fn quiet(e: Event) -> Outcome {
        Outcome::quiet(e)
    }

    #[test]
    fn table4_rows_accumulate() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::Instr));
        c.observe(&quiet(Event::ReadHit));
        c.observe(&quiet(Event::ReadMiss(MissContext::CleanElsewhere { copies: 2 })));
        c.observe(&quiet(Event::ReadMiss(MissContext::DirtyElsewhere)));
        c.observe(&quiet(Event::ReadMiss(MissContext::FirstRef)));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::Dirty)));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        c.observe(&quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 3 })));
        assert_eq!(c.total(), 8);
        assert_eq!(c.instr(), 1);
        assert_eq!(c.reads(), 4);
        assert_eq!(c.writes(), 3);
        assert_eq!(c.rm(), 2);
        assert_eq!(c.rm_first_ref(), 1);
        assert_eq!(c.wh(), 2);
        assert_eq!(c.wh_blk_cln(), 1);
        assert_eq!(c.wh_distrib(), 1);
        assert_eq!(c.wh_local(), 1);
        assert_eq!(c.wm(), 1);
        assert_eq!(c.wm_blk_cln(), 1);
    }

    #[test]
    fn histogram_tracks_sharer_counts() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanExclusive)));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        c.observe(&quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 3 })));
        let h = c.inval_histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 2);
        assert_eq!(h[3], 1);
        assert!((c.inval_at_most(1) - 0.75).abs() < 1e-12);
        assert!((c.inval_at_most(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_saturates_last_bucket() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 60 })));
        assert_eq!(c.inval_histogram()[MAX_HISTOGRAM - 1], 1);
    }

    #[test]
    fn quiet_outcomes_leave_the_histogram_untouched() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::ReadHit));
        c.observe(&quiet(Event::Instr));
        c.observe(&quiet(Event::ReadMiss(MissContext::MemoryOnly)));
        c.observe(&quiet(Event::WriteHit(WriteHitContext::Dirty)));
        assert!(c.inval_histogram().iter().all(|&b| b == 0));
    }

    #[test]
    fn side_effects_accumulate() {
        let mut c = EventCounters::new();
        let o = Outcome {
            control_messages: 3,
            used_broadcast: true,
            updates: 1,
            aux_messages: 2,
            directory_evictions: 1,
            cache_supplied: true,
            ..Outcome::quiet(Event::ReadHit).with_write_back()
        };
        c.observe(&o);
        assert_eq!(c.control_messages(), 3);
        assert_eq!(c.broadcasts(), 1);
        assert_eq!(c.write_backs(), 1);
        assert_eq!(c.cache_supplies(), 1);
        assert_eq!(c.updates(), 1);
        assert_eq!(c.aux_messages(), 2);
        assert_eq!(c.directory_evictions(), 1);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = EventCounters::new();
        let mut b = EventCounters::new();
        a.observe(&quiet(Event::ReadHit));
        b.observe(&quiet(Event::ReadHit));
        b.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 2 })));
        a.merge(&b);
        assert_eq!(a.read_hits(), 2);
        assert_eq!(a.wh_distrib(), 1);
        assert_eq!(a.inval_histogram()[2], 1);
    }

    #[test]
    fn percentages() {
        let mut c = EventCounters::new();
        for _ in 0..3 {
            c.observe(&quiet(Event::ReadHit));
        }
        c.observe(&quiet(Event::Instr));
        assert!((c.pct(c.read_hits()) - 75.0).abs() < 1e-12);
        assert!((c.per_ref(c.read_hits()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn evictions_feed_traffic_totals_but_not_event_rows() {
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::ReadHit));
        c.observe_eviction(&EvictOutcome::WRITE_BACK);
        c.observe_eviction(&EvictOutcome::NOTIFY);
        c.observe_eviction(&EvictOutcome::SILENT);
        assert_eq!(c.total(), 1, "evictions are not references");
        assert_eq!(c.cache_evictions(), 3);
        assert_eq!(c.write_backs(), 1);
        assert_eq!(c.control_messages(), 1);
        // And they merge.
        let mut d = EventCounters::new();
        d.merge(&c);
        assert_eq!(d.cache_evictions(), 3);
    }

    #[test]
    fn diff_inverts_merge() {
        let mut early = EventCounters::new();
        early.observe(&quiet(Event::ReadHit));
        early.observe(&quiet(Event::WriteMiss(MissContext::CleanElsewhere { copies: 2 })));
        let mut late = early.clone();
        late.observe(&quiet(Event::Instr));
        late.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 1 })));
        late.observe_eviction(&EvictOutcome::WRITE_BACK);
        let delta = late.diff(&early);
        assert_eq!(delta.total(), 2);
        assert_eq!(delta.instr(), 1);
        assert_eq!(delta.wh_distrib(), 1);
        assert_eq!(delta.cache_evictions(), 1);
        assert_eq!(delta.write_backs(), 1);
        assert_eq!(delta.inval_histogram()[1], 1);
        assert_eq!(delta.inval_histogram()[2], 0, "early histogram entries subtract out");
        // merge(diff) round-trips.
        let mut rebuilt = early.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, late);
        // Diffing against itself is zero.
        assert_eq!(late.diff(&late), EventCounters::new());
    }

    #[test]
    #[should_panic(expected = "earlier snapshot")]
    fn diff_rejects_a_later_snapshot() {
        let mut late = EventCounters::new();
        late.observe(&quiet(Event::ReadHit));
        let _ = EventCounters::new().diff(&late);
    }

    #[test]
    fn empty_counters_are_safe() {
        let c = EventCounters::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.pct(0), 0.0);
        assert_eq!(c.inval_at_most(0), 1.0);
    }

    #[test]
    fn digest_distinguishes_counter_sets() {
        let mut a = EventCounters::new();
        let mut b = EventCounters::new();
        assert_eq!(a.digest(), b.digest(), "equal counters share a digest");
        a.observe(&quiet(Event::ReadHit));
        assert_ne!(a.digest(), b.digest());
        b.observe(&quiet(Event::ReadHit));
        assert_eq!(a.digest(), b.digest());
        // Rows are position-sensitive: a read hit is not an instr fetch.
        let mut c = EventCounters::new();
        c.observe(&quiet(Event::Instr));
        assert_ne!(a.digest(), c.digest());
        // Histogram and side effects feed the digest too.
        let mut d = a.clone();
        d.observe(&quiet(Event::WriteHit(WriteHitContext::CleanShared { others: 2 })));
        assert_ne!(a.digest(), d.digest());
        let mut e = a.clone();
        e.observe_eviction(&EvictOutcome::WRITE_BACK);
        assert_ne!(a.digest(), e.digest());
    }
}
